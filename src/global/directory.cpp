#include "gridrm/global/directory.hpp"

#include <algorithm>
#include <tuple>

#include "gridrm/core/event.hpp"
#include "gridrm/core/security.hpp"  // globMatch
#include "gridrm/util/strings.hpp"

namespace gridrm::global {

namespace {

/// Bounded re-sweeps of a client read when a response upgraded the
/// shard map mid-call (version strictly increases, so this only loops
/// while the topology is actually changing under the client).
constexpr std::size_t kMapUpgradeAttempts = 3;

std::uint64_t parseU64(const std::string& text, std::uint64_t fallback = 0) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    return fallback;
  }
}

/// Canonical one-line serialization of a replicated entry. Byte
/// stability matters: it feeds the anti-entropy digest and the
/// convergence assertions, so every replicated field is included in a
/// fixed order.
std::string encodeEntry(const ProducerEntry& e) {
  std::string out = "P " + e.name + " " + e.address.toString() + " " +
                    std::to_string(e.epoch) + " " + std::to_string(e.version) +
                    " " + std::to_string(e.expiresAt) + " " +
                    std::to_string(e.leaseTtl) + " " +
                    std::to_string(e.deleted ? 1 : 0) + " " +
                    std::to_string(e.deletedAt);
  for (const auto& pattern : e.ownedHostPatterns) out += " " + pattern;
  return out;
}

std::string encodeEntry(const ConsumerEntry& e) {
  return "C " + e.name + " " + e.address.toString() + " " +
         std::to_string(e.version) + " " + std::to_string(e.expiresAt) + " " +
         std::to_string(e.leaseTtl) + " " + std::to_string(e.deleted ? 1 : 0) +
         " " + std::to_string(e.deletedAt) + " " + e.eventPattern;
}

std::optional<ProducerEntry> decodeProducerEntry(
    const std::vector<std::string>& words) {
  // words: P <name> <addr> <epoch> <ver> <exp> <ttl> <del> <delAt> <pat>...
  if (words.size() < 9 || words[0] != "P") return std::nullopt;
  ProducerEntry e;
  e.name = words[1];
  e.address = net::Address::parse(words[2]);
  e.epoch = parseU64(words[3]);
  e.version = parseU64(words[4]);
  e.expiresAt = static_cast<util::TimePoint>(parseU64(words[5]));
  e.leaseTtl = static_cast<util::Duration>(parseU64(words[6]));
  e.deleted = parseU64(words[7]) != 0;
  e.deletedAt = static_cast<util::TimePoint>(parseU64(words[8]));
  for (std::size_t i = 9; i < words.size(); ++i) {
    e.ownedHostPatterns.push_back(words[i]);
  }
  return e;
}

std::optional<ConsumerEntry> decodeConsumerEntry(
    const std::vector<std::string>& words) {
  // words: C <name> <addr> <ver> <exp> <ttl> <del> <delAt> <pattern>
  if (words.size() < 9 || words[0] != "C") return std::nullopt;
  ConsumerEntry e;
  e.name = words[1];
  e.address = net::Address::parse(words[2]);
  e.version = parseU64(words[3]);
  e.expiresAt = static_cast<util::TimePoint>(parseU64(words[4]));
  e.leaseTtl = static_cast<util::Duration>(parseU64(words[5]));
  e.deleted = parseU64(words[6]) != 0;
  e.deletedAt = static_cast<util::TimePoint>(parseU64(words[7]));
  e.eventPattern = words[8];
  return e;
}

/// Total merge order between replicas of one entry: epoch first (a
/// restarted gateway supersedes its dead incarnation), then write
/// version, then lease expiry (a renewal beats the concurrent sweep
/// tombstone of the same version — the epoch+lease tiebreak), then
/// live-beats-tombstone, then the payload hash as an arbitrary but
/// deterministic last resort for concurrent same-version writes.
using MergeKey =
    std::tuple<std::uint64_t, std::uint64_t, util::TimePoint, int,
               std::uint64_t>;

MergeKey mergeKey(const ProducerEntry& e) {
  return {e.epoch, e.version, e.expiresAt, e.deleted ? 0 : 1,
          util::fnv1a64(encodeEntry(e))};
}

MergeKey mergeKey(const ConsumerEntry& e) {
  return {0, e.version, e.expiresAt, e.deleted ? 0 : 1,
          util::fnv1a64(encodeEntry(e))};
}

MergeKey summaryKey(std::uint64_t epoch, std::uint64_t version,
                    util::TimePoint expiresAt, bool deleted,
                    std::uint64_t hash) {
  return {epoch, version, expiresAt, deleted ? 0 : 1, hash};
}

util::Duration graceOf(util::Duration leaseTtl, std::uint32_t divisor) {
  return divisor > 0 ? leaseTtl / divisor : 0;
}

template <typename Entry>
bool visible(const Entry& e, util::TimePoint now, std::uint32_t divisor) {
  if (e.deleted) return false;
  if (e.expiresAt == 0) return true;
  return e.expiresAt + graceOf(e.leaseTtl, divisor) > now;
}

std::string producerLine(const ProducerEntry& e) {
  return "PRODUCER " + e.name + " " + e.address.toString() + " " +
         std::to_string(e.epoch);
}

std::string encodeStats(const DirectoryStats& s) {
  std::string out;
  auto put = [&](const char* key, std::uint64_t value) {
    out += "STAT " + std::string(key) + " " + std::to_string(value) + "\n";
  };
  put("registrations", s.registrations);
  put("staleRegistrations", s.staleRegistrations);
  put("leaseEvictions", s.leaseEvictions);
  put("renewals", s.renewals);
  put("lookups", s.lookups);
  put("notMineRedirects", s.notMineRedirects);
  put("syncRounds", s.syncRounds);
  put("syncDigestMismatches", s.syncDigestMismatches);
  put("syncEntriesApplied", s.syncEntriesApplied);
  put("syncEntriesPushed", s.syncEntriesPushed);
  put("syncPeersUnreachable", s.syncPeersUnreachable);
  put("tombstonesCollected", s.tombstonesCollected);
  return out;
}

DirectoryStats decodeStats(const std::string& text) {
  DirectoryStats s;
  for (const auto& line : util::splitNonEmpty(text, '\n')) {
    const auto words = util::splitNonEmpty(line, ' ');
    if (words.size() < 3 || words[0] != "STAT") continue;
    const std::uint64_t value = parseU64(words[2]);
    if (words[1] == "registrations") s.registrations = value;
    else if (words[1] == "staleRegistrations") s.staleRegistrations = value;
    else if (words[1] == "leaseEvictions") s.leaseEvictions = value;
    else if (words[1] == "renewals") s.renewals = value;
    else if (words[1] == "lookups") s.lookups = value;
    else if (words[1] == "notMineRedirects") s.notMineRedirects = value;
    else if (words[1] == "syncRounds") s.syncRounds = value;
    else if (words[1] == "syncDigestMismatches") s.syncDigestMismatches = value;
    else if (words[1] == "syncEntriesApplied") s.syncEntriesApplied = value;
    else if (words[1] == "syncEntriesPushed") s.syncEntriesPushed = value;
    else if (words[1] == "syncPeersUnreachable") s.syncPeersUnreachable = value;
    else if (words[1] == "tombstonesCollected") s.tombstonesCollected = value;
  }
  return s;
}

/// Extract an optional "@<shard>" selector from request words,
/// returning the remaining words untouched otherwise.
std::optional<std::size_t> shardSelector(
    const std::vector<std::string>& words) {
  for (const auto& word : words) {
    if (word.size() >= 2 && word[0] == '@') {
      return static_cast<std::size_t>(parseU64(word.substr(1)));
    }
  }
  return std::nullopt;
}

}  // namespace

GmaDirectory::GmaDirectory(net::Network& network, const net::Address& address)
    : GmaDirectory(network, address, DirectoryOptions{}) {}

GmaDirectory::GmaDirectory(net::Network& network, const net::Address& address,
                           DirectoryOptions options)
    : network_(network), address_(address), options_(std::move(options)) {
  map_ = options_.map.empty() ? ShardMap::single(address_) : options_.map;
  heldShards_ = map_.shardsHeldBy(address_);
  network_.bind(address_, this);
  // Cold-start recovery: a replica booting into an existing service
  // (e.g. a restart that lost its in-memory store) must not serve
  // authoritative negatives for shards its peers have entries for.
  // One best-effort anti-entropy round warms every held shard before
  // the first request lands; peers not up yet are skipped (initial
  // cluster bring-up) and healed by the scheduled rounds instead.
  if (map_.service()) (void)syncTick();
}

GmaDirectory::~GmaDirectory() { network_.unbind(address_); }

bool GmaDirectory::holdsShard(std::size_t shard) const {
  return std::binary_search(heldShards_.begin(), heldShards_.end(), shard);
}

net::Payload GmaDirectory::withMap(net::Payload response) const {
  if (!map_.service()) return response;
  if (!response.empty() && response.back() != '\n') response += "\n";
  return response + map_.encode();
}

void GmaDirectory::pruneExpiredLocked(util::TimePoint now) {
  auto sweep = [&](auto& byShard) {
    for (auto& [shard, store] : byShard) {
      for (auto it = store.begin(); it != store.end();) {
        auto& e = it->second;
        if (!e.deleted && e.expiresAt != 0 &&
            e.expiresAt + graceOf(e.leaseTtl, options_.leaseGraceDivisor) <=
                now) {
          // Tombstone at the deterministic expiry instant, so replicas
          // sweeping independently produce byte-identical tombstones.
          e.deleted = true;
          e.deletedAt = e.expiresAt;
          ++e.version;
          ++stats_.leaseEvictions;
        }
        if (e.deleted && e.deletedAt + options_.tombstoneTtl <= now) {
          it = store.erase(it);
          ++stats_.tombstonesCollected;
        } else {
          ++it;
        }
      }
    }
  };
  sweep(producers_);
  sweep(consumers_);
}

void GmaDirectory::sweepTick() {
  std::scoped_lock lock(mu_);
  pruneExpiredLocked(network_.clock().now());
}

std::string GmaDirectory::exportShardLocked(std::size_t shard) const {
  std::string out;
  auto pit = producers_.find(shard);
  if (pit != producers_.end()) {
    for (const auto& [name, e] : pit->second) out += encodeEntry(e) + "\n";
  }
  auto cit = consumers_.find(shard);
  if (cit != consumers_.end()) {
    for (const auto& [name, e] : cit->second) out += encodeEntry(e) + "\n";
  }
  return out;
}

std::string GmaDirectory::exportShard(std::size_t shard) const {
  std::scoped_lock lock(mu_);
  return exportShardLocked(shard);
}

void GmaDirectory::wipe() {
  std::scoped_lock lock(mu_);
  producers_.clear();
  consumers_.clear();
}

bool GmaDirectory::applyEntryLineLocked(std::size_t shard,
                                        const std::string& line) {
  const auto words = util::splitNonEmpty(line, ' ');
  const util::TimePoint now = network_.clock().now();
  if (auto p = decodeProducerEntry(words)) {
    auto& store = producers_[shard];
    auto it = store.find(p->name);
    if (it == store.end()) {
      // Never resurrect a tombstone a peer is about to GC.
      if (p->deleted && p->deletedAt + options_.tombstoneTtl <= now) {
        return false;
      }
      store.emplace(p->name, std::move(*p));
      return true;
    }
    if (mergeKey(*p) > mergeKey(it->second)) {
      it->second = std::move(*p);
      return true;
    }
    return false;
  }
  if (auto c = decodeConsumerEntry(words)) {
    auto& store = consumers_[shard];
    auto it = store.find(c->name);
    if (it == store.end()) {
      if (c->deleted && c->deletedAt + options_.tombstoneTtl <= now) {
        return false;
      }
      store.emplace(c->name, std::move(*c));
      return true;
    }
    if (mergeKey(*c) > mergeKey(it->second)) {
      it->second = std::move(*c);
      return true;
    }
    return false;
  }
  return false;
}

net::Payload GmaDirectory::handleSync(const std::vector<std::string>& words,
                                      const std::vector<std::string>& lines) {
  const util::TimePoint now = network_.clock().now();
  const std::size_t shard =
      words.size() >= 2 ? static_cast<std::size_t>(parseU64(words[1])) : 0;
  std::scoped_lock lock(mu_);
  pruneExpiredLocked(now);
  if (!holdsShard(shard)) {
    ++stats_.notMineRedirects;
    return "NOTMINE";
  }
  if (words[0] == "AEDIG") {
    const std::uint64_t theirs = words.size() >= 3 ? parseU64(words[2]) : 0;
    const std::uint64_t mine = util::fnv1a64(exportShardLocked(shard));
    ++stats_.syncRounds;
    if (mine == theirs) return "MATCH";
    ++stats_.syncDigestMismatches;
    return "DIFF " + std::to_string(mine);
  }
  if (words[0] == "AEPUSH") {
    std::size_t applied = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (!util::startsWith(lines[i], "E ")) continue;
      if (applyEntryLineLocked(shard, lines[i].substr(2))) {
        ++applied;
        ++stats_.syncEntriesApplied;
      }
    }
    return "OK " + std::to_string(applied);
  }
  // AESYNC: the peer sent its per-entry summary; answer with full
  // entries where we are newer (or the peer lacks them) and WANT lines
  // where the peer is newer (or we lack them).
  std::string out;
  std::map<std::string, bool> seenProducers;  // name -> mentioned by peer
  std::map<std::string, bool> seenConsumers;
  auto& pstore = producers_[shard];
  auto& cstore = consumers_[shard];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto sw = util::splitNonEmpty(lines[i], ' ');
    // S <P|C> <name> <epoch> <version> <expiresAt> <deleted> <hash>
    if (sw.size() < 8 || sw[0] != "S") continue;
    const bool producer = sw[1] == "P";
    const std::string& name = sw[2];
    const MergeKey theirs =
        summaryKey(parseU64(sw[3]), parseU64(sw[4]),
                   static_cast<util::TimePoint>(parseU64(sw[5])),
                   parseU64(sw[6]) != 0, parseU64(sw[7]));
    if (producer) {
      seenProducers[name] = true;
      auto it = pstore.find(name);
      if (it == pstore.end() || theirs > mergeKey(it->second)) {
        out += "WANT P " + name + "\n";
      } else if (mergeKey(it->second) > theirs) {
        out += "E " + encodeEntry(it->second) + "\n";
      }
    } else {
      seenConsumers[name] = true;
      auto it = cstore.find(name);
      if (it == cstore.end() || theirs > mergeKey(it->second)) {
        out += "WANT C " + name + "\n";
      } else if (mergeKey(it->second) > theirs) {
        out += "E " + encodeEntry(it->second) + "\n";
      }
    }
  }
  for (const auto& [name, e] : pstore) {
    if (!seenProducers.count(name)) out += "E " + encodeEntry(e) + "\n";
  }
  for (const auto& [name, e] : cstore) {
    if (!seenConsumers.count(name)) out += "E " + encodeEntry(e) + "\n";
  }
  return out;
}

net::Payload GmaDirectory::handleRequest(const net::Address& /*from*/,
                                         const net::Payload& request) {
  const auto lines = util::split(request, '\n');
  if (lines.empty()) return "ERR empty request";
  const auto words = util::splitNonEmpty(lines[0], ' ');
  if (words.empty()) return "ERR empty request";

  if (words[0] == "AEDIG" || words[0] == "AESYNC" || words[0] == "AEPUSH") {
    return handleSync(words, lines);
  }
  if (words[0] == "SHARDMAP") return map_.encode();
  if (words[0] == "DSTATS") return withMap(encodeStats(stats()));

  const util::TimePoint now = network_.clock().now();
  std::scoped_lock lock(mu_);
  pruneExpiredLocked(now);
  if (words[0] == "REG" && words.size() >= 4 && words[1] == "PRODUCER") {
    ProducerEntry entry;
    entry.name = words[2];
    entry.address = net::Address::parse(words[3]);
    if (words.size() >= 5) entry.epoch = parseU64(words[4]);
    if (words.size() >= 6) {
      const util::Duration ttl =
          static_cast<util::Duration>(parseU64(words[5])) * util::kMillisecond;
      if (ttl > 0) {
        entry.expiresAt = now + ttl;
        entry.leaseTtl = ttl;
      }
    }
    const util::TimePoint prev =
        words.size() >= 7 ? static_cast<util::TimePoint>(parseU64(words[6]))
                          : 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      auto pattern = util::trim(lines[i]);
      if (!pattern.empty()) entry.ownedHostPatterns.emplace_back(pattern);
    }
    const std::size_t shard = map_.shardOf("p:" + entry.name);
    if (!holdsShard(shard)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    auto& store = producers_[shard];
    auto existing = store.find(entry.name);
    if (existing != store.end() && entry.epoch < existing->second.epoch) {
      // A renewal from a dead incarnation racing the restarted gateway.
      ++stats_.staleRegistrations;
      return withMap("STALE");
    }
    // A renewal carrying the expiry we granted extends the lease of
    // the entry it refers to in place — never observed as an eviction
    // plus re-registration, even when it raced the sweep (the sweep's
    // grace window keeps the entry alive while the renewal is in
    // flight).
    const bool renewal = existing != store.end() &&
                         !existing->second.deleted &&
                         existing->second.epoch == entry.epoch &&
                         prev != 0 && existing->second.expiresAt == prev;
    entry.version =
        existing != store.end() ? existing->second.version + 1 : 1;
    const util::TimePoint granted = entry.expiresAt;
    store[entry.name] = std::move(entry);
    ++stats_.registrations;
    if (renewal) ++stats_.renewals;
    return withMap("OK " + std::to_string(granted));
  }
  if (words[0] == "UNREG" && words.size() >= 3 && words[1] == "PRODUCER") {
    const std::size_t shard = map_.shardOf("p:" + words[2]);
    if (!holdsShard(shard)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    auto& store = producers_[shard];
    auto it = store.find(words[2]);
    if (it != store.end() && !it->second.deleted) {
      it->second.deleted = true;
      it->second.deletedAt = now;
      ++it->second.version;
    }
    return withMap("OK");
  }
  if (words[0] == "LOOKUP" && words.size() >= 2) {
    const auto selector = shardSelector(words);
    if (selector && !holdsShard(*selector)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    ++stats_.lookups;
    const ProducerEntry* best = nullptr;
    auto consider = [&](std::size_t shard) {
      auto sit = producers_.find(shard);
      if (sit == producers_.end()) return;
      for (const auto& [name, entry] : sit->second) {
        if (!visible(entry, now, options_.leaseGraceDivisor)) continue;
        if (best && best->name <= name) continue;
        for (const auto& pattern : entry.ownedHostPatterns) {
          if (core::globMatch(pattern, words[1])) {
            best = &entry;
            break;
          }
        }
      }
    };
    if (selector) {
      consider(*selector);
    } else {
      for (std::size_t shard : heldShards_) consider(shard);
    }
    if (best) return withMap(producerLine(*best));
    return withMap("NONE");
  }
  if (words[0] == "LOOKUPN" && words.size() >= 2) {
    // Batch lookup for federated fan-out: one response line per host,
    // in request order, so a coordinator resolves N sites in a single
    // round trip (per shard) instead of N.
    const auto selector = shardSelector(words);
    if (selector && !holdsShard(*selector)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    std::string out;
    for (std::size_t i = 1; i < words.size(); ++i) {
      if (!words[i].empty() && words[i][0] == '@') continue;  // selector
      ++stats_.lookups;
      const ProducerEntry* best = nullptr;
      auto consider = [&](std::size_t shard) {
        auto sit = producers_.find(shard);
        if (sit == producers_.end()) return;
        for (const auto& [name, entry] : sit->second) {
          if (!visible(entry, now, options_.leaseGraceDivisor)) continue;
          if (best && best->name <= name) continue;
          for (const auto& pattern : entry.ownedHostPatterns) {
            if (core::globMatch(pattern, words[i])) {
              best = &entry;
              break;
            }
          }
        }
      };
      if (selector) {
        consider(*selector);
      } else {
        for (std::size_t shard : heldShards_) consider(shard);
      }
      out += best ? producerLine(*best) + "\n" : "NONE\n";
    }
    return withMap(out);
  }
  if (words[0] == "LIST") {
    const auto selector = shardSelector(words);
    if (selector && !holdsShard(*selector)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    std::string out;
    auto emit = [&](std::size_t shard) {
      auto sit = producers_.find(shard);
      if (sit == producers_.end()) return;
      for (const auto& [name, entry] : sit->second) {
        if (!visible(entry, now, options_.leaseGraceDivisor)) continue;
        out += producerLine(entry) + "\n";
      }
    };
    if (selector) {
      emit(*selector);
    } else {
      for (std::size_t shard : heldShards_) emit(shard);
    }
    return withMap(out);
  }
  if (words[0] == "REG" && words.size() >= 5 && words[1] == "CONSUMER") {
    ConsumerEntry entry{words[2], net::Address::parse(words[3]), words[4]};
    if (words.size() >= 6) {
      const util::Duration ttl =
          static_cast<util::Duration>(parseU64(words[5])) * util::kMillisecond;
      if (ttl > 0) {
        entry.expiresAt = now + ttl;
        entry.leaseTtl = ttl;
      }
    }
    const std::size_t shard = map_.shardOf("c:" + entry.name);
    if (!holdsShard(shard)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    const util::TimePoint prev =
        words.size() >= 7 ? static_cast<util::TimePoint>(parseU64(words[6]))
                          : 0;
    auto& store = consumers_[shard];
    auto existing = store.find(entry.name);
    const bool renewal = existing != store.end() &&
                         !existing->second.deleted && prev != 0 &&
                         existing->second.expiresAt == prev;
    entry.version =
        existing != store.end() ? existing->second.version + 1 : 1;
    const util::TimePoint granted = entry.expiresAt;
    store[entry.name] = std::move(entry);
    ++stats_.registrations;
    if (renewal) ++stats_.renewals;
    return withMap("OK " + std::to_string(granted));
  }
  if (words[0] == "UNREG" && words.size() >= 3 && words[1] == "CONSUMER") {
    const std::size_t shard = map_.shardOf("c:" + words[2]);
    if (!holdsShard(shard)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    auto& store = consumers_[shard];
    auto it = store.find(words[2]);
    if (it != store.end() && !it->second.deleted) {
      it->second.deleted = true;
      it->second.deletedAt = now;
      ++it->second.version;
    }
    return withMap("OK");
  }
  if (words[0] == "CONSUMERS" && words.size() >= 2) {
    const auto selector = shardSelector(words);
    if (selector && !holdsShard(*selector)) {
      ++stats_.notMineRedirects;
      return withMap("NOTMINE");
    }
    std::string out;
    auto emit = [&](std::size_t shard) {
      auto sit = consumers_.find(shard);
      if (sit == consumers_.end()) return;
      for (const auto& [name, entry] : sit->second) {
        if (!visible(entry, now, options_.leaseGraceDivisor)) continue;
        if (core::eventTypeMatches(entry.eventPattern, words[1])) {
          out += "CONSUMER " + entry.name + " " + entry.address.toString() +
                 "\n";
        }
      }
    };
    if (selector) {
      emit(*selector);
    } else {
      for (std::size_t shard : heldShards_) emit(shard);
    }
    return withMap(out);
  }
  return "ERR bad request";
}

std::size_t GmaDirectory::syncShardWithPeer(std::size_t shard,
                                            const net::Address& peer) {
  std::uint64_t digest = 0;
  {
    std::scoped_lock lock(mu_);
    pruneExpiredLocked(network_.clock().now());
    digest = util::fnv1a64(exportShardLocked(shard));
  }
  // Never hold mu_ across a network call: the peer's handler takes its
  // own lock, and two replicas syncing each other concurrently would
  // deadlock otherwise.
  net::Payload response;
  try {
    response = network_.request(
        address_, peer,
        "AEDIG " + std::to_string(shard) + " " + std::to_string(digest),
        options_.syncTimeout);
  } catch (const net::NetError&) {
    std::scoped_lock lock(mu_);
    ++stats_.syncPeersUnreachable;
    return 0;
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.syncRounds;
    if (response == "MATCH") return 0;
    ++stats_.syncDigestMismatches;
  }

  std::string body = "AESYNC " + std::to_string(shard);
  {
    std::scoped_lock lock(mu_);
    auto pit = producers_.find(shard);
    if (pit != producers_.end()) {
      for (const auto& [name, e] : pit->second) {
        body += "\nS P " + name + " " + std::to_string(e.epoch) + " " +
                std::to_string(e.version) + " " + std::to_string(e.expiresAt) +
                " " + std::to_string(e.deleted ? 1 : 0) + " " +
                std::to_string(util::fnv1a64(encodeEntry(e)));
      }
    }
    auto cit = consumers_.find(shard);
    if (cit != consumers_.end()) {
      for (const auto& [name, e] : cit->second) {
        body += "\nS C " + name + " 0 " + std::to_string(e.version) + " " +
                std::to_string(e.expiresAt) + " " +
                std::to_string(e.deleted ? 1 : 0) + " " +
                std::to_string(util::fnv1a64(encodeEntry(e)));
      }
    }
  }
  try {
    response = network_.request(address_, peer, body, options_.syncTimeout);
  } catch (const net::NetError&) {
    std::scoped_lock lock(mu_);
    ++stats_.syncPeersUnreachable;
    return 0;
  }

  std::size_t applied = 0;
  std::vector<std::pair<bool, std::string>> wants;  // (producer?, name)
  {
    std::scoped_lock lock(mu_);
    for (const auto& line : util::splitNonEmpty(response, '\n')) {
      if (util::startsWith(line, "E ")) {
        if (applyEntryLineLocked(shard, line.substr(2))) {
          ++applied;
          ++stats_.syncEntriesApplied;
        }
      } else if (util::startsWith(line, "WANT ")) {
        const auto ww = util::splitNonEmpty(line, ' ');
        if (ww.size() >= 3) wants.emplace_back(ww[1] == "P", ww[2]);
      }
    }
  }
  if (!wants.empty()) {
    std::string push = "AEPUSH " + std::to_string(shard);
    std::size_t pushed = 0;
    {
      std::scoped_lock lock(mu_);
      for (const auto& [producer, name] : wants) {
        if (producer) {
          auto pit = producers_.find(shard);
          if (pit == producers_.end()) continue;
          auto it = pit->second.find(name);
          if (it == pit->second.end()) continue;
          push += "\nE " + encodeEntry(it->second);
        } else {
          auto cit = consumers_.find(shard);
          if (cit == consumers_.end()) continue;
          auto it = cit->second.find(name);
          if (it == cit->second.end()) continue;
          push += "\nE " + encodeEntry(it->second);
        }
        ++pushed;
      }
      stats_.syncEntriesPushed += pushed;
    }
    if (pushed > 0) {
      try {
        (void)network_.request(address_, peer, push, options_.syncTimeout);
      } catch (const net::NetError&) {
        std::scoped_lock lock(mu_);
        ++stats_.syncPeersUnreachable;
      }
    }
  }
  return applied;
}

std::size_t GmaDirectory::syncTick() {
  if (!map_.service()) return 0;
  std::size_t applied = 0;
  for (std::size_t shard : heldShards_) {
    for (const auto& peer : map_.replicasOf(shard)) {
      if (peer == address_) continue;
      applied += syncShardWithPeer(shard, peer);
    }
  }
  return applied;
}

std::vector<ProducerEntry> GmaDirectory::producers() const {
  const util::TimePoint now = network_.clock().now();
  std::scoped_lock lock(mu_);
  std::map<std::string, ProducerEntry> merged;  // name order across shards
  for (const auto& [shard, store] : producers_) {
    for (const auto& [name, entry] : store) {
      if (visible(entry, now, options_.leaseGraceDivisor)) {
        merged.emplace(name, entry);
      }
    }
  }
  std::vector<ProducerEntry> out;
  out.reserve(merged.size());
  for (auto& [name, entry] : merged) out.push_back(std::move(entry));
  return out;
}

std::vector<ConsumerEntry> GmaDirectory::consumers() const {
  const util::TimePoint now = network_.clock().now();
  std::scoped_lock lock(mu_);
  std::map<std::string, ConsumerEntry> merged;
  for (const auto& [shard, store] : consumers_) {
    for (const auto& [name, entry] : store) {
      if (visible(entry, now, options_.leaseGraceDivisor)) {
        merged.emplace(name, entry);
      }
    }
  }
  std::vector<ConsumerEntry> out;
  out.reserve(merged.size());
  for (auto& [name, entry] : merged) out.push_back(std::move(entry));
  return out;
}

DirectoryStats GmaDirectory::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// DirectoryClient

DirectoryClient::DirectoryClient(net::Network& network, net::Address self,
                                 std::vector<net::Address> seeds)
    : network_(network), self_(std::move(self)), seeds_(std::move(seeds)) {
  if (seeds_.size() == 1) {
    // Single seed: assume standalone until a response proves otherwise
    // (service-mode answers carry the real map and upgrade us).
    map_ = ShardMap::single(seeds_[0]);
  }
}

net::Payload DirectoryClient::send(const net::Address& to,
                                   const net::Payload& body, bool retry) {
  if (transport_) return transport_(to, body, retry);
  return network_.request(self_, to, body);
}

net::Payload DirectoryClient::ingestMap(net::Payload response) {
  const std::size_t pos = response.rfind('\n');
  const std::string lastLine =
      pos == std::string::npos ? response : response.substr(pos + 1);
  if (!util::startsWith(lastLine, "MAP ")) return response;
  if (auto decoded = ShardMap::decode(lastLine)) {
    std::scoped_lock lock(mu_);
    if (decoded->version() > map_.version()) {
      map_ = *decoded;
      ++cstats_.mapRefreshes;
    }
  }
  return pos == std::string::npos ? net::Payload{} : response.substr(0, pos);
}

ShardMap DirectoryClient::currentMap() {
  {
    std::scoped_lock lock(mu_);
    if (!map_.empty()) return map_;
  }
  // Multi-seed bootstrap: ask any reachable seed for the map.
  std::optional<net::NetError> last;
  for (const auto& seed : seeds_) {
    try {
      const net::Payload response = send(seed, "SHARDMAP", false);
      if (auto decoded = ShardMap::decode(
              util::splitNonEmpty(response, '\n').empty()
                  ? response
                  : util::splitNonEmpty(response, '\n').front())) {
        std::scoped_lock lock(mu_);
        if (map_.empty() || decoded->version() > map_.version()) {
          map_ = *decoded;
          ++cstats_.mapRefreshes;
        }
        return map_;
      }
    } catch (const net::NetError& e) {
      last = e;
    }
  }
  throw last.value_or(net::NetError(net::NetErrorKind::Unreachable,
                                    "no directory seed reachable"));
}

net::Payload DirectoryClient::requestShard(std::size_t shard,
                                           const net::Payload& body) {
  std::optional<net::NetError> last;
  // A NOTMINE answer means our map lagged a topology change; the
  // answer carried the fresh map, so chase the redirect a bounded
  // number of times before giving up.
  for (std::size_t round = 0; round < 3; ++round) {
    const auto candidates = currentMap().replicasOf(shard);
    if (candidates.empty()) break;
    bool redirected = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i > 0) {
        std::scoped_lock lock(mu_);
        ++cstats_.failovers;
      }
      net::Payload response;
      try {
        response = ingestMap(send(candidates[i], body, i > 0));
      } catch (const net::NetError& e) {
        last = e;
        continue;
      }
      if (response == "NOTMINE") {
        std::scoped_lock lock(mu_);
        ++cstats_.redirects;
        redirected = true;
        break;
      }
      return response;
    }
    if (!redirected) break;
  }
  throw last.value_or(net::NetError(
      net::NetErrorKind::Unreachable,
      "no replica of directory shard " + std::to_string(shard) +
          " reachable"));
}

std::optional<ProducerEntry> DirectoryClient::parseProducerLine(
    const std::string& line) {
  const auto words = util::splitNonEmpty(line, ' ');
  if (words.size() < 3 || words[0] != "PRODUCER") return std::nullopt;
  ProducerEntry entry{words[1], net::Address::parse(words[2]), {}};
  if (words.size() >= 4) entry.epoch = parseU64(words[3]);
  return entry;
}

net::Payload DirectoryClient::shardedWrite(const std::string& key,
                                           const net::Payload& body,
                                           std::size_t retries,
                                           util::Duration backoff,
                                           std::size_t& attempts) {
  attempts = 0;
  for (;;) {
    ++attempts;
    try {
      const std::size_t shard = currentMap().shardOf(key);
      return requestShard(shard, body);
    } catch (const net::NetError&) {
      if (attempts > retries) throw;
      network_.clock().sleepFor(backoff);
      backoff *= 2;
    }
  }
}

std::size_t DirectoryClient::registerProducer(
    const std::string& name, const net::Address& address,
    const std::vector<std::string>& ownedHostPatterns, std::uint64_t epoch,
    util::Duration leaseTtl, std::size_t retries, util::Duration backoff) {
  util::TimePoint prev = 0;
  {
    std::scoped_lock lock(mu_);
    auto it = grantedExpiry_.find("p:" + name);
    if (it != grantedExpiry_.end()) prev = it->second;
  }
  std::string body = "REG PRODUCER " + name + " " + address.toString() + " " +
                     std::to_string(epoch) + " " +
                     std::to_string(leaseTtl / util::kMillisecond) + " " +
                     std::to_string(prev);
  for (const auto& pattern : ownedHostPatterns) body += "\n" + pattern;
  std::size_t attempts = 0;
  const net::Payload response =
      shardedWrite("p:" + name, body, retries, backoff, attempts);
  const auto words = util::splitNonEmpty(response, ' ');
  std::scoped_lock lock(mu_);
  if (words.size() >= 2 && words[0] == "OK") {
    grantedExpiry_["p:" + name] =
        static_cast<util::TimePoint>(parseU64(words[1]));
  } else {
    grantedExpiry_.erase("p:" + name);  // refused (STALE): no lease held
  }
  return attempts;
}

void DirectoryClient::unregisterProducer(const std::string& name) {
  std::size_t attempts = 0;
  (void)shardedWrite("p:" + name, "UNREG PRODUCER " + name, 0,
                     250 * util::kMillisecond, attempts);
  std::scoped_lock lock(mu_);
  grantedExpiry_.erase("p:" + name);
}

std::optional<ProducerEntry> DirectoryClient::lookup(const std::string& host) {
  // A response during the sweep may upgrade our map (a fresh client's
  // first call sees only the standalone seed view, and a service
  // replica answers for *its* shards alone): a miss under the old map
  // is not a proven negative, so redo the sweep under the new one.
  for (std::size_t attempt = 0;; ++attempt) {
    const ShardMap map = currentMap();
    std::optional<ProducerEntry> best;
    std::size_t unavailable = 0;
    std::string detail;
    for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
      net::Payload response;
      try {
        response = requestShard(shard,
                                "LOOKUP " + host + " @" + std::to_string(shard));
      } catch (const net::NetError& e) {
        ++unavailable;
        detail = e.what();
        continue;
      }
      const auto lines = util::splitNonEmpty(response, '\n');
      const std::string& first = lines.empty() ? response : lines.front();
      if (auto entry = parseProducerLine(first)) {
        if (!best || entry->name < best->name) best = std::move(entry);
      } else if (!util::startsWith(first, "NONE")) {
        // A malformed answer is NOT a negative: treat it like an
        // unreachable shard so the caller never reads it as "not found".
        ++unavailable;
        detail = "malformed directory response";
      }
    }
    if (best) return best;
    if (attempt + 1 < kMapUpgradeAttempts &&
        currentMap().version() > map.version()) {
      continue;
    }
    if (unavailable > 0) {
      {
        std::scoped_lock lock(mu_);
        ++cstats_.unavailableShards;
      }
      throw net::NetError(net::NetErrorKind::Unreachable,
                          "directory unavailable: " +
                              std::to_string(unavailable) +
                              " shard(s) unreachable (" + detail + ")");
    }
    return std::nullopt;
  }
}

std::vector<LookupAnswer> DirectoryClient::lookupMany(
    const std::vector<std::string>& hosts) {
  std::vector<LookupAnswer> out(hosts.size());
  if (hosts.empty()) return out;
  bool anyUnavailable = false;
  for (std::size_t attempt = 0; attempt < kMapUpgradeAttempts; ++attempt) {
    const ShardMap map = currentMap();
    out.assign(hosts.size(), LookupAnswer{});
    anyUnavailable = false;
    for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
      std::string body = "LOOKUPN @" + std::to_string(shard);
      for (const auto& host : hosts) body += " " + host;
      net::Payload response;
      try {
        response = requestShard(shard, body);
      } catch (const net::NetError&) {
        anyUnavailable = true;
        continue;
      }
      const auto lines = util::splitNonEmpty(response, '\n');
      for (std::size_t i = 0; i < lines.size() && i < hosts.size(); ++i) {
        auto entry = parseProducerLine(lines[i]);
        if (!entry) continue;
        if (out[i].status != LookupStatus::Found ||
            entry->name < out[i].entry->name) {
          out[i] = {LookupStatus::Found, std::move(entry)};
        }
      }
    }
    // Same map-upgrade rule as lookup(): a sweep under a stale map
    // proves nothing about the hosts it missed.
    const bool anyMiss = std::any_of(
        out.begin(), out.end(),
        [](const LookupAnswer& a) { return a.status != LookupStatus::Found; });
    if ((anyMiss || anyUnavailable) &&
        currentMap().version() > map.version()) {
      continue;
    }
    break;
  }
  if (anyUnavailable) {
    std::scoped_lock lock(mu_);
    ++cstats_.unavailableShards;
    // A host no reachable shard matched might be owned by the shard we
    // could not reach: the negative is unprovable.
    for (auto& answer : out) {
      if (answer.status == LookupStatus::NotFound) {
        answer.status = LookupStatus::Unavailable;
      }
    }
  }
  return out;
}

std::vector<ProducerEntry> DirectoryClient::list() {
  std::map<std::string, ProducerEntry> merged;
  std::optional<net::NetError> last;
  for (std::size_t attempt = 0; attempt < kMapUpgradeAttempts; ++attempt) {
    const ShardMap map = currentMap();
    merged.clear();
    last.reset();
    for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
      net::Payload response;
      try {
        response = requestShard(shard, "LIST @" + std::to_string(shard));
      } catch (const net::NetError& e) {
        last = e;
        continue;
      }
      for (const auto& line : util::splitNonEmpty(response, '\n')) {
        if (auto entry = parseProducerLine(line)) {
          merged.emplace(entry->name, std::move(*entry));
        }
      }
    }
    // A sweep under a stale map listed the wrong shard set entirely.
    if (currentMap().version() == map.version()) break;
  }
  if (last) throw *last;  // a full listing needs every shard
  std::vector<ProducerEntry> out;
  out.reserve(merged.size());
  for (auto& [name, entry] : merged) out.push_back(std::move(entry));
  return out;
}

std::size_t DirectoryClient::registerConsumer(const std::string& name,
                                              const net::Address& address,
                                              const std::string& eventPattern,
                                              util::Duration leaseTtl,
                                              std::size_t retries,
                                              util::Duration backoff) {
  util::TimePoint prev = 0;
  {
    std::scoped_lock lock(mu_);
    auto it = grantedExpiry_.find("c:" + name);
    if (it != grantedExpiry_.end()) prev = it->second;
  }
  std::size_t attempts = 0;
  const net::Payload response = shardedWrite(
      "c:" + name,
      "REG CONSUMER " + name + " " + address.toString() + " " + eventPattern +
          " " + std::to_string(leaseTtl / util::kMillisecond) + " " +
          std::to_string(prev),
      retries, backoff, attempts);
  const auto words = util::splitNonEmpty(response, ' ');
  if (words.size() >= 2 && words[0] == "OK") {
    std::scoped_lock lock(mu_);
    grantedExpiry_["c:" + name] =
        static_cast<util::TimePoint>(parseU64(words[1]));
  }
  return attempts;
}

void DirectoryClient::unregisterConsumer(const std::string& name) {
  std::size_t attempts = 0;
  (void)shardedWrite("c:" + name, "UNREG CONSUMER " + name, 0,
                     250 * util::kMillisecond, attempts);
  std::scoped_lock lock(mu_);
  grantedExpiry_.erase("c:" + name);
}

std::vector<ConsumerEntry> DirectoryClient::consumersFor(
    const std::string& eventType) {
  std::map<std::string, ConsumerEntry> merged;
  std::size_t unavailable = 0;
  std::size_t shardCount = 1;
  std::optional<net::NetError> last;
  for (std::size_t attempt = 0; attempt < kMapUpgradeAttempts; ++attempt) {
    const ShardMap map = currentMap();
    shardCount = map.shardCount();
    merged.clear();
    unavailable = 0;
    last.reset();
    for (std::size_t shard = 0; shard < map.shardCount(); ++shard) {
      net::Payload response;
      try {
        response = requestShard(
            shard, "CONSUMERS " + eventType + " @" + std::to_string(shard));
      } catch (const net::NetError& e) {
        ++unavailable;
        last = e;
        continue;
      }
      for (const auto& line : util::splitNonEmpty(response, '\n')) {
        const auto words = util::splitNonEmpty(line, ' ');
        if (words.size() >= 3 && words[0] == "CONSUMER") {
          merged.emplace(words[1], ConsumerEntry{words[1],
                                                 net::Address::parse(words[2]),
                                                 ""});
        }
      }
    }
    if (currentMap().version() == map.version()) break;
  }
  // Event propagation is best-effort: partial coverage beats none, but
  // a completely unreachable directory still surfaces as before.
  if (unavailable == shardCount && last) throw *last;
  std::vector<ConsumerEntry> out;
  out.reserve(merged.size());
  for (auto& [name, entry] : merged) out.push_back(std::move(entry));
  return out;
}

std::vector<std::pair<net::Address, std::optional<DirectoryStats>>>
DirectoryClient::replicaStats() {
  const ShardMap map = currentMap();
  std::vector<std::pair<net::Address, std::optional<DirectoryStats>>> out;
  for (const auto& node : map.nodes()) {
    try {
      const net::Payload response = ingestMap(send(node, "DSTATS", false));
      out.emplace_back(node, decodeStats(response));
    } catch (const net::NetError&) {
      out.emplace_back(node, std::nullopt);
    }
  }
  return out;
}

ShardMap DirectoryClient::shardMap() const {
  std::scoped_lock lock(mu_);
  return map_;
}

DirectoryClientStats DirectoryClient::clientStats() const {
  std::scoped_lock lock(mu_);
  return cstats_;
}

}  // namespace gridrm::global
