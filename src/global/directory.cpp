#include "gridrm/global/directory.hpp"

#include "gridrm/core/event.hpp"
#include "gridrm/core/security.hpp"  // globMatch
#include "gridrm/util/strings.hpp"

namespace gridrm::global {

GmaDirectory::GmaDirectory(net::Network& network, const net::Address& address)
    : network_(network), address_(address) {
  network_.bind(address_, this);
}

GmaDirectory::~GmaDirectory() { network_.unbind(address_); }

net::Payload GmaDirectory::handleRequest(const net::Address& /*from*/,
                                         const net::Payload& request) {
  const auto lines = util::split(request, '\n');
  if (lines.empty()) return "ERR empty request";
  const auto words = util::splitNonEmpty(lines[0], ' ');
  if (words.empty()) return "ERR empty request";

  std::scoped_lock lock(mu_);
  if (words[0] == "REG" && words.size() >= 4 && words[1] == "PRODUCER") {
    ProducerEntry entry;
    entry.name = words[2];
    entry.address = net::Address::parse(words[3]);
    for (std::size_t i = 1; i < lines.size(); ++i) {
      auto pattern = util::trim(lines[i]);
      if (!pattern.empty()) entry.ownedHostPatterns.emplace_back(pattern);
    }
    producers_[entry.name] = std::move(entry);
    return "OK";
  }
  if (words[0] == "UNREG" && words.size() >= 3 && words[1] == "PRODUCER") {
    producers_.erase(words[2]);
    return "OK";
  }
  if (words[0] == "LOOKUP" && words.size() >= 2) {
    for (const auto& [name, entry] : producers_) {
      for (const auto& pattern : entry.ownedHostPatterns) {
        if (core::globMatch(pattern, words[1])) {
          return "PRODUCER " + entry.name + " " + entry.address.toString();
        }
      }
    }
    return "NONE";
  }
  if (words[0] == "LIST") {
    std::string out;
    for (const auto& [name, entry] : producers_) {
      out += "PRODUCER " + entry.name + " " + entry.address.toString() + "\n";
    }
    return out;
  }
  if (words[0] == "REG" && words.size() >= 5 && words[1] == "CONSUMER") {
    consumers_[words[2]] =
        ConsumerEntry{words[2], net::Address::parse(words[3]), words[4]};
    return "OK";
  }
  if (words[0] == "UNREG" && words.size() >= 3 && words[1] == "CONSUMER") {
    consumers_.erase(words[2]);
    return "OK";
  }
  if (words[0] == "CONSUMERS" && words.size() >= 2) {
    std::string out;
    for (const auto& [name, entry] : consumers_) {
      if (core::eventTypeMatches(entry.eventPattern, words[1])) {
        out += "CONSUMER " + entry.name + " " + entry.address.toString() + "\n";
      }
    }
    return out;
  }
  return "ERR bad request";
}

std::vector<ProducerEntry> GmaDirectory::producers() const {
  std::scoped_lock lock(mu_);
  std::vector<ProducerEntry> out;
  for (const auto& [name, entry] : producers_) out.push_back(entry);
  return out;
}

std::vector<ConsumerEntry> GmaDirectory::consumers() const {
  std::scoped_lock lock(mu_);
  std::vector<ConsumerEntry> out;
  for (const auto& [name, entry] : consumers_) out.push_back(entry);
  return out;
}

net::Payload DirectoryClient::request(const net::Payload& body) {
  return network_.request(self_, directory_, body);
}

void DirectoryClient::registerProducer(
    const std::string& name, const net::Address& address,
    const std::vector<std::string>& ownedHostPatterns) {
  std::string body = "REG PRODUCER " + name + " " + address.toString();
  for (const auto& pattern : ownedHostPatterns) body += "\n" + pattern;
  request(body);
}

void DirectoryClient::unregisterProducer(const std::string& name) {
  request("UNREG PRODUCER " + name);
}

std::optional<ProducerEntry> DirectoryClient::lookup(const std::string& host) {
  const std::string response = request("LOOKUP " + host);
  const auto words = util::splitNonEmpty(response, ' ');
  if (words.size() < 3 || words[0] != "PRODUCER") return std::nullopt;
  return ProducerEntry{words[1], net::Address::parse(words[2]), {}};
}

std::vector<ProducerEntry> DirectoryClient::list() {
  std::vector<ProducerEntry> out;
  for (const auto& line : util::splitNonEmpty(request("LIST"), '\n')) {
    const auto words = util::splitNonEmpty(line, ' ');
    if (words.size() >= 3 && words[0] == "PRODUCER") {
      out.push_back(ProducerEntry{words[1], net::Address::parse(words[2]), {}});
    }
  }
  return out;
}

void DirectoryClient::registerConsumer(const std::string& name,
                                       const net::Address& address,
                                       const std::string& eventPattern) {
  request("REG CONSUMER " + name + " " + address.toString() + " " +
          eventPattern);
}

void DirectoryClient::unregisterConsumer(const std::string& name) {
  request("UNREG CONSUMER " + name);
}

std::vector<ConsumerEntry> DirectoryClient::consumersFor(
    const std::string& eventType) {
  std::vector<ConsumerEntry> out;
  for (const auto& line :
       util::splitNonEmpty(request("CONSUMERS " + eventType), '\n')) {
    const auto words = util::splitNonEmpty(line, ' ');
    if (words.size() >= 3 && words[0] == "CONSUMER") {
      out.push_back(ConsumerEntry{words[1], net::Address::parse(words[2]), ""});
    }
  }
  return out;
}

}  // namespace gridrm::global
