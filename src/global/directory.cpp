#include "gridrm/global/directory.hpp"

#include "gridrm/core/event.hpp"
#include "gridrm/core/security.hpp"  // globMatch
#include "gridrm/util/strings.hpp"

namespace gridrm::global {

namespace {

std::uint64_t parseU64(const std::string& text, std::uint64_t fallback = 0) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

GmaDirectory::GmaDirectory(net::Network& network, const net::Address& address)
    : network_(network), address_(address) {
  network_.bind(address_, this);
}

GmaDirectory::~GmaDirectory() { network_.unbind(address_); }

void GmaDirectory::pruneExpiredLocked(util::TimePoint now) {
  for (auto it = producers_.begin(); it != producers_.end();) {
    if (it->second.expiresAt != 0 && it->second.expiresAt <= now) {
      it = producers_.erase(it);
      ++stats_.leaseEvictions;
    } else {
      ++it;
    }
  }
  for (auto it = consumers_.begin(); it != consumers_.end();) {
    if (it->second.expiresAt != 0 && it->second.expiresAt <= now) {
      it = consumers_.erase(it);
      ++stats_.leaseEvictions;
    } else {
      ++it;
    }
  }
}

net::Payload GmaDirectory::handleRequest(const net::Address& /*from*/,
                                         const net::Payload& request) {
  const auto lines = util::split(request, '\n');
  if (lines.empty()) return "ERR empty request";
  const auto words = util::splitNonEmpty(lines[0], ' ');
  if (words.empty()) return "ERR empty request";

  const util::TimePoint now = network_.clock().now();
  std::scoped_lock lock(mu_);
  pruneExpiredLocked(now);
  if (words[0] == "REG" && words.size() >= 4 && words[1] == "PRODUCER") {
    ProducerEntry entry;
    entry.name = words[2];
    entry.address = net::Address::parse(words[3]);
    if (words.size() >= 5) entry.epoch = parseU64(words[4]);
    if (words.size() >= 6) {
      const util::Duration ttl =
          static_cast<util::Duration>(parseU64(words[5])) * util::kMillisecond;
      if (ttl > 0) entry.expiresAt = now + ttl;
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      auto pattern = util::trim(lines[i]);
      if (!pattern.empty()) entry.ownedHostPatterns.emplace_back(pattern);
    }
    auto existing = producers_.find(entry.name);
    if (existing != producers_.end() &&
        entry.epoch < existing->second.epoch) {
      // A renewal from a dead incarnation racing the restarted gateway.
      ++stats_.staleRegistrations;
      return "STALE";
    }
    producers_[entry.name] = std::move(entry);
    ++stats_.registrations;
    return "OK";
  }
  if (words[0] == "UNREG" && words.size() >= 3 && words[1] == "PRODUCER") {
    producers_.erase(words[2]);
    return "OK";
  }
  if (words[0] == "LOOKUP" && words.size() >= 2) {
    for (const auto& [name, entry] : producers_) {
      for (const auto& pattern : entry.ownedHostPatterns) {
        if (core::globMatch(pattern, words[1])) {
          return "PRODUCER " + entry.name + " " + entry.address.toString() +
                 " " + std::to_string(entry.epoch);
        }
      }
    }
    return "NONE";
  }
  if (words[0] == "LOOKUPN" && words.size() >= 2) {
    // Batch lookup for federated fan-out: one response line per host,
    // in request order, so a coordinator resolves N sites in a single
    // round trip instead of N.
    std::string out;
    for (std::size_t i = 1; i < words.size(); ++i) {
      bool found = false;
      for (const auto& [name, entry] : producers_) {
        for (const auto& pattern : entry.ownedHostPatterns) {
          if (core::globMatch(pattern, words[i])) {
            out += "PRODUCER " + entry.name + " " + entry.address.toString() +
                   " " + std::to_string(entry.epoch) + "\n";
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) out += "NONE\n";
    }
    return out;
  }
  if (words[0] == "LIST") {
    std::string out;
    for (const auto& [name, entry] : producers_) {
      out += "PRODUCER " + entry.name + " " + entry.address.toString() + " " +
             std::to_string(entry.epoch) + "\n";
    }
    return out;
  }
  if (words[0] == "REG" && words.size() >= 5 && words[1] == "CONSUMER") {
    ConsumerEntry entry{words[2], net::Address::parse(words[3]), words[4], 0};
    if (words.size() >= 6) {
      const util::Duration ttl =
          static_cast<util::Duration>(parseU64(words[5])) * util::kMillisecond;
      if (ttl > 0) entry.expiresAt = now + ttl;
    }
    consumers_[words[2]] = std::move(entry);
    ++stats_.registrations;
    return "OK";
  }
  if (words[0] == "UNREG" && words.size() >= 3 && words[1] == "CONSUMER") {
    consumers_.erase(words[2]);
    return "OK";
  }
  if (words[0] == "CONSUMERS" && words.size() >= 2) {
    std::string out;
    for (const auto& [name, entry] : consumers_) {
      if (core::eventTypeMatches(entry.eventPattern, words[1])) {
        out += "CONSUMER " + entry.name + " " + entry.address.toString() + "\n";
      }
    }
    return out;
  }
  return "ERR bad request";
}

std::vector<ProducerEntry> GmaDirectory::producers() const {
  const util::TimePoint now = network_.clock().now();
  std::scoped_lock lock(mu_);
  std::vector<ProducerEntry> out;
  for (const auto& [name, entry] : producers_) {
    if (entry.expiresAt == 0 || entry.expiresAt > now) out.push_back(entry);
  }
  return out;
}

std::vector<ConsumerEntry> GmaDirectory::consumers() const {
  const util::TimePoint now = network_.clock().now();
  std::scoped_lock lock(mu_);
  std::vector<ConsumerEntry> out;
  for (const auto& [name, entry] : consumers_) {
    if (entry.expiresAt == 0 || entry.expiresAt > now) out.push_back(entry);
  }
  return out;
}

DirectoryStats GmaDirectory::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

net::Payload DirectoryClient::request(const net::Payload& body) {
  return network_.request(self_, directory_, body);
}

net::Payload DirectoryClient::requestWithRetry(const net::Payload& body,
                                               std::size_t retries,
                                               util::Duration backoff,
                                               std::size_t& attempts) {
  attempts = 0;
  for (;;) {
    ++attempts;
    try {
      return request(body);
    } catch (const net::NetError&) {
      if (attempts > retries) throw;
      network_.clock().sleepFor(backoff);
      backoff *= 2;
    }
  }
}

std::size_t DirectoryClient::registerProducer(
    const std::string& name, const net::Address& address,
    const std::vector<std::string>& ownedHostPatterns, std::uint64_t epoch,
    util::Duration leaseTtl, std::size_t retries, util::Duration backoff) {
  std::string body = "REG PRODUCER " + name + " " + address.toString() + " " +
                     std::to_string(epoch) + " " +
                     std::to_string(leaseTtl / util::kMillisecond);
  for (const auto& pattern : ownedHostPatterns) body += "\n" + pattern;
  std::size_t attempts = 0;
  (void)requestWithRetry(body, retries, backoff, attempts);
  return attempts;
}

void DirectoryClient::unregisterProducer(const std::string& name) {
  request("UNREG PRODUCER " + name);
}

std::optional<ProducerEntry> DirectoryClient::lookup(const std::string& host) {
  const std::string response = request("LOOKUP " + host);
  const auto words = util::splitNonEmpty(response, ' ');
  if (words.size() < 3 || words[0] != "PRODUCER") return std::nullopt;
  ProducerEntry entry{words[1], net::Address::parse(words[2]), {}};
  if (words.size() >= 4) {
    try {
      entry.epoch = std::stoull(words[3]);
    } catch (const std::exception&) {
    }
  }
  return entry;
}

std::vector<std::optional<ProducerEntry>> DirectoryClient::lookupMany(
    const std::vector<std::string>& hosts) {
  std::vector<std::optional<ProducerEntry>> out(hosts.size());
  if (hosts.empty()) return out;
  std::string body = "LOOKUPN";
  for (const auto& host : hosts) body += " " + host;
  const auto lines = util::splitNonEmpty(request(body), '\n');
  for (std::size_t i = 0; i < lines.size() && i < hosts.size(); ++i) {
    const auto words = util::splitNonEmpty(lines[i], ' ');
    if (words.size() < 3 || words[0] != "PRODUCER") continue;
    ProducerEntry entry{words[1], net::Address::parse(words[2]), {}};
    if (words.size() >= 4) {
      try {
        entry.epoch = std::stoull(words[3]);
      } catch (const std::exception&) {
      }
    }
    out[i] = std::move(entry);
  }
  return out;
}

std::vector<ProducerEntry> DirectoryClient::list() {
  std::vector<ProducerEntry> out;
  for (const auto& line : util::splitNonEmpty(request("LIST"), '\n')) {
    const auto words = util::splitNonEmpty(line, ' ');
    if (words.size() >= 3 && words[0] == "PRODUCER") {
      out.push_back(ProducerEntry{words[1], net::Address::parse(words[2]), {}});
    }
  }
  return out;
}

std::size_t DirectoryClient::registerConsumer(const std::string& name,
                                              const net::Address& address,
                                              const std::string& eventPattern,
                                              util::Duration leaseTtl,
                                              std::size_t retries,
                                              util::Duration backoff) {
  std::size_t attempts = 0;
  (void)requestWithRetry(
      "REG CONSUMER " + name + " " + address.toString() + " " + eventPattern +
          " " + std::to_string(leaseTtl / util::kMillisecond),
      retries, backoff, attempts);
  return attempts;
}

void DirectoryClient::unregisterConsumer(const std::string& name) {
  request("UNREG CONSUMER " + name);
}

std::vector<ConsumerEntry> DirectoryClient::consumersFor(
    const std::string& eventType) {
  std::vector<ConsumerEntry> out;
  for (const auto& line :
       util::splitNonEmpty(request("CONSUMERS " + eventType), '\n')) {
    const auto words = util::splitNonEmpty(line, ' ');
    if (words.size() >= 3 && words[0] == "CONSUMER") {
      out.push_back(ConsumerEntry{words[1], net::Address::parse(words[2]), ""});
    }
  }
  return out;
}

}  // namespace gridrm::global
