#include "gridrm/global/shard_map.hpp"

#include <algorithm>

#include "gridrm/util/strings.hpp"

namespace gridrm::global {
namespace {

/// Avalanche finalizer (splitmix64/murmur3 fmix). Raw FNV-1a barely
/// propagates the final bytes into the high bits, and ring placement
/// orders by the FULL 64-bit value — without this, keys differing only
/// in a trailing character land in the same arc and one shard absorbs
/// most of the keyspace.
std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ShardMap ShardMap::single(const net::Address& node) {
  ShardMap map;
  map.version_ = 0;
  map.shardCount_ = 1;
  map.replication_ = 1;
  map.nodes_ = {node};
  map.rebuildRing();
  return map;
}

ShardMap ShardMap::build(std::vector<net::Address> nodes, std::size_t shards,
                         std::size_t replication, std::uint64_t version) {
  ShardMap map;
  map.version_ = version > 0 ? version : 1;
  map.shardCount_ = shards > 0 ? shards : 1;
  map.replication_ = std::max<std::size_t>(1, replication);
  map.nodes_ = std::move(nodes);
  if (map.replication_ > map.nodes_.size()) {
    map.replication_ = std::max<std::size_t>(1, map.nodes_.size());
  }
  map.rebuildRing();
  return map;
}

void ShardMap::rebuildRing() {
  ring_.clear();
  ring_.reserve(shardCount_ * kVirtualPoints);
  for (std::size_t s = 0; s < shardCount_; ++s) {
    for (std::size_t v = 0; v < kVirtualPoints; ++v) {
      const std::string point =
          "shard:" + std::to_string(s) + ":" + std::to_string(v);
      ring_.emplace_back(mix64(util::fnv1a64(point)), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardMap::shardOf(std::string_view key) const {
  if (ring_.empty()) return 0;
  const std::uint64_t h = mix64(util::fnv1a64(key));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

std::vector<net::Address> ShardMap::replicasOf(std::size_t shard) const {
  std::vector<net::Address> out;
  if (nodes_.empty()) return out;
  out.reserve(replication_);
  for (std::size_t r = 0; r < replication_ && r < nodes_.size(); ++r) {
    out.push_back(nodes_[(shard + r) % nodes_.size()]);
  }
  return out;
}

net::Address ShardMap::primaryOf(std::size_t shard) const {
  if (nodes_.empty()) return {};
  return nodes_[shard % nodes_.size()];
}

bool ShardMap::holds(std::size_t shard, const net::Address& node) const {
  for (std::size_t r = 0; r < replication_ && r < nodes_.size(); ++r) {
    if (nodes_[(shard + r) % nodes_.size()] == node) return true;
  }
  return false;
}

std::vector<std::size_t> ShardMap::shardsHeldBy(const net::Address& node) const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < shardCount_; ++s) {
    if (holds(s, node)) out.push_back(s);
  }
  return out;
}

std::string ShardMap::encode() const {
  std::string out = "MAP " + std::to_string(version_) + " " +
                    std::to_string(shardCount_) + " " +
                    std::to_string(replication_);
  for (const auto& node : nodes_) out += " " + node.toString();
  return out;
}

std::optional<ShardMap> ShardMap::decode(const std::string& line) {
  const auto words = util::splitNonEmpty(line, ' ');
  if (words.size() < 5 || words[0] != "MAP") return std::nullopt;
  try {
    const auto version = std::stoull(words[1]);
    const auto shards = static_cast<std::size_t>(std::stoull(words[2]));
    const auto replication = static_cast<std::size_t>(std::stoull(words[3]));
    std::vector<net::Address> nodes;
    for (std::size_t i = 4; i < words.size(); ++i) {
      nodes.push_back(net::Address::parse(words[i]));
    }
    return build(std::move(nodes), shards, replication, version);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace gridrm::global
