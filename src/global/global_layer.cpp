#include "gridrm/global/global_layer.hpp"

#include "gridrm/dbc/result_io.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::global {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

GlobalLayer::GlobalLayer(core::Gateway& gateway,
                         const net::Address& directoryAddress,
                         GlobalOptions options)
    : gateway_(gateway),
      options_(std::move(options)),
      directory_(gateway.network(), producerAddress(), directoryAddress) {}

GlobalLayer::~GlobalLayer() { stop(); }

void GlobalLayer::start(std::vector<std::string> extraOwnedHostPatterns) {
  if (started_) return;
  // A federation principal serves relayed requests with monitor rights.
  federationToken_ = gateway_.openSession(
      core::Principal{"federation:" + gateway_.name(), {"monitor"}});

  gateway_.network().bind(producerAddress(), this);

  std::vector<std::string> patterns = std::move(extraOwnedHostPatterns);
  for (const auto& urlText : gateway_.dataSources()) {
    if (auto url = util::Url::parse(urlText)) patterns.push_back(url->host());
  }
  directory_.registerProducer(gateway_.name(), producerAddress(), patterns);

  if (!options_.propagateEventPattern.empty()) {
    // Receive remote events on the gateway's ordinary event port...
    directory_.registerConsumer(gateway_.name(), gateway_.eventAddress(),
                                options_.propagateEventPattern);
    // ...and forward matching local events outward. Events that already
    // carry an origin field were relayed to us; never re-forward them.
    propagationListenerId_ = gateway_.eventManager().addListener(
        options_.propagateEventPattern, [this](const core::Event& event) {
          if (event.fields.count("origin") != 0) return;
          propagateEvent(event);
        });
  }
  started_ = true;
}

void GlobalLayer::stop() {
  if (!started_) return;
  if (propagationListenerId_ != 0) {
    gateway_.eventManager().removeListener(propagationListenerId_);
    propagationListenerId_ = 0;
  }
  try {
    directory_.unregisterProducer(gateway_.name());
    if (!options_.propagateEventPattern.empty()) {
      directory_.unregisterConsumer(gateway_.name());
    }
  } catch (const net::NetError&) {
    // Directory may already be gone during teardown.
  }
  gateway_.network().unbind(producerAddress());
  gateway_.closeSession(federationToken_);
  started_ = false;
}

bool GlobalLayer::ownsHost(const std::string& host) const {
  for (const auto& urlText : gateway_.dataSources()) {
    if (auto url = util::Url::parse(urlText)) {
      if (url->host() == host) return true;
    }
  }
  return false;
}

std::optional<net::Address> GlobalLayer::resolveOwner(const std::string& host) {
  {
    std::scoped_lock lock(mu_);
    auto it = lookupCache_.find(host);
    if (it != lookupCache_.end() &&
        gateway_.clock().now() - it->second.at < options_.lookupCacheTtl) {
      ++stats_.lookupCacheHits;
      return it->second.producer;
    }
  }
  std::optional<ProducerEntry> entry;
  {
    std::scoped_lock lock(mu_);
    ++stats_.directoryLookups;
  }
  entry = directory_.lookup(host);
  if (!entry) return std::nullopt;
  std::scoped_lock lock(mu_);
  lookupCache_[host] = CachedLookup{entry->address, gateway_.clock().now()};
  return entry->address;
}

std::unique_ptr<dbc::VectorResultSet> GlobalLayer::queryRemote(
    const std::string& urlText, const std::string& sql, bool useCache) {
  // Inter-gateway cache: identical key space as local source caching.
  const std::string cacheKey = core::CacheController::key(urlText, sql);
  if (useCache) {
    if (auto cached = gateway_.cache().lookup(cacheKey)) {
      std::scoped_lock lock(mu_);
      ++stats_.remoteCacheHits;
      return cached;
    }
  }

  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  auto owner = resolveOwner(url->host());
  if (!owner) {
    throw SqlError(ErrorCode::ConnectionFailed,
                   "no gateway owns host " + url->host());
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.remoteQueriesSent;
  }
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), *owner,
        "GQUERY " + options_.federationSecret + "\n" + urlText + "\n" + sql);
  } catch (const net::NetError& e) {
    throw SqlError(ErrorCode::ConnectionFailed,
                   "remote gateway unreachable: " + std::string(e.what()));
  }
  if (util::startsWith(response, "ERR ")) {
    throw SqlError(ErrorCode::Generic, "remote: " + response.substr(4));
  }
  auto rows = dbc::deserializeResultSet(response);
  if (useCache) gateway_.cache().insert(cacheKey, *rows);
  return rows;
}

core::QueryResult GlobalLayer::globalQuery(const std::string& token,
                                           const std::vector<std::string>& urls,
                                           const std::string& sql,
                                           const core::QueryOptions& options) {
  core::Principal principal =
      gateway_.authorize(token, core::Operation::RealTimeQuery);

  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<Value>> rows;
  bool haveColumns = false;
  core::QueryResult result;
  result.sourcesQueried = urls.size();

  auto appendRows = [&](const std::string& sourceUrl,
                        const dbc::VectorResultSet& rs) {
    if (!haveColumns) {
      columns.push_back(
          dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
      for (const auto& c : rs.metaData().columns()) columns.push_back(c);
      haveColumns = true;
    }
    for (const auto& row : rs.rows()) {
      std::vector<Value> outRow;
      outRow.reserve(row.size() + 1);
      outRow.emplace_back(sourceUrl);
      for (const auto& v : row) outRow.push_back(v);
      rows.push_back(std::move(outRow));
    }
  };

  for (const auto& urlText : urls) {
    auto url = util::Url::parse(urlText);
    if (!url) {
      result.failures.push_back({urlText, "malformed URL"});
      continue;
    }
    try {
      if (ownsHost(url->host())) {
        core::QueryResult local = gateway_.requestManager().queryOne(
            principal, urlText, sql, options);
        if (!local.failures.empty()) {
          result.failures.push_back(local.failures.front());
          continue;
        }
        result.servedFromCache += local.servedFromCache;
        appendRows(urlText, *local.rows);
      } else {
        auto remote = queryRemote(urlText, sql, options.useCache);
        if (options.recordHistory) {
          try {
            gateway_.requestManager().recordHistoryRows(
                urlText, sql::parseSelect(sql).table, *remote);
          } catch (const sql::ParseError&) {
            // non-SELECT or unparseable: nothing to record
          }
        }
        appendRows(urlText, *remote);
      }
    } catch (const SqlError& e) {
      result.failures.push_back({urlText, e.what()});
    }
  }

  if (!haveColumns) {
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
  }
  result.rows = std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(columns)), std::move(rows));
  return result;
}

net::Payload GlobalLayer::handleRequest(const net::Address& /*from*/,
                                        const net::Payload& request) {
  // GQUERY <secret>\n<url>\n<sql>
  const auto lines = util::split(request, '\n');
  const auto words = util::splitNonEmpty(lines[0], ' ');
  if (words.size() < 2 || words[0] != "GQUERY" || lines.size() < 3) {
    return "ERR bad request";
  }
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::string& urlText = lines[1];
  std::string sql = lines[2];
  for (std::size_t i = 3; i < lines.size(); ++i) sql += "\n" + lines[i];

  {
    std::scoped_lock lock(mu_);
    ++stats_.remoteQueriesServed;
  }
  try {
    core::Principal principal = gateway_.authorize(
        federationToken_, core::Operation::RealTimeQuery);
    core::QueryResult local =
        gateway_.requestManager().queryOne(principal, urlText, sql, {});
    if (!local.failures.empty()) {
      return "ERR " + local.failures.front().message;
    }
    return dbc::serializeResultSet(*local.rows);
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

void GlobalLayer::propagateEvent(const core::Event& event) {
  core::TextEventFormatter formatter;
  core::Event tagged = event;
  tagged.fields["origin"] = Value(gateway_.name());
  tagged.fields["source_host"] = Value(event.source);
  auto encoded = formatter.encode(tagged);
  if (!encoded) return;

  std::vector<ConsumerEntry> targets;
  try {
    targets = directory_.consumersFor(event.type);
  } catch (const net::NetError&) {
    return;  // directory unreachable; drop propagation, keep local delivery
  }
  for (const auto& target : targets) {
    if (target.address == gateway_.eventAddress()) continue;  // not to self
    gateway_.network().datagram(producerAddress(), target.address, *encoded);
    std::scoped_lock lock(mu_);
    ++stats_.eventsPropagated;
  }
}

GlobalStats GlobalLayer::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::global
