#include "gridrm/global/global_layer.hpp"

#include <future>

#include "gridrm/dbc/result_io.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::global {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

GlobalLayer::GlobalLayer(core::Gateway& gateway,
                         const net::Address& directoryAddress,
                         GlobalOptions options)
    : gateway_(gateway),
      options_(std::move(options)),
      directory_(gateway.network(), producerAddress(), directoryAddress) {}

GlobalLayer::~GlobalLayer() { stop(); }

void GlobalLayer::start(std::vector<std::string> extraOwnedHostPatterns) {
  if (started_) return;
  // A federation principal serves relayed requests with monitor rights.
  federationToken_ = gateway_.openSession(
      core::Principal{"federation:" + gateway_.name(), {"monitor"}});

  gateway_.network().bind(producerAddress(), this);

  std::vector<std::string> patterns = std::move(extraOwnedHostPatterns);
  for (const auto& urlText : gateway_.dataSources()) {
    if (auto url = util::Url::parse(urlText)) patterns.push_back(url->host());
  }
  directory_.registerProducer(gateway_.name(), producerAddress(), patterns);

  if (!options_.propagateEventPattern.empty()) {
    // Receive remote events on the gateway's ordinary event port...
    directory_.registerConsumer(gateway_.name(), gateway_.eventAddress(),
                                options_.propagateEventPattern);
    // ...and forward matching local events outward. Events that already
    // carry an origin field were relayed to us; never re-forward them.
    propagationListenerId_ = gateway_.eventManager().addListener(
        options_.propagateEventPattern, [this](const core::Event& event) {
          if (event.fields.count("origin") != 0) return;
          propagateEvent(event);
        });
  }
  started_ = true;
}

void GlobalLayer::stop() {
  if (!started_) return;
  if (propagationListenerId_ != 0) {
    gateway_.eventManager().removeListener(propagationListenerId_);
    propagationListenerId_ = 0;
  }
  // Tear down relayed subscriptions: tell each owning gateway to stop
  // streaming, then drop the local passive endpoints.
  std::map<std::size_t, RemoteSubscription> remotes;
  {
    std::scoped_lock lock(mu_);
    remotes.swap(remoteSubscriptions_);
  }
  for (const auto& [localId, remote] : remotes) {
    try {
      (void)gateway_.network().request(
          producerAddress(), remote.owner,
          "GUNSUB " + options_.federationSecret + " " +
              std::to_string(remote.remoteId));
    } catch (const net::NetError&) {
      // Owner may already be gone during teardown.
    }
    (void)gateway_.streamEngine().unsubscribe(localId);
  }
  try {
    directory_.unregisterProducer(gateway_.name());
    if (!options_.propagateEventPattern.empty()) {
      directory_.unregisterConsumer(gateway_.name());
    }
  } catch (const net::NetError&) {
    // Directory may already be gone during teardown.
  }
  gateway_.network().unbind(producerAddress());
  gateway_.closeSession(federationToken_);
  started_ = false;
}

bool GlobalLayer::ownsHost(const std::string& host) const {
  for (const auto& urlText : gateway_.dataSources()) {
    if (auto url = util::Url::parse(urlText)) {
      if (url->host() == host) return true;
    }
  }
  return false;
}

std::optional<net::Address> GlobalLayer::resolveOwner(const std::string& host) {
  {
    std::scoped_lock lock(mu_);
    auto it = lookupCache_.find(host);
    if (it != lookupCache_.end() &&
        gateway_.clock().now() - it->second.at < options_.lookupCacheTtl) {
      ++stats_.lookupCacheHits;
      return it->second.producer;
    }
  }
  std::optional<ProducerEntry> entry;
  {
    std::scoped_lock lock(mu_);
    ++stats_.directoryLookups;
  }
  entry = directory_.lookup(host);
  if (!entry) return std::nullopt;
  std::scoped_lock lock(mu_);
  lookupCache_[host] = CachedLookup{entry->address, gateway_.clock().now()};
  return entry->address;
}

std::shared_ptr<const dbc::VectorResultSet> GlobalLayer::queryRemote(
    const std::string& urlText, const std::string& sql, bool useCache) {
  // Inter-gateway cache: identical key space as local source caching.
  // Hits share the cached row storage directly (zero-copy, E14).
  const std::string cacheKey = core::CacheController::key(urlText, sql);
  if (useCache) {
    if (auto cached = gateway_.cache().lookupShared(cacheKey)) {
      std::scoped_lock lock(mu_);
      ++stats_.remoteCacheHits;
      return cached;
    }
  }

  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  auto owner = resolveOwner(url->host());
  if (!owner) {
    throw SqlError(ErrorCode::ConnectionFailed,
                   "no gateway owns host " + url->host());
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.remoteQueriesSent;
  }
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), *owner,
        "GQUERY " + options_.federationSecret + "\n" + urlText + "\n" + sql);
  } catch (const net::NetError& e) {
    throw SqlError(ErrorCode::ConnectionFailed,
                   "remote gateway unreachable: " + std::string(e.what()));
  }
  if (util::startsWith(response, "ERR ")) {
    throw SqlError(ErrorCode::Generic, "remote: " + response.substr(4));
  }
  std::shared_ptr<const dbc::VectorResultSet> rows =
      dbc::deserializeResultSet(response);
  if (useCache) gateway_.cache().insert(cacheKey, rows);
  return rows;
}

core::QueryResult GlobalLayer::globalQuery(const std::string& token,
                                           const std::vector<std::string>& urls,
                                           const std::string& sql,
                                           const core::QueryOptions& options) {
  core::Principal principal =
      gateway_.authorize(token, core::Operation::RealTimeQuery);

  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<Value>> rows;
  bool haveColumns = false;
  core::QueryResult result;
  result.sourcesQueried = urls.size();

  auto appendRows = [&](const std::string& sourceUrl,
                        const dbc::VectorResultSet& rs) {
    if (!haveColumns) {
      columns.push_back(
          dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
      for (const auto& c : rs.metaData().columns()) columns.push_back(c);
      haveColumns = true;
    }
    for (const auto& row : rs.rows()) {
      std::vector<Value> outRow;
      outRow.reserve(row.size() + 1);
      outRow.emplace_back(sourceUrl);
      for (const auto& v : row) outRow.push_back(v);
      rows.push_back(std::move(outRow));
    }
  };

  for (const auto& urlText : urls) {
    auto url = util::Url::parse(urlText);
    if (!url) {
      result.failures.push_back({urlText, "malformed URL"});
      continue;
    }
    try {
      if (ownsHost(url->host())) {
        core::QueryResult local = gateway_.requestManager().queryOne(
            principal, urlText, sql, options);
        if (!local.failures.empty()) {
          result.failures.push_back(local.failures.front());
          continue;
        }
        result.servedFromCache += local.servedFromCache;
        appendRows(urlText, local.rows->underlying());
      } else {
        auto remote = queryRemote(urlText, sql, options.useCache);
        if (options.recordHistory) {
          try {
            gateway_.requestManager().recordHistoryRows(
                urlText, sql::parseSelect(sql).table, *remote);
          } catch (const sql::ParseError&) {
            // non-SELECT or unparseable: nothing to record
          }
        }
        appendRows(urlText, *remote);
      }
    } catch (const SqlError& e) {
      result.failures.push_back({urlText, e.what()});
    }
  }

  if (!haveColumns) {
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
  }
  result.rows = std::make_unique<dbc::SharedResultSet>(
      std::make_shared<const dbc::VectorResultSet>(
          dbc::ResultSetMetaData(std::move(columns)), std::move(rows)));
  return result;
}

net::Payload GlobalLayer::handleRequest(const net::Address& /*from*/,
                                        const net::Payload& request) {
  // GQUERY <secret>\n<url>\n<sql>
  // GSUB <secret> <consumerHost:port> <consumerId>\n<url>\n<sql>
  // GUNSUB <secret> <id>
  const auto lines = util::split(request, '\n');
  const auto words = util::splitNonEmpty(lines[0], ' ');
  if (!words.empty() && words[0] == "GSUB") {
    return serveSubscribe(words, lines);
  }
  if (!words.empty() && words[0] == "GUNSUB") {
    if (words.size() < 3) return "ERR bad request";
    if (words[1] != options_.federationSecret) {
      std::scoped_lock lock(mu_);
      ++stats_.authFailures;
      return "ERR federation authentication failed";
    }
    try {
      (void)gateway_.streamEngine().unsubscribe(std::stoull(words[2]));
    } catch (const std::exception&) {
      return "ERR bad subscription id";
    }
    return "OK";
  }
  if (words.size() < 2 || words[0] != "GQUERY" || lines.size() < 3) {
    return "ERR bad request";
  }
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::string& urlText = lines[1];
  std::string sql = lines[2];
  for (std::size_t i = 3; i < lines.size(); ++i) sql += "\n" + lines[i];

  {
    std::scoped_lock lock(mu_);
    ++stats_.remoteQueriesServed;
  }
  // Serve the relayed query as Background work on the gateway's
  // scheduler: remote fan-in competes with local polls, not with this
  // gateway's own interactive clients. The servlet thread belongs to
  // the *consuming* gateway's network stack, so it just waits here.
  auto done = std::make_shared<std::promise<net::Payload>>();
  std::future<net::Payload> ready = done->get_future();
  const bool accepted = gateway_.scheduler().submit(
      core::Lane::Background,
      [this, done, urlText, sql] {
        try {
          core::Principal principal = gateway_.authorize(
              federationToken_, core::Operation::RealTimeQuery);
          core::QueryOptions options;
          options.lane = core::Lane::Background;
          core::QueryResult local = gateway_.requestManager().queryOne(
              principal, urlText, sql, options);
          if (!local.failures.empty()) {
            done->set_value("ERR " + local.failures.front().message);
            return;
          }
          done->set_value(dbc::serializeResultSet(*local.rows));
        } catch (const std::exception& e) {
          done->set_value(std::string("ERR ") + e.what());
        }
      },
      core::CancelToken{}, /*blocking=*/true);
  if (!accepted) return "ERR remote gateway overloaded";
  try {
    return ready.get();
  } catch (const std::future_error&) {
    // The queued task was dropped at scheduler shutdown: its closure
    // (and with it the promise) died unfulfilled.
    return "ERR remote gateway shutting down";
  }
}

net::Payload GlobalLayer::serveSubscribe(
    const std::vector<std::string>& words,
    const std::vector<std::string>& lines) {
  if (words.size() < 4 || lines.size() < 3) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  net::Address consumer;
  std::size_t consumerId = 0;
  try {
    consumer = net::Address::parse(words[2]);
    consumerId = std::stoull(words[3]);
  } catch (const std::exception&) {
    return "ERR bad consumer endpoint";
  }
  const std::string& urlText = lines[1];
  std::string sql = lines[2];
  for (std::size_t i = 3; i < lines.size(); ++i) sql += "\n" + lines[i];

  try {
    (void)gateway_.authorize(federationToken_,
                             core::Operation::StreamSubscribe);
    // This gateway becomes a GMA producer of streamed tuples: every
    // delta the local engine emits is serialised and pushed to the
    // consuming gateway as a datagram on its producer port.
    auto relay = [this, consumer,
                  consumerId](const stream::StreamDelta& delta) {
      dbc::VectorResultSet rows(delta.columns, delta.rows);
      net::Payload payload = "SDELTA " + std::to_string(consumerId) + " " +
                             std::to_string(delta.timestamp) + "\n" +
                             delta.sourceUrl + "\n" + delta.table + "\n" +
                             dbc::serializeResultSet(rows);
      gateway_.network().datagram(producerAddress(), consumer,
                                  std::move(payload));
      std::scoped_lock lock(mu_);
      ++stats_.streamDeltasRelayed;
    };
    const std::size_t id =
        gateway_.streamEngine().subscribe(urlText, sql, std::move(relay));
    {
      std::scoped_lock lock(mu_);
      ++stats_.streamSubscriptionsServed;
    }
    return "OK " + std::to_string(id);
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

void GlobalLayer::handleDatagram(const net::Address& /*from*/,
                                 const net::Payload& body) {
  // SDELTA <consumerId> <timestamp>\n<sourceUrl>\n<table>\n<rows>
  if (!util::startsWith(body, "SDELTA ")) return;
  const std::size_t nl1 = body.find('\n');
  const std::size_t nl2 = nl1 == std::string::npos
                              ? std::string::npos
                              : body.find('\n', nl1 + 1);
  const std::size_t nl3 = nl2 == std::string::npos
                              ? std::string::npos
                              : body.find('\n', nl2 + 1);
  if (nl3 == std::string::npos) return;
  try {
    const auto header = util::splitNonEmpty(body.substr(0, nl1), ' ');
    if (header.size() < 3) return;
    const std::size_t consumerId = std::stoull(header[1]);
    stream::StreamDelta delta;
    delta.timestamp = std::stoll(header[2]);
    delta.sourceUrl = body.substr(nl1 + 1, nl2 - nl1 - 1);
    delta.table = body.substr(nl2 + 1, nl3 - nl2 - 1);
    auto rows = dbc::deserializeResultSet(body.substr(nl3 + 1));
    delta.columns = rows->metaData();
    delta.rows = rows->rows();
    if (gateway_.streamEngine().injectDelta(consumerId, std::move(delta))) {
      std::scoped_lock lock(mu_);
      ++stats_.streamDeltasReceived;
    }
  } catch (const std::exception&) {
    // Malformed or stale delta: drop, exactly like a lost datagram.
  }
}

std::size_t GlobalLayer::subscribeGlobal(
    const std::string& token, const std::string& urlText,
    const std::string& sql,
    stream::ContinuousQueryEngine::DeltaConsumer consumer,
    std::optional<stream::StreamOptions> streamOptions) {
  (void)gateway_.authorize(token, core::Operation::StreamSubscribe);
  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  if (ownsHost(url->host())) {
    return gateway_.streamEngine().subscribe(urlText, sql,
                                             std::move(consumer),
                                             std::move(streamOptions));
  }
  auto owner = resolveOwner(url->host());
  if (!owner) {
    throw SqlError(ErrorCode::ConnectionFailed,
                   "no gateway owns host " + url->host());
  }
  // Local passive endpoint first, so the id travels in the GSUB request
  // and relayed deltas can be routed the moment the remote end streams.
  const std::size_t localId = gateway_.streamEngine().subscribePassive(
      "relay:" + urlText, std::move(consumer), std::move(streamOptions));
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), *owner,
        "GSUB " + options_.federationSecret + " " +
            producerAddress().toString() + " " + std::to_string(localId) +
            "\n" + urlText + "\n" + sql);
  } catch (const net::NetError& e) {
    (void)gateway_.streamEngine().unsubscribe(localId);
    throw SqlError(ErrorCode::ConnectionFailed,
                   "remote gateway unreachable: " + std::string(e.what()));
  }
  if (util::startsWith(response, "ERR ")) {
    (void)gateway_.streamEngine().unsubscribe(localId);
    throw SqlError(ErrorCode::Generic, "remote: " + response.substr(4));
  }
  std::size_t remoteId = 0;
  try {
    remoteId = std::stoull(response.substr(3));
  } catch (const std::exception&) {
    (void)gateway_.streamEngine().unsubscribe(localId);
    throw SqlError(ErrorCode::Generic, "remote: malformed GSUB response");
  }
  std::scoped_lock lock(mu_);
  ++stats_.streamSubscriptionsSent;
  remoteSubscriptions_[localId] = RemoteSubscription{*owner, remoteId};
  return localId;
}

void GlobalLayer::unsubscribeGlobal(const std::string& token, std::size_t id) {
  (void)gateway_.authorize(token, core::Operation::StreamSubscribe);
  std::optional<RemoteSubscription> remote;
  {
    std::scoped_lock lock(mu_);
    auto it = remoteSubscriptions_.find(id);
    if (it != remoteSubscriptions_.end()) {
      remote = it->second;
      remoteSubscriptions_.erase(it);
    }
  }
  if (remote) {
    try {
      (void)gateway_.network().request(
          producerAddress(), remote->owner,
          "GUNSUB " + options_.federationSecret + " " +
              std::to_string(remote->remoteId));
    } catch (const net::NetError&) {
      // The stream simply stops refreshing; local cleanup still runs.
    }
  }
  (void)gateway_.streamEngine().unsubscribe(id);
}

void GlobalLayer::propagateEvent(const core::Event& event) {
  core::TextEventFormatter formatter;
  core::Event tagged = event;
  tagged.fields["origin"] = Value(gateway_.name());
  tagged.fields["source_host"] = Value(event.source);
  auto encoded = formatter.encode(tagged);
  if (!encoded) return;

  std::vector<ConsumerEntry> targets;
  try {
    targets = directory_.consumersFor(event.type);
  } catch (const net::NetError&) {
    return;  // directory unreachable; drop propagation, keep local delivery
  }
  for (const auto& target : targets) {
    if (target.address == gateway_.eventAddress()) continue;  // not to self
    gateway_.network().datagram(producerAddress(), target.address, *encoded);
    std::scoped_lock lock(mu_);
    ++stats_.eventsPropagated;
  }
}

GlobalStats GlobalLayer::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace gridrm::global
