#include "gridrm/global/global_layer.hpp"

#include <chrono>
#include <condition_variable>
#include <future>

#include "gridrm/dbc/result_io.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/util/config.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::global {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

std::uint64_t parseU64(const std::string& text, std::uint64_t fallback = 0) {
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::uint64_t seedFromName(const std::string& name) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (char c : name) h = h * 31 + static_cast<unsigned char>(c);
  return h;
}

}  // namespace

GlobalOptions GlobalOptions::fromConfig(const util::Config& config) {
  GlobalOptions o;
  auto ms = [&](const char* key, util::Duration fallback) {
    return config.has(key) ? config.getInt(key) * util::kMillisecond
                           : fallback;
  };
  o.federationSecret = config.getString("federation.secret", o.federationSecret);
  o.producerPort = static_cast<std::uint16_t>(
      config.getInt("federation.producer_port", o.producerPort));
  o.lookupCacheTtl = ms("federation.lookup_ttl_ms", o.lookupCacheTtl);
  o.negativeLookupTtl =
      ms("federation.negative_lookup_ttl_ms", o.negativeLookupTtl);
  o.leaseTtl = ms("federation.lease_ttl_ms", o.leaseTtl);
  o.registerRetries = static_cast<std::size_t>(config.getInt(
      "federation.register_retries",
      static_cast<std::int64_t>(o.registerRetries)));
  o.registerBackoff = ms("federation.register_backoff_ms", o.registerBackoff);
  o.queryRetries = static_cast<std::size_t>(config.getInt(
      "federation.query_retries", static_cast<std::int64_t>(o.queryRetries)));
  o.queryBackoff = ms("federation.query_backoff_ms", o.queryBackoff);
  o.reliableDelivery = config.getBool("federation.reliable", o.reliableDelivery);
  o.resendBuffer = static_cast<std::size_t>(config.getInt(
      "federation.resend_buffer", static_cast<std::int64_t>(o.resendBuffer)));
  o.reorderWindow = static_cast<std::size_t>(config.getInt(
      "federation.reorder_window",
      static_cast<std::int64_t>(o.reorderWindow)));
  o.livenessTimeout = ms("federation.liveness_timeout_ms", o.livenessTimeout);
  o.resubscribeReplayRows = static_cast<std::size_t>(config.getInt(
      "federation.replay_rows",
      static_cast<std::int64_t>(o.resubscribeReplayRows)));
  o.serveStale = config.getBool("federation.serve_stale", o.serveStale);
  o.staleCacheEntries = static_cast<std::size_t>(config.getInt(
      "federation.stale_entries",
      static_cast<std::int64_t>(o.staleCacheEntries)));
  o.propagateEventPattern =
      config.getString("federation.propagate_events", o.propagateEventPattern);
  o.fragmentFrameRows = static_cast<std::size_t>(config.getInt(
      "federation.fragment_frame_rows",
      static_cast<std::int64_t>(o.fragmentFrameRows)));
  o.fragmentStreams = static_cast<std::size_t>(config.getInt(
      "federation.fragment_streams",
      static_cast<std::int64_t>(o.fragmentStreams)));
  o.fragmentNackRounds = static_cast<std::size_t>(config.getInt(
      "federation.fragment_nack_rounds",
      static_cast<std::int64_t>(o.fragmentNackRounds)));
  return o;
}

GlobalLayer::GlobalLayer(core::Gateway& gateway,
                         const net::Address& directoryAddress,
                         GlobalOptions options)
    : GlobalLayer(gateway, std::vector<net::Address>{directoryAddress},
                  std::move(options)) {}

GlobalLayer::GlobalLayer(core::Gateway& gateway,
                         std::vector<net::Address> directorySeeds,
                         GlobalOptions options)
    : gateway_(gateway),
      options_(std::move(options)),
      directory_(gateway.network(), producerAddress(),
                 std::move(directorySeeds)),
      rng_(seedFromName(gateway.name())) {
  // Directory failover attempts (beyond a shard's first replica) are
  // deliberate duplicates: route them through the Hedge lane like
  // remote-query retries so they cannot crowd out first-attempt work.
  directory_.setTransport([this](const net::Address& to,
                                 const net::Payload& body, bool retry) {
    if (retry && started_.load()) return requestViaHedgeLane(to, body);
    return gateway_.network().request(producerAddress(), to, body);
  });
}

GlobalLayer::~GlobalLayer() { stop(); }

void GlobalLayer::start(std::vector<std::string> extraOwnedHostPatterns) {
  if (started_.load()) return;
  epoch_.fetch_add(1);
  // A federation principal serves relayed requests with monitor rights.
  federationToken_ = gateway_.openSession(
      core::Principal{"federation:" + gateway_.name(), {"monitor"}});

  gateway_.network().bind(producerAddress(), this);

  std::vector<std::string> patterns = std::move(extraOwnedHostPatterns);
  for (const auto& urlText : gateway_.dataSources()) {
    if (auto url = util::Url::parse(urlText)) patterns.push_back(url->host());
  }
  {
    std::scoped_lock lock(mu_);
    ownedPatterns_ = std::move(patterns);
    registered_ = false;
  }
  started_.store(true);
  // Registration failure is survivable: tick() retries until the
  // directory answers, so a gateway booting first still federates.
  renewRegistration(options_.registerRetries);

  if (!options_.propagateEventPattern.empty()) {
    // Forward matching local events outward. Events that already carry
    // an origin field were relayed to us; never re-forward them.
    propagationListenerId_ = gateway_.eventManager().addListener(
        options_.propagateEventPattern, [this](const core::Event& event) {
          if (event.fields.count("origin") != 0) return;
          propagateEvent(event);
        });
  }
}

void GlobalLayer::renewRegistration(std::size_t retries) {
  std::vector<std::string> patterns;
  bool wasRegistered = false;
  {
    std::scoped_lock lock(mu_);
    patterns = ownedPatterns_;
    wasRegistered = registered_;
  }
  try {
    const std::size_t attempts = directory_.registerProducer(
        gateway_.name(), producerAddress(), patterns, epoch_.load(),
        options_.leaseTtl, retries, options_.registerBackoff);
    if (!options_.propagateEventPattern.empty()) {
      // Reliable mode receives remote events as GEVENT requests on the
      // producer port; legacy mode keeps the event-sink datagram path.
      (void)directory_.registerConsumer(
          gateway_.name(),
          options_.reliableDelivery ? producerAddress()
                                    : gateway_.eventAddress(),
          options_.propagateEventPattern, options_.leaseTtl);
    }
    std::scoped_lock lock(mu_);
    stats_.registerRetries += attempts > 0 ? attempts - 1 : 0;
    if (wasRegistered) ++stats_.leaseRenewals;
    registered_ = true;
    lastRegisteredAt_ = gateway_.clock().now();
  } catch (const net::NetError&) {
    std::scoped_lock lock(mu_);
    stats_.registerRetries += retries;
    registered_ = false;
  }
}

void GlobalLayer::stop() {
  if (!started_.load()) return;
  if (propagationListenerId_ != 0) {
    gateway_.eventManager().removeListener(propagationListenerId_);
    propagationListenerId_ = 0;
  }
  // Tear down relayed subscriptions: tell each owning gateway to stop
  // streaming, then drop the local passive endpoints.
  std::map<std::size_t, std::shared_ptr<RemoteSubscription>> remotes;
  std::map<std::size_t, std::shared_ptr<ServedRelay>> relays;
  {
    std::scoped_lock lock(mu_);
    remotes.swap(remoteSubscriptions_);
    relays.swap(servedRelays_);
  }
  for (const auto& [localId, remote] : remotes) {
    if (remote->remoteId != 0) {
      try {
        (void)gateway_.network().request(
            producerAddress(), remote->owner,
            "GUNSUB " + options_.federationSecret + " " +
                std::to_string(remote->remoteId));
      } catch (const net::NetError&) {
        // Owner may already be gone during teardown.
      }
    }
    (void)gateway_.streamEngine().unsubscribe(localId);
  }
  for (const auto& [relayId, relay] : relays) {
    (void)gateway_.streamEngine().unsubscribe(relay->engineId);
  }
  try {
    directory_.unregisterProducer(gateway_.name());
    if (!options_.propagateEventPattern.empty()) {
      directory_.unregisterConsumer(gateway_.name());
    }
  } catch (const net::NetError&) {
    // Directory may already be gone during teardown.
  }
  gateway_.network().unbind(producerAddress());
  gateway_.closeSession(federationToken_);
  started_.store(false);
}

void GlobalLayer::crash() {
  if (!started_.load()) return;
  if (propagationListenerId_ != 0) {
    gateway_.eventManager().removeListener(propagationListenerId_);
    propagationListenerId_ = 0;
  }
  gateway_.network().unbind(producerAddress());
  std::map<std::size_t, std::shared_ptr<RemoteSubscription>> remotes;
  std::map<std::size_t, std::shared_ptr<ServedRelay>> relays;
  {
    std::scoped_lock lock(mu_);
    remotes.swap(remoteSubscriptions_);
    relays.swap(servedRelays_);
    lookupCache_.clear();
    staleCache_.clear();
    staleOrder_.clear();
    eventSeq_.clear();
    eventDedup_.clear();
    registered_ = false;
  }
  {
    // Served fragment streams and half-assembled collectors die with
    // the process: a coordinator mid-fetch sees loss and resyncs.
    std::scoped_lock flock(fragMu_);
    fragStreams_.clear();
    fragStreamOrder_.clear();
    fragCollectors_.clear();
  }
  // No GUNSUB, no directory unregistration: the process is "gone".
  // Leases expire at the directory; consumers heal via SPING -> GONE.
  for (const auto& [localId, remote] : remotes) {
    (void)gateway_.streamEngine().unsubscribe(localId);
  }
  for (const auto& [relayId, relay] : relays) {
    (void)gateway_.streamEngine().unsubscribe(relay->engineId);
  }
  gateway_.closeSession(federationToken_);
  started_.store(false);
}

bool GlobalLayer::ownsHost(const std::string& host) const {
  for (const auto& urlText : gateway_.dataSources()) {
    if (auto url = util::Url::parse(urlText)) {
      if (url->host() == host) return true;
    }
  }
  return false;
}

GlobalLayer::OwnerResolution GlobalLayer::resolveOwner(
    const std::string& host) {
  const util::TimePoint now = gateway_.clock().now();
  std::optional<net::Address> staleAddress;
  {
    std::scoped_lock lock(mu_);
    auto it = lookupCache_.find(host);
    if (it != lookupCache_.end()) {
      const bool negative = !it->second.producer.has_value();
      const util::Duration ttl =
          negative ? options_.negativeLookupTtl : options_.lookupCacheTtl;
      if (now - it->second.at < ttl) {
        if (negative) {
          ++stats_.negativeLookupHits;
          return {std::nullopt, false};
        }
        ++stats_.lookupCacheHits;
        return {it->second.producer, false};
      }
      // Expired positive entry: kept as the stale-while-revalidate
      // fallback should the directory be unreachable.
      staleAddress = it->second.producer;
    }
    ++stats_.directoryLookups;
  }
  std::optional<ProducerEntry> entry;
  try {
    entry = directory_.lookup(host);
  } catch (const net::NetError&) {
    // An unreachable directory is NOT "no such producer" (S1): serve
    // the expired cache entry if we have one, otherwise surface the
    // outage to the caller.
    std::scoped_lock lock(mu_);
    if (staleAddress) {
      ++stats_.staleLookupsServed;
      return {staleAddress, false};  // stays expired: revalidate next time
    }
    ++stats_.directoryUnavailable;
    return {std::nullopt, true};
  }
  std::scoped_lock lock(mu_);
  if (!entry) {
    lookupCache_[host] = CachedLookup{std::nullopt, now};
    return {std::nullopt, false};
  }
  lookupCache_[host] = CachedLookup{entry->address, now};
  return {entry->address, false};
}

void GlobalLayer::rememberStale(
    const std::string& cacheKey,
    std::shared_ptr<const dbc::VectorResultSet> rows) {
  if (!options_.serveStale || options_.staleCacheEntries == 0) return;
  std::scoped_lock lock(mu_);
  if (staleCache_.count(cacheKey) == 0) {
    while (staleCache_.size() >= options_.staleCacheEntries &&
           !staleOrder_.empty()) {
      staleCache_.erase(staleOrder_.front());
      staleOrder_.pop_front();
    }
    staleOrder_.push_back(cacheKey);
  }
  staleCache_[cacheKey] = std::move(rows);
}

net::Payload GlobalLayer::requestViaHedgeLane(const net::Address& owner,
                                              const net::Payload& body) {
  auto done = std::make_shared<std::promise<net::Payload>>();
  std::future<net::Payload> ready = done->get_future();
  const bool accepted = gateway_.scheduler().submit(
      core::Lane::Hedge,
      [this, done, owner, body] {
        try {
          done->set_value(
              gateway_.network().request(producerAddress(), owner, body));
        } catch (...) {
          done->set_exception(std::current_exception());
        }
      },
      core::CancelToken{}, /*blocking=*/true);
  if (!accepted) {
    // Lane full: the retry is latency-insensitive enough to run inline.
    return gateway_.network().request(producerAddress(), owner, body);
  }
  try {
    return ready.get();  // rethrows the worker's NetError
  } catch (const std::future_error&) {
    throw net::NetError(net::NetErrorKind::Timeout,
                        "retry dropped at scheduler shutdown");
  }
}

std::shared_ptr<const dbc::VectorResultSet> GlobalLayer::queryRemote(
    const std::string& urlText, const std::string& sql,
    const core::QueryOptions& options, bool& servedStale) {
  servedStale = false;
  // Inter-gateway cache: identical key space as local source caching.
  // Hits share the cached row storage directly (zero-copy, E14).
  const std::string cacheKey = core::CacheController::key(urlText, sql);
  if (options.useCache) {
    if (auto cached = gateway_.cache().lookupShared(cacheKey)) {
      std::scoped_lock lock(mu_);
      ++stats_.remoteCacheHits;
      return cached;
    }
  }

  // Degraded mode: when the owner is unreachable, an expired cached
  // copy (marked stale for the caller) beats an error.
  auto failUnreachable =
      [&](const std::string& message, ErrorCode code =
              ErrorCode::ConnectionFailed)
      -> std::shared_ptr<const dbc::VectorResultSet> {
    if (options_.serveStale) {
      std::scoped_lock lock(mu_);
      auto it = staleCache_.find(cacheKey);
      if (it != staleCache_.end()) {
        ++stats_.staleRemoteServes;
        servedStale = true;
        return it->second;
      }
    }
    throw SqlError(code, message);
  };

  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  auto owner = resolveOwner(url->host());
  if (!owner.address) {
    // S1: an unreachable directory must never read as a missing
    // producer — Unavailable tells the caller the answer is unknowable.
    if (owner.unavailable) {
      return failUnreachable("directory unavailable for host " + url->host(),
                             ErrorCode::Unavailable);
    }
    return failUnreachable("no gateway owns host " + url->host());
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.remoteQueriesSent;
  }
  const net::Payload request = "GQUERY " + options_.federationSecret + "\n" +
                               urlText + "\n" + sql;
  // Retries with jittered exponential backoff, bounded by the caller's
  // per-source deadline (kInheritTiming resolves to the gateway
  // default). Retries run on the Hedge lane: they are deliberate
  // duplicates and must not crowd out first-attempt work.
  util::Duration deadline = options.deadline;
  if (deadline == core::kInheritTiming) {
    deadline = gateway_.requestManager().tuning().defaultDeadline;
  }
  const util::TimePoint deadlineAt =
      deadline > 0 ? gateway_.clock().now() + deadline : 0;
  net::Payload response;
  std::string lastError;
  bool delivered = false;
  util::Duration backoff = options_.queryBackoff;
  for (std::size_t attempt = 0; attempt <= options_.queryRetries; ++attempt) {
    if (attempt > 0) {
      util::Duration wait = backoff;
      {
        std::scoped_lock lock(mu_);
        if (backoff > 1) {
          wait = backoff / 2 + static_cast<util::Duration>(rng_.below(
                                   static_cast<std::uint64_t>(backoff)));
        }
      }
      if (deadlineAt != 0 && gateway_.clock().now() + wait >= deadlineAt) {
        break;  // a retry would land past the caller's deadline
      }
      gateway_.clock().sleepFor(wait);
      backoff *= 2;
      std::scoped_lock lock(mu_);
      ++stats_.remoteRetries;
    }
    try {
      response = attempt == 0
                     ? gateway_.network().request(producerAddress(),
                                                  *owner.address, request)
                     : requestViaHedgeLane(*owner.address, request);
      delivered = true;
      break;
    } catch (const net::NetError& e) {
      lastError = e.what();
    }
  }
  if (!delivered) {
    return failUnreachable("remote gateway unreachable: " + lastError);
  }
  if (util::startsWith(response, "ERR ")) {
    throw SqlError(ErrorCode::Generic, "remote: " + response.substr(4));
  }
  std::shared_ptr<const dbc::VectorResultSet> rows =
      dbc::deserializeResultSet(response);
  if (options.useCache) gateway_.cache().insert(cacheKey, rows);
  rememberStale(cacheKey, rows);
  return rows;
}

core::QueryResult GlobalLayer::globalQuery(const std::string& token,
                                           const std::vector<std::string>& urls,
                                           const std::string& sql,
                                           const core::QueryOptions& options) {
  core::Principal principal =
      gateway_.authorize(token, core::Operation::RealTimeQuery);

  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<Value>> rows;
  bool haveColumns = false;
  core::QueryResult result;
  result.sourcesQueried = urls.size();

  auto appendRows = [&](const std::string& sourceUrl,
                        const dbc::VectorResultSet& rs) {
    if (!haveColumns) {
      columns.push_back(
          dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
      for (const auto& c : rs.metaData().columns()) columns.push_back(c);
      haveColumns = true;
    }
    for (const auto& row : rs.rows()) {
      std::vector<Value> outRow;
      outRow.reserve(row.size() + 1);
      outRow.emplace_back(sourceUrl);
      for (const auto& v : row) outRow.push_back(v);
      rows.push_back(std::move(outRow));
    }
  };

  for (const auto& urlText : urls) {
    auto url = util::Url::parse(urlText);
    if (!url) {
      result.failures.push_back({urlText, "malformed URL"});
      continue;
    }
    try {
      if (ownsHost(url->host())) {
        core::QueryResult local = gateway_.requestManager().queryOne(
            principal, urlText, sql, options);
        if (!local.failures.empty()) {
          result.failures.push_back(local.failures.front());
          continue;
        }
        result.servedFromCache += local.servedFromCache;
        appendRows(urlText, local.rows->underlying());
      } else {
        bool servedStale = false;
        auto remote = queryRemote(urlText, sql, options, servedStale);
        if (servedStale) result.staleSources.push_back(urlText);
        if (options.recordHistory && !servedStale) {
          try {
            gateway_.requestManager().recordHistoryRows(
                urlText, sql::parseSelect(sql).table, *remote);
          } catch (const sql::ParseError&) {
            // non-SELECT or unparseable: nothing to record
          }
        }
        appendRows(urlText, *remote);
      }
    } catch (const SqlError& e) {
      result.failures.push_back({urlText, e.what(), e.code()});
    }
  }

  if (!haveColumns) {
    columns.push_back(
        dbc::ColumnInfo{"Source", util::ValueType::String, "", ""});
  }
  result.rows = std::make_unique<dbc::SharedResultSet>(
      std::make_shared<const dbc::VectorResultSet>(
          dbc::ResultSetMetaData(std::move(columns)), std::move(rows)));
  return result;
}

std::vector<GlobalLayer::OwnerResolution> GlobalLayer::resolveOwners(
    const std::vector<std::string>& hosts) {
  const util::TimePoint now = gateway_.clock().now();
  std::vector<OwnerResolution> out(hosts.size());
  std::vector<std::optional<net::Address>> stale(hosts.size());
  std::vector<std::string> misses;
  std::vector<std::size_t> missIndex;
  {
    std::scoped_lock lock(mu_);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      auto it = lookupCache_.find(hosts[i]);
      if (it != lookupCache_.end()) {
        const bool negative = !it->second.producer.has_value();
        const util::Duration ttl =
            negative ? options_.negativeLookupTtl : options_.lookupCacheTtl;
        if (now - it->second.at < ttl) {
          if (negative) {
            ++stats_.negativeLookupHits;
          } else {
            ++stats_.lookupCacheHits;
            out[i].address = it->second.producer;
          }
          continue;
        }
        stale[i] = it->second.producer;
      }
      ++stats_.directoryLookups;
      misses.push_back(hosts[i]);
      missIndex.push_back(i);
    }
  }
  if (misses.empty()) return out;
  // One LOOKUPN round trip per directory shard for every cache miss: a
  // federated fan-out over N sites resolves its owners in O(shards)
  // directory requests.
  std::vector<LookupAnswer> answers;
  try {
    answers = directory_.lookupMany(misses);
  } catch (const net::NetError&) {
    // Shard map bootstrap failed: every miss is either stale-served or
    // unavailable (S1 — never a negative).
    std::scoped_lock lock(mu_);
    for (std::size_t i : missIndex) {
      if (stale[i]) {
        ++stats_.staleLookupsServed;
        out[i].address = stale[i];  // stays expired: revalidate next time
      } else {
        ++stats_.directoryUnavailable;
        out[i].unavailable = true;
      }
    }
    return out;
  }
  std::scoped_lock lock(mu_);
  for (std::size_t j = 0; j < missIndex.size(); ++j) {
    const std::size_t i = missIndex[j];
    if (j >= answers.size()) {
      out[i].unavailable = true;
      continue;
    }
    switch (answers[j].status) {
      case LookupStatus::Found:
        lookupCache_[hosts[i]] = CachedLookup{answers[j].entry->address, now};
        out[i].address = answers[j].entry->address;
        break;
      case LookupStatus::NotFound:
        // A proven negative: every shard answered.
        lookupCache_[hosts[i]] = CachedLookup{std::nullopt, now};
        break;
      case LookupStatus::Unavailable:
        // The owning answer may live on an unreachable shard: never
        // cache it as a negative; fall back to stale if we can.
        if (stale[i]) {
          ++stats_.staleLookupsServed;
          out[i].address = stale[i];
        } else {
          ++stats_.directoryUnavailable;
          out[i].unavailable = true;
        }
        break;
    }
  }
  return out;
}

GlobalLayer::SiteFetch GlobalLayer::executeFragment(
    const core::Principal& principal, const std::vector<std::string>& urls,
    const std::string& fragmentSql) {
  SiteFetch fetch;
  // Site-side binding through this gateway's own PlanCache, so a local
  // schema reload invalidates the fragment here too.
  auto parsed =
      gateway_.planCache().parse(fragmentSql, gateway_.schemaManager());

  // Scan each source for just the attributes the fragment needs
  // (projection push-down at the driver); WHERE and aggregation then
  // run over the union with the same evaluator the single-site path
  // uses, so fragment semantics match executeSelect exactly.
  bool star = parsed->neededAttributes().empty();
  for (const auto& item : parsed->statement().items) {
    if (item.isStar()) star = true;
  }
  std::string scanSql;
  if (star) {
    scanSql = "SELECT * FROM " + parsed->statement().table;
  } else {
    scanSql = "SELECT ";
    bool first = true;
    for (const auto& attr : parsed->neededAttributes()) {
      if (!first) scanSql += ", ";
      scanSql += attr;
      first = false;
    }
    scanSql += " FROM " + parsed->statement().table;
  }

  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<Value>> rows;
  bool haveColumns = false;
  core::QueryOptions scanOptions;
  scanOptions.lane = core::Lane::Background;
  for (const auto& urlText : urls) {
    try {
      core::QueryResult local = gateway_.requestManager().queryOne(
          principal, urlText, scanSql, scanOptions);
      if (!local.failures.empty()) {
        fetch.failures.push_back(local.failures.front());
        continue;
      }
      const dbc::VectorResultSet& rs = local.rows->underlying();
      if (!haveColumns) {
        columns = rs.metaData().columns();
        haveColumns = true;
      }
      for (const auto& row : rs.rows()) rows.push_back(row);
    } catch (const SqlError& e) {
      fetch.failures.push_back({urlText, e.what(), e.code()});
    }
  }
  auto result = store::executeSelect(parsed->statement(), columns, rows);
  fetch.partial.columns = result->metaData().columns();
  fetch.partial.rows = result->rows();
  fetch.ok = true;
  return fetch;
}

GlobalLayer::SiteFetch GlobalLayer::fetchRemoteFragment(
    const net::Address& owner, const std::vector<std::string>& urls,
    const std::string& fragmentSql, const core::QueryOptions& options,
    util::TimePoint deadlineAt, const core::CancelToken& cancel) {
  SiteFetch fetch;
  // Fragment-level caching, keyed by owner + URL set + fragment SQL.
  std::string siteKey = "gw://" + owner.toString();
  for (const auto& u : urls) siteKey += "|" + u;
  const std::string cacheKey = core::CacheController::key(siteKey, fragmentSql);
  if (options.useCache) {
    if (auto cached = gateway_.cache().lookupShared(cacheKey)) {
      std::scoped_lock lock(mu_);
      ++stats_.remoteCacheHits;
      fetch.partial.columns = cached->metaData().columns();
      fetch.partial.rows = cached->rows();
      fetch.ok = true;
      return fetch;
    }
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.fragmentsSent;
  }

  std::string lastError = "unreachable";
  util::Duration backoff = options_.queryBackoff;
  for (std::size_t attempt = 0; attempt <= options_.queryRetries; ++attempt) {
    if (cancel.cancelled()) {
      lastError = "cancelled at coordinator deadline";
      break;
    }
    if (attempt > 0) {
      util::Duration wait = backoff;
      {
        std::scoped_lock lock(mu_);
        if (backoff > 1) {
          wait = backoff / 2 + static_cast<util::Duration>(rng_.below(
                                   static_cast<std::uint64_t>(backoff)));
        }
      }
      if (deadlineAt != 0 && gateway_.clock().now() + wait >= deadlineAt) {
        break;  // a retry would land past the caller's deadline
      }
      gateway_.clock().sleepFor(wait);
      backoff *= 2;
      std::scoped_lock lock(mu_);
      ++stats_.remoteRetries;
      ++stats_.fragmentResyncs;  // every retry is a fresh-stream refetch
    }

    // A fresh stream id per attempt: frames of an abandoned attempt can
    // never be mistaken for (or double-counted into) the new one.
    const std::string streamId =
        gateway_.name() + "-" + std::to_string(nextStreamId_.fetch_add(1));
    {
      std::scoped_lock flock(fragMu_);
      fragCollectors_[streamId];
    }
    auto dropCollector = [&] {
      std::scoped_lock flock(fragMu_);
      fragCollectors_.erase(streamId);
    };
    net::Payload request = "GFRAG " + options_.federationSecret + " " +
                           producerAddress().toString() + " " + streamId +
                           " " + std::to_string(options_.fragmentFrameRows) +
                           "\n" + fragmentSql;
    for (const auto& u : urls) request += "\n" + u;
    net::Payload response;
    try {
      response = gateway_.network().request(producerAddress(), owner, request);
    } catch (const net::NetError& e) {
      lastError = e.what();
      dropCollector();
      continue;
    }
    if (util::startsWith(response, "ERR ")) {
      lastError = "remote: " + response.substr(4);
      dropCollector();
      continue;
    }
    const auto rlines = util::split(response, '\n');
    const auto rwords = util::splitNonEmpty(rlines[0], ' ');
    if (rwords.size() < 3 || rwords[0] != "OK") {
      lastError = "bad GFRAG response";
      dropCollector();
      continue;
    }
    const std::uint64_t frameCount = parseU64(rwords[1]);
    std::vector<core::SourceError> siteFailures;
    for (std::size_t i = 1; i < rlines.size(); ++i) {
      if (!util::startsWith(rlines[i], "FAIL ")) continue;
      const auto parts = util::split(rlines[i].substr(5), '\t');
      core::SourceError err;
      if (!parts.empty()) err.url = parts[0];
      if (parts.size() >= 2) {
        err.code = static_cast<ErrorCode>(parseU64(parts[1]));
      }
      if (parts.size() >= 3) err.message = parts[2];
      siteFailures.push_back(std::move(err));
    }

    // Gap repair: frames travelled as datagrams (delivered before the
    // GFRAG reply), so anything missing now is genuine loss. NACK the
    // missing ranges; the owner re-sends from its stream buffer.
    bool complete = false;
    bool gone = false;
    for (std::size_t round = 0; round <= options_.fragmentNackRounds;
         ++round) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;
      {
        std::scoped_lock flock(fragMu_);
        const auto& frames = fragCollectors_[streamId].frames;
        std::uint64_t runFrom = 0;
        for (std::uint64_t seq = 1; seq <= frameCount; ++seq) {
          const bool have = frames.count(seq) != 0;
          if (!have && runFrom == 0) runFrom = seq;
          if (have && runFrom != 0) {
            gaps.emplace_back(runFrom, seq - 1);
            runFrom = 0;
          }
        }
        if (runFrom != 0) gaps.emplace_back(runFrom, frameCount);
      }
      if (gaps.empty()) {
        complete = true;
        break;
      }
      if (round == options_.fragmentNackRounds || cancel.cancelled()) break;
      for (const auto& [from, to] : gaps) {
        {
          std::scoped_lock lock(mu_);
          ++stats_.fragmentNacksSent;
        }
        try {
          const net::Payload answer = gateway_.network().request(
              producerAddress(), owner,
              "FNACK " + options_.federationSecret + " " + streamId + " " +
                  std::to_string(from) + " " + std::to_string(to));
          if (util::startsWith(answer, "GONE")) {
            gone = true;
            break;
          }
        } catch (const net::NetError& e) {
          lastError = e.what();
        }
      }
      if (gone) break;
    }
    if (!complete) {
      if (gone) lastError = "fragment stream evicted at owner";
      else if (lastError.empty()) lastError = "fragment frames lost";
      dropCollector();
      continue;  // full resync: next attempt opens a fresh stream
    }

    std::map<std::uint64_t, net::Payload> frames;
    {
      std::scoped_lock flock(fragMu_);
      frames = std::move(fragCollectors_[streamId].frames);
      fragCollectors_.erase(streamId);
    }
    fetch.partial = store::SitePartial{};
    bool parsedOk = true;
    bool first = true;
    for (const auto& [seq, frame] : frames) {
      try {
        auto rs = dbc::deserializeResultSet(frame);
        if (first) {
          fetch.partial.columns = rs->metaData().columns();
          first = false;
        }
        for (const auto& row : rs->rows()) fetch.partial.rows.push_back(row);
      } catch (const std::exception& e) {
        lastError = std::string("bad fragment frame: ") + e.what();
        parsedOk = false;
        break;
      }
    }
    if (!parsedOk) continue;
    // ACK so the owner can drop its resend buffer for this stream.
    gateway_.network().datagram(producerAddress(), owner, "FACK " + streamId);
    fetch.failures = std::move(siteFailures);
    fetch.ok = true;
    if (fetch.failures.empty()) {
      auto shared = std::make_shared<const dbc::VectorResultSet>(
          dbc::ResultSetMetaData(fetch.partial.columns), fetch.partial.rows);
      if (options.useCache) gateway_.cache().insert(cacheKey, shared);
      rememberStale(cacheKey, shared);
    }
    return fetch;
  }

  // Every attempt failed: degraded-mode stale serving, like queryRemote.
  if (options_.serveStale) {
    std::scoped_lock lock(mu_);
    auto it = staleCache_.find(cacheKey);
    if (it != staleCache_.end()) {
      ++stats_.staleRemoteServes;
      fetch.partial.columns = it->second->metaData().columns();
      fetch.partial.rows = it->second->rows();
      fetch.servedStale = true;
      fetch.ok = true;
      return fetch;
    }
  }
  fetch.error = "site unreachable: " + lastError;
  return fetch;
}

core::QueryResult GlobalLayer::federatedQuery(
    const std::string& token, const std::vector<std::string>& urls,
    const std::string& sql, const core::QueryOptions& options,
    FederatedMode mode) {
  core::Principal principal =
      gateway_.authorize(token, core::Operation::RealTimeQuery);
  // Plan through the PlanCache: parse/bind errors surface here exactly
  // as a single gateway would raise them, and a schema-generation bump
  // flushes cached fragment plans (the stale-fragment fix).
  auto plan = gateway_.planCache().federated(sql, gateway_.schemaManager());
  const bool decomposed = plan->pushdown && mode == FederatedMode::Auto;
  const std::string fragmentSql =
      decomposed ? plan->fragmentSql : plan->shipAllSql;
  {
    std::scoped_lock lock(mu_);
    ++stats_.federatedQueries;
    if (decomposed) {
      ++stats_.federatedPushdownQueries;
    } else {
      ++stats_.federatedShipAllQueries;
    }
  }

  core::QueryResult result;
  result.sourcesQueried = urls.size();
  auto emptyRows = [] {
    return std::make_unique<dbc::SharedResultSet>(
        std::make_shared<const dbc::VectorResultSet>());
  };

  // Resolve every distinct remote host in one batch, then group the
  // URLs by owning site in order of each site's first appearance.
  std::vector<std::string> hosts;
  std::map<std::string, OwnerResolution> ownerByHost;
  for (const auto& urlText : urls) {
    auto url = util::Url::parse(urlText);
    if (!url || ownsHost(url->host())) continue;
    if (ownerByHost.try_emplace(url->host(), OwnerResolution{}).second) {
      hosts.push_back(url->host());
    }
  }
  if (!hosts.empty()) {
    auto owners = resolveOwners(hosts);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      ownerByHost[hosts[i]] = owners[i];
    }
  }

  struct SiteJob {
    bool local = false;
    net::Address owner;
    std::vector<std::string> urls;
  };
  std::vector<SiteJob> jobs;
  std::map<std::string, std::size_t> jobIndex;
  for (const auto& urlText : urls) {
    auto url = util::Url::parse(urlText);
    if (!url) {
      result.failures.push_back(
          {urlText, "malformed URL", ErrorCode::Unsupported});
      continue;
    }
    std::string key;
    SiteJob job;
    if (ownsHost(url->host())) {
      key = "local";
      job.local = true;
    } else {
      const auto& owner = ownerByHost[url->host()];
      if (!owner.address) {
        // S1: a directory outage is Unavailable, a proven negative is
        // ConnectionFailed — a federated caller can tell a dead shard
        // from a host nobody monitors.
        if (owner.unavailable) {
          result.failures.push_back(
              {urlText, "directory unavailable for host " + url->host(),
               ErrorCode::Unavailable});
        } else {
          result.failures.push_back({urlText,
                                     "no gateway owns host " + url->host(),
                                     ErrorCode::ConnectionFailed});
        }
        continue;
      }
      key = owner.address->toString();
      job.owner = *owner.address;
    }
    auto [it, inserted] = jobIndex.try_emplace(key, jobs.size());
    if (inserted) jobs.push_back(std::move(job));
    jobs[it->second].urls.push_back(urlText);
  }

  util::Duration deadline = options.deadline;
  if (deadline == core::kInheritTiming) {
    deadline = gateway_.requestManager().tuning().defaultDeadline;
  }
  const util::TimePoint deadlineAt =
      deadline > 0 ? gateway_.clock().now() + deadline : 0;

  // One task per site on the caller's lane, each with its own cancel
  // token: a met coordinator deadline prunes still-queued site fetches
  // at dispatch (LaneStats.cancelled) instead of letting them run for
  // a caller that already gave up. State is heap-shared because a
  // *running* fetch may outlive this frame (cancellation is advisory).
  struct FanState {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::vector<SiteFetch> fetches;
    std::vector<bool> finished;
  };
  auto state = std::make_shared<FanState>();
  state->fetches.resize(jobs.size());
  state->finished.assign(jobs.size(), false);
  std::vector<core::CancelToken> tokens(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    tokens[i] = core::CancelToken::make();
    const SiteJob& job = jobs[i];
    auto finish = [state, i](SiteFetch fetch) {
      std::scoped_lock lock(state->mu);
      state->fetches[i] = std::move(fetch);
      state->finished[i] = true;
      ++state->done;
      state->cv.notify_all();
    };
    auto task = [this, job, fragmentSql, options, deadlineAt, principal,
                 token = tokens[i], finish] {
      SiteFetch fetch;
      try {
        fetch = job.local
                    ? executeFragment(principal, job.urls, fragmentSql)
                    : fetchRemoteFragment(job.owner, job.urls, fragmentSql,
                                          options, deadlineAt, token);
      } catch (const SqlError& e) {
        fetch.ok = false;
        fetch.error = e.what();
        fetch.errorCode = e.code();
      } catch (const std::exception& e) {
        fetch.ok = false;
        fetch.error = e.what();
      }
      finish(std::move(fetch));
    };
    if (!gateway_.scheduler().submit(options.lane, std::move(task), tokens[i],
                                     /*blocking=*/true)) {
      SiteFetch refused;
      refused.error = "gateway overloaded";
      refused.errorCode = ErrorCode::Overloaded;
      finish(std::move(refused));
    }
  }

  // Wait for every site or the coordinator deadline, whichever first.
  std::size_t cancelled = 0;
  {
    std::unique_lock lock(state->mu);
    for (;;) {
      if (state->done == jobs.size()) break;
      if (deadlineAt != 0 && gateway_.clock().now() >= deadlineAt) break;
      if (gateway_.scheduler().stopped()) break;
      state->cv.wait_for(lock, std::chrono::microseconds(200));
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (state->finished[i]) continue;
      tokens[i].cancel();
      ++cancelled;
      for (const auto& u : jobs[i].urls) {
        result.failures.push_back(
            {u, "coordinator deadline exceeded", ErrorCode::Timeout});
      }
    }
  }
  if (cancelled > 0) {
    std::scoped_lock lock(mu_);
    stats_.federatedDeadlineCancels += cancelled;
  }

  // Merge the sites that answered, in site order.
  std::vector<store::SitePartial> partials;
  {
    std::scoped_lock lock(state->mu);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (!state->finished[i]) continue;
      SiteFetch& fetch = state->fetches[i];
      for (auto& f : fetch.failures) result.failures.push_back(std::move(f));
      if (!fetch.ok) {
        for (const auto& u : jobs[i].urls) {
          result.failures.push_back({u, fetch.error, fetch.errorCode});
        }
        continue;
      }
      if (fetch.servedStale) {
        for (const auto& u : jobs[i].urls) result.staleSources.push_back(u);
      }
      partials.push_back(std::move(fetch.partial));
    }
  }
  if (partials.empty()) {
    result.rows = emptyRows();
    return result;
  }
  try {
    std::shared_ptr<const dbc::VectorResultSet> merged =
        store::mergeFederated(*plan, partials, decomposed);
    result.rows = std::make_unique<dbc::SharedResultSet>(std::move(merged));
  } catch (const SqlError& e) {
    // A semantic error in the merge is the statement's own error (the
    // single-site path would raise it per source): report it against
    // every URL rather than throwing past the partial results.
    for (const auto& urlText : urls) {
      result.failures.push_back({urlText, e.what(), e.code()});
    }
    result.rows = emptyRows();
  }
  return result;
}

net::Payload GlobalLayer::serveFragment(
    const std::vector<std::string>& words,
    const std::vector<std::string>& lines) {
  // GFRAG <secret> <consumer> <streamId> <frameRows>\n<sql>\n<url>...
  if (words.size() < 5 || lines.size() < 3) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  net::Address consumer;
  try {
    consumer = net::Address::parse(words[2]);
  } catch (const std::exception&) {
    return "ERR bad request";
  }
  const std::string streamId = words[3];
  std::size_t frameRows = static_cast<std::size_t>(parseU64(words[4], 64));
  if (frameRows == 0) frameRows = 1;
  const std::string fragmentSql = lines[1];
  std::vector<std::string> urls;
  for (std::size_t i = 2; i < lines.size(); ++i) {
    auto u = util::trim(lines[i]);
    if (!u.empty()) urls.emplace_back(u);
  }
  if (urls.empty()) return "ERR bad request";
  {
    std::scoped_lock lock(mu_);
    ++stats_.fragmentsServed;
  }

  // Execute as Background work, like GQUERY: remote fan-in competes
  // with local polls, not with this gateway's interactive clients.
  auto done = std::make_shared<std::promise<SiteFetch>>();
  std::future<SiteFetch> ready = done->get_future();
  const bool accepted = gateway_.scheduler().submit(
      core::Lane::Background,
      [this, done, urls, fragmentSql] {
        SiteFetch fetch;
        try {
          core::Principal principal = gateway_.authorize(
              federationToken_, core::Operation::RealTimeQuery);
          fetch = executeFragment(principal, urls, fragmentSql);
        } catch (const std::exception& e) {
          fetch.ok = false;
          fetch.error = e.what();
        }
        done->set_value(std::move(fetch));
      },
      core::CancelToken{}, /*blocking=*/true);
  if (!accepted) return "ERR remote gateway overloaded";
  SiteFetch fetch;
  try {
    fetch = ready.get();
  } catch (const std::future_error&) {
    return "ERR remote gateway shutting down";
  }
  if (!fetch.ok) return "ERR " + fetch.error;

  // Frame the result: `frameRows` rows per FFRAME, and at least one
  // frame so an empty result still delivers its column metadata.
  const auto& rows = fetch.partial.rows;
  const std::size_t frameCount =
      rows.empty() ? 1 : (rows.size() + frameRows - 1) / frameRows;
  std::vector<net::Payload> frames;
  frames.reserve(frameCount);
  for (std::size_t i = 0; i < frameCount; ++i) {
    const std::size_t begin = i * frameRows;
    const std::size_t end = std::min(rows.size(), begin + frameRows);
    std::vector<std::vector<Value>> slice(rows.begin() + begin,
                                          rows.begin() + end);
    dbc::VectorResultSet frame(dbc::ResultSetMetaData(fetch.partial.columns),
                               std::move(slice));
    frames.push_back("FFRAME " + streamId + " " + std::to_string(i + 1) +
                     " " + std::to_string(frameCount) + " " +
                     std::to_string(epoch_.load()) + "\n" +
                     dbc::serializeResultSet(frame));
  }
  {
    // Keep the stream for FNACK repair until FACKed or evicted (FIFO).
    std::scoped_lock flock(fragMu_);
    if (fragStreams_.count(streamId) == 0) {
      while (fragStreams_.size() >= options_.fragmentStreams &&
             !fragStreamOrder_.empty()) {
        fragStreams_.erase(fragStreamOrder_.front());
        fragStreamOrder_.pop_front();
      }
      fragStreamOrder_.push_back(streamId);
    }
    fragStreams_[streamId] = FragmentStream{frames, consumer};
  }
  for (const auto& frame : frames) {
    gateway_.network().datagram(producerAddress(), consumer, frame);
  }
  {
    std::scoped_lock lock(mu_);
    stats_.fragmentFramesSent += frames.size();
    stats_.fragmentRowsShipped += rows.size();
  }
  net::Payload response = "OK " + std::to_string(frameCount) + " " +
                          std::to_string(epoch_.load());
  for (const auto& f : fetch.failures) {
    std::string message = f.message;
    for (char& c : message) {
      if (c == '\n' || c == '\t') c = ' ';
    }
    response += "\nFAIL " + f.url + "\t" +
                std::to_string(static_cast<int>(f.code)) + "\t" + message;
  }
  return response;
}

net::Payload GlobalLayer::serveFragmentNack(
    const std::vector<std::string>& words) {
  // FNACK <secret> <streamId> <from> <to>
  if (words.size() < 5) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::string& streamId = words[2];
  const std::uint64_t from = parseU64(words[3]);
  const std::uint64_t to = parseU64(words[4]);
  std::vector<net::Payload> frames;
  net::Address consumer;
  {
    std::scoped_lock flock(fragMu_);
    auto it = fragStreams_.find(streamId);
    if (it == fragStreams_.end()) {
      return "GONE " + std::to_string(epoch_.load());
    }
    consumer = it->second.consumer;
    for (std::uint64_t seq = from; seq >= 1 && seq <= to; ++seq) {
      if (seq <= it->second.frames.size()) {
        frames.push_back(it->second.frames[seq - 1]);
      }
    }
  }
  for (const auto& frame : frames) {
    gateway_.network().datagram(producerAddress(), consumer, frame);
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.fragmentNacksServed;
    stats_.fragmentFramesResent += frames.size();
  }
  return "OK " + std::to_string(frames.size());
}

void GlobalLayer::processFragmentFrame(const net::Payload& body) {
  // FFRAME <streamId> <seq> <of> <epoch>\n<result-set frame>
  const std::size_t nl = body.find('\n');
  if (nl == std::string::npos) return;
  const auto header = util::splitNonEmpty(body.substr(0, nl), ' ');
  if (header.size() < 4) return;
  const std::string& streamId = header[1];
  const std::uint64_t seq = parseU64(header[2]);
  const std::uint64_t of = parseU64(header[3]);
  if (seq == 0) return;
  bool duplicate = false;
  bool stored = false;
  {
    std::scoped_lock flock(fragMu_);
    auto it = fragCollectors_.find(streamId);
    if (it == fragCollectors_.end()) {
      // A frame of a finished or abandoned stream (e.g. a late NACK
      // resend after the fetch already completed): never re-ingested.
      duplicate = true;
    } else if (it->second.frames.count(seq) != 0) {
      duplicate = true;  // resend raced the original delivery
    } else {
      it->second.frames.emplace(seq, body.substr(nl + 1));
      it->second.expected = of;
      stored = true;
    }
  }
  std::scoped_lock lock(mu_);
  if (duplicate) ++stats_.duplicateFragmentFramesDropped;
  if (stored) ++stats_.fragmentFramesReceived;
}

net::Payload GlobalLayer::handleRequest(const net::Address& from,
                                        const net::Payload& request) {
  const auto lines = util::split(request, '\n');
  const auto words = util::splitNonEmpty(lines[0], ' ');
  if (words.empty()) return "ERR bad request";
  if (words[0] == "GSUB") {
    return serveSubscribe(words, lines);
  }
  if (words[0] == "GFRAG") {
    return serveFragment(words, lines);
  }
  if (words[0] == "FNACK") {
    return serveFragmentNack(words);
  }
  if (words[0] == "SNACK") {
    return serveNack(words);
  }
  if (words[0] == "SPING") {
    return servePing(words);
  }
  if (words[0] == "GEVENT") {
    return serveEvent(from, words, request);
  }
  if (words[0] == "GUNSUB") {
    if (words.size() < 3) return "ERR bad request";
    if (words[1] != options_.federationSecret) {
      std::scoped_lock lock(mu_);
      ++stats_.authFailures;
      return "ERR federation authentication failed";
    }
    const std::size_t relayId = parseU64(words[2]);
    std::shared_ptr<ServedRelay> relay;
    {
      std::scoped_lock lock(mu_);
      auto it = servedRelays_.find(relayId);
      if (it != servedRelays_.end()) {
        relay = it->second;
        servedRelays_.erase(it);
      }
    }
    if (!relay) return "ERR bad subscription id";
    (void)gateway_.streamEngine().unsubscribe(relay->engineId);
    return "OK";
  }
  if (words.size() < 2 || words[0] != "GQUERY" || lines.size() < 3) {
    return "ERR bad request";
  }
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::string& urlText = lines[1];
  std::string sql = lines[2];
  for (std::size_t i = 3; i < lines.size(); ++i) sql += "\n" + lines[i];

  {
    std::scoped_lock lock(mu_);
    ++stats_.remoteQueriesServed;
  }
  // Serve the relayed query as Background work on the gateway's
  // scheduler: remote fan-in competes with local polls, not with this
  // gateway's own interactive clients. The servlet thread belongs to
  // the *consuming* gateway's network stack, so it just waits here.
  auto done = std::make_shared<std::promise<net::Payload>>();
  std::future<net::Payload> ready = done->get_future();
  const bool accepted = gateway_.scheduler().submit(
      core::Lane::Background,
      [this, done, urlText, sql] {
        try {
          core::Principal principal = gateway_.authorize(
              federationToken_, core::Operation::RealTimeQuery);
          core::QueryOptions options;
          options.lane = core::Lane::Background;
          core::QueryResult local = gateway_.requestManager().queryOne(
              principal, urlText, sql, options);
          if (!local.failures.empty()) {
            done->set_value("ERR " + local.failures.front().message);
            return;
          }
          done->set_value(dbc::serializeResultSet(*local.rows));
        } catch (const std::exception& e) {
          done->set_value(std::string("ERR ") + e.what());
        }
      },
      core::CancelToken{}, /*blocking=*/true);
  if (!accepted) return "ERR remote gateway overloaded";
  try {
    return ready.get();
  } catch (const std::future_error&) {
    // The queued task was dropped at scheduler shutdown: its closure
    // (and with it the promise) died unfulfilled.
    return "ERR remote gateway shutting down";
  }
}

net::Payload GlobalLayer::serveSubscribe(
    const std::vector<std::string>& words,
    const std::vector<std::string>& lines) {
  if (words.size() < 4 || lines.size() < 3) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  net::Address consumer;
  std::size_t consumerId = 0;
  try {
    consumer = net::Address::parse(words[2]);
    consumerId = std::stoull(words[3]);
  } catch (const std::exception&) {
    return "ERR bad consumer endpoint";
  }
  const std::size_t replayRows =
      words.size() >= 5 ? static_cast<std::size_t>(parseU64(words[4])) : 0;
  const std::string& urlText = lines[1];
  std::string sql = lines[2];
  for (std::size_t i = 3; i < lines.size(); ++i) sql += "\n" + lines[i];

  try {
    (void)gateway_.authorize(federationToken_,
                             core::Operation::StreamSubscribe);
    // A re-subscribe (partition healing) replaces any relay already
    // serving this consumer endpoint: two live relays would stream
    // conflicting sequence spaces.
    std::shared_ptr<ServedRelay> replaced;
    auto relay = std::make_shared<ServedRelay>();
    relay->consumer = consumer;
    relay->consumerId = consumerId;
    {
      std::scoped_lock lock(mu_);
      for (auto it = servedRelays_.begin(); it != servedRelays_.end(); ++it) {
        if (it->second->consumer == consumer &&
            it->second->consumerId == consumerId) {
          replaced = it->second;
          servedRelays_.erase(it);
          break;
        }
      }
      relay->relayId = nextRelayId_++;
    }
    if (replaced) {
      (void)gateway_.streamEngine().unsubscribe(replaced->engineId);
    }
    // This gateway becomes a GMA producer of streamed tuples: every
    // delta the local engine emits is sequenced, buffered for resend
    // and pushed to the consuming gateway as a datagram.
    auto relayFn = [this, relay](const stream::StreamDelta& delta) {
      dbc::VectorResultSet rows(delta.columns, delta.rows);
      const std::string tail = "\n" + delta.sourceUrl + "\n" + delta.table +
                               "\n" + dbc::serializeResultSet(rows);
      net::Payload payload;
      {
        std::scoped_lock rlock(relay->mu);
        const std::uint64_t seq = ++relay->lastSeq;
        payload = "SDELTA " + std::to_string(relay->consumerId) + " " +
                  std::to_string(relay->relayId) + " " + std::to_string(seq) +
                  " " + std::to_string(epoch_.load()) + " " +
                  std::to_string(delta.timestamp) + tail;
        if (options_.reliableDelivery) {
          relay->resend.emplace_back(seq, payload);
          relay->lastFrame = payload;
          while (relay->resend.size() > options_.resendBuffer) {
            relay->minAvailable = relay->resend.front().first + 1;
            relay->resend.pop_front();
          }
        }
      }
      gateway_.network().datagram(producerAddress(), relay->consumer,
                                  std::move(payload));
      std::scoped_lock lock(mu_);
      ++stats_.streamDeltasRelayed;
    };
    stream::StreamOptions streamOptions = gateway_.options().streamOptions;
    streamOptions.replayRows = replayRows;
    relay->engineId = gateway_.streamEngine().subscribe(
        urlText, sql, std::move(relayFn), streamOptions);
    {
      std::scoped_lock lock(mu_);
      servedRelays_[relay->relayId] = relay;
      ++stats_.streamSubscriptionsServed;
    }
    return "OK " + std::to_string(relay->relayId) + " " +
           std::to_string(epoch_.load());
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

net::Payload GlobalLayer::serveNack(const std::vector<std::string>& words) {
  // SNACK <secret> <relayId> <from> <to>
  if (words.size() < 5) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::size_t relayId = parseU64(words[2]);
  const std::uint64_t from = parseU64(words[3]);
  const std::uint64_t to = parseU64(words[4]);
  std::shared_ptr<ServedRelay> relay;
  {
    std::scoped_lock lock(mu_);
    auto it = servedRelays_.find(relayId);
    if (it == servedRelays_.end()) {
      return "GONE " + std::to_string(epoch_.load());
    }
    relay = it->second;
    ++stats_.nacksServed;
  }
  std::vector<net::Payload> frames;
  std::uint64_t lastSeq = 0;
  net::Payload resyncFrame;
  bool evicted = false;
  {
    std::scoped_lock rlock(relay->mu);
    lastSeq = relay->lastSeq;
    if (from < relay->minAvailable) {
      // The gap predates the resend buffer: fall back to the newest
      // frame as a snapshot the consumer can resync onto.
      evicted = true;
      resyncFrame = relay->lastFrame;
    } else {
      for (const auto& [seq, payload] : relay->resend) {
        if (seq >= from && seq <= to) frames.push_back(payload);
      }
    }
  }
  if (evicted) {
    if (resyncFrame.empty()) return "OK 0 " + std::to_string(lastSeq);
    return "RESYNC " + std::to_string(lastSeq) + "\n" + resyncFrame;
  }
  for (const auto& payload : frames) {
    gateway_.network().datagram(producerAddress(), relay->consumer, payload);
  }
  {
    std::scoped_lock lock(mu_);
    stats_.deltasResent += frames.size();
  }
  return "OK " + std::to_string(frames.size()) + " " +
         std::to_string(lastSeq);
}

net::Payload GlobalLayer::servePing(const std::vector<std::string>& words) {
  // SPING <secret> <relayId>
  if (words.size() < 3) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::size_t relayId = parseU64(words[2]);
  std::shared_ptr<ServedRelay> relay;
  {
    std::scoped_lock lock(mu_);
    auto it = servedRelays_.find(relayId);
    if (it == servedRelays_.end()) {
      return "GONE " + std::to_string(epoch_.load());
    }
    relay = it->second;
  }
  std::uint64_t lastSeq = 0;
  {
    std::scoped_lock rlock(relay->mu);
    lastSeq = relay->lastSeq;
  }
  return "OK " + std::to_string(epoch_.load()) + " " +
         std::to_string(lastSeq);
}

net::Payload GlobalLayer::serveEvent(const net::Address& from,
                                     const std::vector<std::string>& words,
                                     const net::Payload& body) {
  // GEVENT <secret> <origin> <epoch> <seq>\n<encodedEvent>
  if (words.size() < 5) return "ERR bad request";
  if (words[1] != options_.federationSecret) {
    std::scoped_lock lock(mu_);
    ++stats_.authFailures;
    return "ERR federation authentication failed";
  }
  const std::size_t nl = body.find('\n');
  if (nl == std::string::npos) return "ERR bad request";
  const std::string& origin = words[2];
  const std::uint64_t originEpoch = parseU64(words[3]);
  const std::uint64_t seq = parseU64(words[4]);
  {
    std::scoped_lock lock(mu_);
    OriginDedup& dedup = eventDedup_[origin];
    if (originEpoch > dedup.epoch) {
      // The origin restarted: its sequence space starts over.
      dedup = OriginDedup{originEpoch, 0, {}};
    } else if (originEpoch < dedup.epoch || seq <= dedup.floor ||
               dedup.seen.count(seq) != 0) {
      ++stats_.duplicateEventsDropped;
      return "OK";  // retried delivery of an already-applied event
    }
    dedup.seen.insert(seq);
    while (dedup.seen.size() > 128) {
      dedup.floor = *dedup.seen.begin();
      dedup.seen.erase(dedup.seen.begin());
    }
    ++stats_.remoteEventsIngested;
  }
  gateway_.eventManager().ingestNative(from, body.substr(nl + 1));
  return "OK";
}

void GlobalLayer::handleDatagram(const net::Address& /*from*/,
                                 const net::Payload& body) {
  if (util::startsWith(body, "FFRAME ")) {
    processFragmentFrame(body);
    return;
  }
  if (util::startsWith(body, "FACK ")) {
    const auto words = util::splitNonEmpty(body, ' ');
    if (words.size() >= 2) {
      std::scoped_lock flock(fragMu_);
      fragStreams_.erase(words[1]);
      // The FIFO order entry stays; eviction skips already-erased ids.
    }
    return;
  }
  if (!util::startsWith(body, "SDELTA ")) return;
  processDeltaFrame(body);
}

void GlobalLayer::processDeltaFrame(const net::Payload& body) {
  // SDELTA <consumerId> <relayId> <seq> <epoch> <timestamp>\n
  //     <sourceUrl>\n<table>\n<rows>
  const std::size_t nl1 = body.find('\n');
  const std::size_t nl2 = nl1 == std::string::npos
                              ? std::string::npos
                              : body.find('\n', nl1 + 1);
  const std::size_t nl3 = nl2 == std::string::npos
                              ? std::string::npos
                              : body.find('\n', nl2 + 1);
  if (nl3 == std::string::npos) return;
  try {
    const auto header = util::splitNonEmpty(body.substr(0, nl1), ' ');
    if (header.size() < 6) return;
    const std::size_t consumerId = std::stoull(header[1]);
    const std::size_t relayId = std::stoull(header[2]);
    const std::uint64_t seq = std::stoull(header[3]);
    const std::uint64_t frameEpoch = std::stoull(header[4]);
    stream::StreamDelta delta;
    delta.sequence = seq;
    delta.timestamp = std::stoll(header[5]);
    delta.sourceUrl = body.substr(nl1 + 1, nl2 - nl1 - 1);
    delta.table = body.substr(nl2 + 1, nl3 - nl2 - 1);
    auto rows = dbc::deserializeResultSet(body.substr(nl3 + 1));
    delta.columns = rows->metaData();
    delta.rows = rows->rows();

    std::unique_lock<std::mutex> lock(mu_);
    auto it = remoteSubscriptions_.find(consumerId);
    if (it == remoteSubscriptions_.end()) return;
    auto sub = it->second;
    if (!options_.reliableDelivery) {
      // Legacy fire-and-forget: apply whatever arrives, in whatever
      // order it arrives (the bench ablation baseline).
      sub->lastHeardAt = gateway_.clock().now();
      sub->applyQueue.push_back(std::move(delta));
      pumpApply(consumerId, sub, lock);
      return;
    }
    if (sub->remoteId == 0) {
      // The (re-)subscribe handshake is still in flight: buffer the
      // raw frame and re-process once the relay id is known.
      if (sub->pendingFrames.size() < options_.reorderWindow) {
        sub->pendingFrames.push_back(body);
      }
      return;
    }
    if (relayId != sub->remoteId) {
      // A frame from a replaced relay incarnation: never apply it.
      ++stats_.duplicateDeltasDropped;
      return;
    }
    if (frameEpoch != sub->ownerEpoch) {
      if (frameEpoch > sub->ownerEpoch) sub->needsResubscribe = true;
      ++stats_.duplicateDeltasDropped;
      return;
    }
    sub->lastHeardAt = gateway_.clock().now();
    if (seq < sub->nextExpected) {
      ++stats_.duplicateDeltasDropped;
      return;
    }
    if (seq == sub->nextExpected) {
      sub->applyQueue.push_back(std::move(delta));
      ++sub->nextExpected;
      // Drain any directly-following frames parked in the reorder
      // buffer.
      for (auto rit = sub->reorder.find(sub->nextExpected);
           rit != sub->reorder.end();
           rit = sub->reorder.find(sub->nextExpected)) {
        sub->applyQueue.push_back(std::move(rit->second));
        sub->reorder.erase(rit);
        ++sub->nextExpected;
      }
      pumpApply(consumerId, sub, lock);
      return;
    }
    // Gap: park the frame; tick() NACKs the missing range.
    if (sub->reorder.empty()) ++stats_.deltaGapsDetected;
    if (sub->reorder.count(seq) != 0) {
      ++stats_.duplicateDeltasDropped;
      return;
    }
    if (sub->reorder.size() < options_.reorderWindow) {
      sub->reorder.emplace(seq, std::move(delta));
    }
    // else: window full; drop, the NACK/resend cycle re-delivers it.
  } catch (const std::exception&) {
    // Malformed or stale delta: drop, exactly like a lost datagram.
  }
}

void GlobalLayer::pumpApply(std::size_t localId,
                            const std::shared_ptr<RemoteSubscription>& sub,
                            std::unique_lock<std::mutex>& lock) {
  if (sub->applying) return;  // another thread is already draining
  sub->applying = true;
  while (!sub->applyQueue.empty()) {
    stream::StreamDelta delta = std::move(sub->applyQueue.front());
    sub->applyQueue.pop_front();
    lock.unlock();
    const bool ok =
        gateway_.streamEngine().injectDelta(localId, std::move(delta));
    lock.lock();
    if (ok) ++stats_.streamDeltasReceived;
  }
  sub->applying = false;
}

std::size_t GlobalLayer::subscribeGlobal(
    const std::string& token, const std::string& urlText,
    const std::string& sql,
    stream::ContinuousQueryEngine::DeltaConsumer consumer,
    std::optional<stream::StreamOptions> streamOptions) {
  (void)gateway_.authorize(token, core::Operation::StreamSubscribe);
  auto url = util::Url::parse(urlText);
  if (!url) {
    throw SqlError(ErrorCode::Unsupported, "malformed URL: " + urlText);
  }
  if (ownsHost(url->host())) {
    return gateway_.streamEngine().subscribe(urlText, sql,
                                             std::move(consumer),
                                             std::move(streamOptions));
  }
  auto owner = resolveOwner(url->host());
  if (!owner.address) {
    if (owner.unavailable) {
      throw SqlError(ErrorCode::Unavailable,
                     "directory unavailable for host " + url->host());
    }
    throw SqlError(ErrorCode::ConnectionFailed,
                   "no gateway owns host " + url->host());
  }
  const std::size_t initialReplay =
      streamOptions ? streamOptions->replayRows
                    : gateway_.options().streamOptions.replayRows;
  // Local passive endpoint first, so the id travels in the GSUB request
  // and relayed deltas can be routed the moment the remote end streams.
  const std::size_t localId = gateway_.streamEngine().subscribePassive(
      "relay:" + urlText, std::move(consumer), std::move(streamOptions));
  auto sub = std::make_shared<RemoteSubscription>();
  sub->owner = *owner.address;
  sub->url = urlText;
  sub->sql = sql;
  sub->replayRows = std::max(initialReplay, options_.resubscribeReplayRows);
  sub->lastHeardAt = gateway_.clock().now();
  {
    // Registered before the GSUB goes out: replayed frames arrive
    // inside the request call and must find somewhere to buffer.
    std::scoped_lock lock(mu_);
    remoteSubscriptions_[localId] = sub;
  }
  auto abandon = [&] {
    std::scoped_lock lock(mu_);
    remoteSubscriptions_.erase(localId);
  };
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), *owner.address,
        "GSUB " + options_.federationSecret + " " +
            producerAddress().toString() + " " + std::to_string(localId) +
            " " + std::to_string(initialReplay) + "\n" + urlText + "\n" +
            sql);
  } catch (const net::NetError& e) {
    abandon();
    (void)gateway_.streamEngine().unsubscribe(localId);
    throw SqlError(ErrorCode::ConnectionFailed,
                   "remote gateway unreachable: " + std::string(e.what()));
  }
  if (util::startsWith(response, "ERR ")) {
    abandon();
    (void)gateway_.streamEngine().unsubscribe(localId);
    throw SqlError(ErrorCode::Generic, "remote: " + response.substr(4));
  }
  const auto ack = util::splitNonEmpty(response, ' ');
  if (ack.size() < 2 || ack[0] != "OK") {
    abandon();
    (void)gateway_.streamEngine().unsubscribe(localId);
    throw SqlError(ErrorCode::Generic, "remote: malformed GSUB response");
  }
  std::deque<net::Payload> pending;
  {
    std::scoped_lock lock(mu_);
    ++stats_.streamSubscriptionsSent;
    sub->remoteId = static_cast<std::size_t>(parseU64(ack[1]));
    sub->ownerEpoch = ack.size() >= 3 ? parseU64(ack[2]) : 0;
    pending.swap(sub->pendingFrames);
  }
  for (const auto& frame : pending) processDeltaFrame(frame);
  return localId;
}

void GlobalLayer::unsubscribeGlobal(const std::string& token, std::size_t id) {
  (void)gateway_.authorize(token, core::Operation::StreamSubscribe);
  std::shared_ptr<RemoteSubscription> remote;
  {
    std::scoped_lock lock(mu_);
    auto it = remoteSubscriptions_.find(id);
    if (it != remoteSubscriptions_.end()) {
      remote = it->second;
      remoteSubscriptions_.erase(it);
    }
  }
  if (remote && remote->remoteId != 0) {
    try {
      (void)gateway_.network().request(
          producerAddress(), remote->owner,
          "GUNSUB " + options_.federationSecret + " " +
              std::to_string(remote->remoteId));
    } catch (const net::NetError&) {
      // The stream simply stops refreshing; local cleanup still runs.
    }
  }
  (void)gateway_.streamEngine().unsubscribe(id);
}

void GlobalLayer::tick() {
  if (!started_.load()) return;
  const util::TimePoint now = gateway_.clock().now();
  bool renew = false;
  {
    std::scoped_lock lock(mu_);
    if (!registered_) {
      renew = true;
    } else if (options_.leaseTtl > 0 &&
               now - lastRegisteredAt_ >= options_.leaseTtl / 2) {
      renew = true;
    }
  }
  if (renew) renewRegistration(/*retries=*/0);
  if (!options_.reliableDelivery) return;

  struct Action {
    enum Kind { Resubscribe, Nack, Ping } kind;
    std::size_t localId;
    std::shared_ptr<RemoteSubscription> sub;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
  };
  std::vector<Action> actions;
  {
    std::scoped_lock lock(mu_);
    for (auto& [localId, sub] : remoteSubscriptions_) {
      if (sub->needsResubscribe) {
        if (!sub->resubscribing) {
          sub->resubscribing = true;
          actions.push_back({Action::Resubscribe, localId, sub});
        }
        continue;
      }
      if (sub->remoteId == 0) continue;  // handshake in flight
      if (!sub->reorder.empty()) {
        const std::uint64_t hi = sub->reorder.rbegin()->first;
        if (hi > sub->nextExpected) {
          actions.push_back(
              {Action::Nack, localId, sub, sub->nextExpected, hi - 1});
        }
        continue;
      }
      if (options_.livenessTimeout > 0 &&
          now - sub->lastHeardAt >= options_.livenessTimeout) {
        actions.push_back({Action::Ping, localId, sub});
      }
    }
  }
  for (auto& action : actions) {
    switch (action.kind) {
      case Action::Resubscribe:
        resubscribe(action.localId, action.sub);
        break;
      case Action::Nack:
        sendNack(action.localId, action.sub, action.from, action.to);
        break;
      case Action::Ping:
        sendPing(action.localId, action.sub);
        break;
    }
  }
}

void GlobalLayer::sendNack(std::size_t localId,
                           const std::shared_ptr<RemoteSubscription>& sub,
                           std::uint64_t from, std::uint64_t to) {
  (void)localId;
  net::Address owner;
  std::size_t remoteId = 0;
  {
    std::scoped_lock lock(mu_);
    owner = sub->owner;
    remoteId = sub->remoteId;
  }
  if (remoteId == 0) return;
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), owner,
        "SNACK " + options_.federationSecret + " " +
            std::to_string(remoteId) + " " + std::to_string(from) + " " +
            std::to_string(to));
  } catch (const net::NetError&) {
    return;  // unreachable; retried next tick
  }
  {
    std::scoped_lock lock(mu_);
    ++stats_.nacksSent;
  }
  if (util::startsWith(response, "GONE")) {
    std::scoped_lock lock(mu_);
    sub->needsResubscribe = true;
    return;
  }
  if (util::startsWith(response, "RESYNC ")) {
    // RESYNC <lastSeq>\n<frame>: jump the sequence window to the
    // owner's newest frame and apply it as the current snapshot.
    const std::size_t nl = response.find('\n');
    if (nl == std::string::npos) return;
    const net::Payload frame = response.substr(nl + 1);
    const auto header =
        util::splitNonEmpty(frame.substr(0, frame.find('\n')), ' ');
    if (header.size() < 6 || header[0] != "SDELTA") return;
    const std::uint64_t frameSeq = parseU64(header[3]);
    {
      std::scoped_lock lock(mu_);
      ++stats_.snapshotResyncs;
      sub->nextExpected = frameSeq;
      while (!sub->reorder.empty() &&
             sub->reorder.begin()->first <= frameSeq) {
        sub->reorder.erase(sub->reorder.begin());
      }
    }
    processDeltaFrame(frame);
  }
  // "OK <resent> <lastSeq>": the resent frames arrive as datagrams.
}

void GlobalLayer::sendPing(std::size_t localId,
                           const std::shared_ptr<RemoteSubscription>& sub) {
  net::Address owner;
  std::size_t remoteId = 0;
  {
    std::scoped_lock lock(mu_);
    owner = sub->owner;
    remoteId = sub->remoteId;
    ++stats_.livenessProbes;
  }
  if (remoteId == 0) return;
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), owner,
        "SPING " + options_.federationSecret + " " +
            std::to_string(remoteId));
  } catch (const net::NetError&) {
    return;  // owner down or partitioned; probe again next tick
  }
  if (util::startsWith(response, "GONE")) {
    std::scoped_lock lock(mu_);
    sub->needsResubscribe = true;
    return;
  }
  const auto words = util::splitNonEmpty(response, ' ');
  if (words.size() < 3 || words[0] != "OK") return;
  const std::uint64_t ownerEpoch = parseU64(words[1]);
  const std::uint64_t ownerLastSeq = parseU64(words[2]);
  std::uint64_t nackFrom = 0;
  std::uint64_t nackTo = 0;
  {
    std::scoped_lock lock(mu_);
    sub->lastHeardAt = gateway_.clock().now();
    if (ownerEpoch != sub->ownerEpoch) {
      sub->needsResubscribe = true;
      return;
    }
    if (ownerLastSeq >= sub->nextExpected) {
      // Every frame since nextExpected was lost without leaving a gap
      // witness: reclaim the range explicitly.
      ++stats_.deltaGapsDetected;
      nackFrom = sub->nextExpected;
      nackTo = ownerLastSeq;
    }
  }
  if (nackFrom != 0) sendNack(localId, sub, nackFrom, nackTo);
}

void GlobalLayer::resubscribe(std::size_t localId,
                              const std::shared_ptr<RemoteSubscription>& sub) {
  std::string urlText;
  std::string sqlText;
  std::size_t replay = 0;
  {
    std::scoped_lock lock(mu_);
    urlText = sub->url;
    sqlText = sub->sql;
    replay = sub->replayRows;
    // Frames from the defunct relay buffer or drop while the new
    // handshake is in flight.
    sub->remoteId = 0;
    sub->reorder.clear();
    sub->pendingFrames.clear();
    sub->nextExpected = 1;
  }
  auto finish = [&] {
    std::scoped_lock lock(mu_);
    sub->resubscribing = false;
  };
  auto url = util::Url::parse(urlText);
  OwnerResolution owner;
  if (url) owner = resolveOwner(url->host());
  if (!owner.address) {
    finish();
    return;  // directory unreachable or ownership moved; retry next tick
  }
  net::Payload response;
  try {
    response = gateway_.network().request(
        producerAddress(), *owner.address,
        "GSUB " + options_.federationSecret + " " +
            producerAddress().toString() + " " + std::to_string(localId) +
            " " + std::to_string(replay) + "\n" + urlText + "\n" + sqlText);
  } catch (const net::NetError&) {
    finish();
    return;  // owner still down; retry next tick
  }
  const auto ack = util::splitNonEmpty(response, ' ');
  if (ack.size() < 2 || ack[0] != "OK") {
    finish();
    return;
  }
  std::deque<net::Payload> pending;
  {
    std::scoped_lock lock(mu_);
    sub->owner = *owner.address;
    sub->remoteId = static_cast<std::size_t>(parseU64(ack[1]));
    sub->ownerEpoch = ack.size() >= 3 ? parseU64(ack[2]) : 0;
    sub->needsResubscribe = false;
    sub->resubscribing = false;
    sub->lastHeardAt = gateway_.clock().now();
    ++stats_.resubscribes;
    pending.swap(sub->pendingFrames);
  }
  for (const auto& frame : pending) processDeltaFrame(frame);
}

void GlobalLayer::propagateEvent(const core::Event& event) {
  core::TextEventFormatter formatter;
  core::Event tagged = event;
  tagged.fields["origin"] = Value(gateway_.name());
  tagged.fields["source_host"] = Value(event.source);
  auto encoded = formatter.encode(tagged);
  if (!encoded) return;

  std::vector<ConsumerEntry> targets;
  try {
    targets = directory_.consumersFor(event.type);
  } catch (const net::NetError&) {
    return;  // directory unreachable; drop propagation, keep local delivery
  }
  for (const auto& target : targets) {
    if (target.address == gateway_.eventAddress() ||
        target.address == producerAddress()) {
      continue;  // not to self
    }
    if (!options_.reliableDelivery) {
      gateway_.network().datagram(producerAddress(), target.address,
                                  *encoded);
      std::scoped_lock lock(mu_);
      ++stats_.eventsPropagated;
      continue;
    }
    std::uint64_t seq = 0;
    {
      std::scoped_lock lock(mu_);
      seq = ++eventSeq_[target.address.toString()];
    }
    const net::Payload payload =
        "GEVENT " + options_.federationSecret + " " + gateway_.name() + " " +
        std::to_string(epoch_.load()) + " " + std::to_string(seq) + "\n" +
        *encoded;
    util::Duration backoff = options_.queryBackoff;
    bool delivered = false;
    for (std::size_t attempt = 0; attempt <= options_.queryRetries;
         ++attempt) {
      if (attempt > 0) {
        gateway_.clock().sleepFor(backoff);
        backoff *= 2;
      }
      try {
        (void)gateway_.network().request(producerAddress(), target.address,
                                         payload);
        delivered = true;
        break;
      } catch (const net::NetError&) {
      }
    }
    std::scoped_lock lock(mu_);
    if (delivered) {
      ++stats_.eventsPropagated;
    } else {
      ++stats_.eventSendFailures;
    }
  }
}

GlobalStats GlobalLayer::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::vector<std::pair<net::Address, std::optional<DirectoryStats>>>
GlobalLayer::directoryHealth(const std::string& token) {
  (void)gateway_.authorize(token, core::Operation::RealTimeQuery);
  return directory_.replicaStats();
}

std::vector<RemoteSubscriptionStatus> GlobalLayer::remoteSubscriptionStatus(
    const std::string& token) {
  (void)gateway_.authorize(token, core::Operation::StreamSubscribe);
  std::vector<RemoteSubscriptionStatus> out;
  std::scoped_lock lock(mu_);
  out.reserve(remoteSubscriptions_.size());
  for (const auto& [localId, sub] : remoteSubscriptions_) {
    RemoteSubscriptionStatus status;
    status.localId = localId;
    status.owner = sub->owner;
    status.remoteId = sub->remoteId;
    status.ownerEpoch = sub->ownerEpoch;
    status.nextExpectedSeq = sub->nextExpected;
    status.reorderBuffered = sub->reorder.size();
    status.needsResubscribe = sub->needsResubscribe;
    status.lastHeardAt = sub->lastHeardAt;
    out.push_back(std::move(status));
  }
  return out;
}

}  // namespace gridrm::global
