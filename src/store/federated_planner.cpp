#include "gridrm/store/federated_planner.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "gridrm/store/database.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::store {

using dbc::ColumnInfo;
using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

sql::SelectStatement cloneSelect(const sql::SelectStatement& stmt) {
  sql::SelectStatement out;
  out.table = stmt.table;
  out.tableAlias = stmt.tableAlias;
  for (const auto& item : stmt.items) {
    sql::SelectItem copy;
    if (!item.isStar()) copy.expr = item.expr->clone();
    copy.alias = item.alias;
    out.items.push_back(std::move(copy));
  }
  if (stmt.where) out.where = stmt.where->clone();
  for (const auto& g : stmt.groupBy) out.groupBy.push_back(g->clone());
  for (const auto& k : stmt.orderBy) {
    out.orderBy.push_back(sql::OrderKey{k.expr->clone(), k.descending});
  }
  out.limit = stmt.limit;
  return out;
}

bool isAggregatePath(const sql::SelectStatement& stmt) {
  if (!stmt.groupBy.empty()) return true;
  for (const auto& item : stmt.items) {
    if (!item.isStar() && item.expr->containsAggregate()) return true;
  }
  for (const auto& key : stmt.orderBy) {
    if (key.expr->containsAggregate()) return true;
  }
  return false;
}

/// An aggregate call the engine can compute (and we can merge):
/// count(*) or count/sum/avg/min/max over one aggregate-free argument.
bool mergeableAggregate(const sql::Expr& call) {
  const std::string& fn = call.name;  // parser lower-cases call names
  if (call.starArg) return fn == "count" && call.children.empty();
  if (fn != "count" && fn != "sum" && fn != "avg" && fn != "min" &&
      fn != "max") {
    return false;
  }
  return call.children.size() == 1 && !call.children[0]->containsAggregate();
}

/// Collect every bare column referenced outside aggregate arguments
/// (aggregate args travel as partials, not first-row values).
void collectBareColumns(const sql::Expr& expr,
                        std::vector<std::string>& names) {
  if (expr.kind == sql::ExprKind::Call) return;
  if (expr.kind == sql::ExprKind::Column) {
    for (const auto& n : names) {
      if (util::iequals(n, expr.name)) return;
    }
    names.push_back(expr.name);
    return;
  }
  for (const auto& child : expr.children) collectBareColumns(*child, names);
}

/// Walk for aggregate calls; false = a call we cannot push down.
bool collectAggregates(const sql::Expr& expr,
                       std::vector<const sql::Expr*>& calls) {
  if (expr.kind == sql::ExprKind::Call) {
    if (!mergeableAggregate(expr)) return false;
    calls.push_back(&expr);
    return true;
  }
  for (const auto& child : expr.children) {
    if (!collectAggregates(*child, calls)) return false;
  }
  return true;
}

/// Same key-vector ordering executeAggregateSelect groups with.
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const auto c = a[i].compare(b[i]);
      if (c != std::strong_ordering::equal) {
        return c == std::strong_ordering::less;
      }
    }
    return a.size() < b.size();
  }
};

/// Resolves bare columns against a merged group's first-row values,
/// honouring table qualifiers like the store's TableRowAccessor.
class FirstValueAccessor final : public sql::RowAccessor {
 public:
  FirstValueAccessor(const std::vector<FederatedFirstValue>& names,
                     const std::string& table, const std::string& alias)
      : names_(names), table_(table), alias_(alias) {}

  void setRow(const std::vector<Value>* row) noexcept { row_ = row; }

  std::optional<Value> column(const std::string& table,
                              const std::string& name) const override {
    if (!table.empty() && !util::iequals(table, table_) &&
        !util::iequals(table, alias_)) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (util::iequals(names_[i].column, name)) return (*row_)[i];
    }
    return std::nullopt;
  }

 private:
  const std::vector<FederatedFirstValue>& names_;
  const std::string& table_;
  const std::string& alias_;
  const std::vector<Value>* row_ = nullptr;
};

/// Replace every aggregate Call in `expr` with its merged value.
void substituteMerged(sql::Expr& expr,
                      const std::map<std::string, Value>& merged) {
  if (expr.kind == sql::ExprKind::Call) {
    auto it = merged.find(expr.toSql());
    if (it == merged.end()) {
      throw SqlError(ErrorCode::Generic,
                     "unplanned aggregate " + expr.toSql());
    }
    expr.kind = sql::ExprKind::Literal;
    expr.literal = it->second;
    expr.children.clear();
    return;
  }
  for (auto& child : expr.children) substituteMerged(*child, merged);
}

/// Per-group accumulator for one FederatedAggSlot, mirroring
/// computeAggregate's arithmetic over per-site partials.
struct SlotAccumulator {
  bool any = false;     // a non-NULL partial seen (sum/min/max)
  Value best;           // min/max
  bool allInt = true;   // sum: Int iff every contributing value was Int
  std::int64_t intTotal = 0;
  double realTotal = 0;
  std::int64_t count = 0;  // count result / avg denominator
};

std::unique_ptr<dbc::VectorResultSet> mergeAggregate(
    const FederatedPlan& plan, const std::vector<SitePartial>& sites) {
  const std::size_t slotCount = plan.aggSlots.size();
  std::size_t width = plan.keyCount;
  for (const auto& fv : plan.firstValues) width = std::max(width, fv.index + 1);
  for (const auto& slot : plan.aggSlots) {
    width = std::max(width, slot.partial + 1);
    if (slot.isAvg()) width = std::max(width, slot.countPartial + 1);
  }
  if (plan.trackRowCount) width = std::max(width, plan.rowCountPartial + 1);

  struct Group {
    std::vector<Value> firsts;
    bool haveFirsts = false;
    std::vector<SlotAccumulator> slots;
  };
  std::map<std::vector<Value>, Group, ValueVectorLess> groups;

  for (const auto& site : sites) {
    for (const auto& row : site.rows) {
      if (row.size() < width) {
        throw SqlError(ErrorCode::Generic, "fragment row width mismatch");
      }
      std::vector<Value> key(row.begin(),
                             row.begin() + static_cast<long>(plan.keyCount));
      Group& g = groups[std::move(key)];
      if (g.slots.empty()) g.slots.resize(slotCount);
      // A zero-row site still emits one global-group partial (NULL
      // cells); capturing firsts from it would mask a later site's
      // real first row, so skip it via the fragment's row count.
      if (!g.haveFirsts &&
          (!plan.trackRowCount || row[plan.rowCountPartial].toInt() > 0)) {
        g.firsts.reserve(plan.firstValues.size());
        for (const auto& fv : plan.firstValues) g.firsts.push_back(row[fv.index]);
        g.haveFirsts = true;
      }
      for (std::size_t j = 0; j < slotCount; ++j) {
        const FederatedAggSlot& slot = plan.aggSlots[j];
        SlotAccumulator& acc = g.slots[j];
        const Value& v = row[slot.partial];
        if (slot.fn == "count") {
          acc.count += v.toInt();
        } else if (slot.fn == "sum") {
          if (v.isNull()) continue;
          acc.any = true;
          if (v.type() == util::ValueType::Int) {
            acc.intTotal += v.asInt();
          } else {
            acc.allInt = false;
          }
          acc.realTotal += v.toReal();
        } else if (slot.isAvg()) {
          const std::int64_t n = row[slot.countPartial].toInt();
          if (n > 0 && !v.isNull()) {
            acc.count += n;
            acc.realTotal += v.toReal();
          }
        } else {  // min / max: keep the earliest winner (site order)
          if (v.isNull()) continue;
          if (!acc.any) {
            acc.best = v;
            acc.any = true;
            continue;
          }
          const auto c = v.compare(acc.best);
          if ((slot.fn == "min") ? c == std::strong_ordering::less
                                 : c == std::strong_ordering::greater) {
            acc.best = v;
          }
        }
      }
    }
  }

  // Every site empty: the global group exists (each site shipped a
  // partial row) but no real first row was ever seen — bare columns
  // resolve to NULL, matching the single-site empty-input row.
  for (auto& [key, g] : groups) {
    if (!g.haveFirsts) {
      g.firsts.assign(plan.firstValues.size(), Value::null());
      g.haveFirsts = true;
    }
  }

  // A global aggregate over empty input still yields one row
  // (COUNT 0, everything else NULL), exactly like the single-site path.
  if (plan.original.groupBy.empty() && groups.empty()) {
    Group empty;
    empty.firsts.assign(plan.firstValues.size(), Value::null());
    empty.haveFirsts = true;
    empty.slots.resize(slotCount);
    groups.emplace(std::vector<Value>{}, std::move(empty));
  }

  // Output column descriptors, reproducing executeAggregateSelect: the
  // site-computed first-value columns stand in for the source table.
  std::vector<ColumnInfo> sourceCols;
  if (!sites.empty()) {
    for (const auto& fv : plan.firstValues) {
      if (fv.index < sites[0].columns.size()) {
        sourceCols.push_back(sites[0].columns[fv.index]);
      }
    }
  }
  std::vector<ColumnInfo> outColumns;
  for (const auto& item : plan.original.items) {
    ColumnInfo c = projectColumn(item, sourceCols);
    if (item.alias.empty() && item.expr->kind == sql::ExprKind::Call) {
      c.name = item.expr->toSql();
      c.type = item.expr->name == "count" ? util::ValueType::Int
                                          : util::ValueType::Real;
    }
    outColumns.push_back(std::move(c));
  }

  FirstValueAccessor accessor(plan.firstValues, plan.original.table,
                              plan.original.tableAlias);
  struct OutRow {
    std::vector<Value> cells;
    std::vector<Value> orderKeys;
  };
  std::vector<OutRow> outRows;
  outRows.reserve(groups.size());
  for (const auto& [key, g] : groups) {
    // Final value of every aggregate slot for this group.
    std::map<std::string, Value> merged;
    for (std::size_t j = 0; j < slotCount; ++j) {
      const FederatedAggSlot& slot = plan.aggSlots[j];
      const SlotAccumulator& acc = g.slots[j];
      Value v;
      if (slot.fn == "count") {
        v = Value(acc.count);
      } else if (slot.fn == "sum") {
        v = !acc.any ? Value::null()
            : acc.allInt ? Value(acc.intTotal)
                         : Value(acc.realTotal);
      } else if (slot.isAvg()) {
        v = acc.count == 0
                ? Value::null()
                : Value(acc.realTotal / static_cast<double>(acc.count));
      } else {  // min / max
        v = acc.any ? acc.best : Value::null();
      }
      merged[slot.key] = std::move(v);
    }
    accessor.setRow(&g.firsts);
    auto evalMerged = [&](const sql::Expr& expr) {
      sql::ExprPtr copy = expr.clone();
      substituteMerged(*copy, merged);
      try {
        return sql::evaluate(*copy, accessor);
      } catch (const sql::EvalError& e) {
        throw SqlError(ErrorCode::NoSuchColumn, e.what());
      }
    };
    OutRow out;
    out.cells.reserve(plan.original.items.size());
    for (const auto& item : plan.original.items) {
      out.cells.push_back(evalMerged(*item.expr));
    }
    for (const auto& orderKey : plan.original.orderBy) {
      out.orderKeys.push_back(evalMerged(*orderKey.expr));
    }
    outRows.push_back(std::move(out));
  }

  const auto& orderBy = plan.original.orderBy;
  if (!orderBy.empty()) {
    std::stable_sort(outRows.begin(), outRows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (std::size_t i = 0; i < orderBy.size(); ++i) {
                         const auto c = a.orderKeys[i].compare(b.orderKeys[i]);
                         if (c == std::strong_ordering::equal) continue;
                         const bool less = c == std::strong_ordering::less;
                         return orderBy[i].descending ? !less : less;
                       }
                       return false;
                     });
  }
  std::size_t count = outRows.size();
  if (plan.original.limit && *plan.original.limit >= 0 &&
      static_cast<std::size_t>(*plan.original.limit) < count) {
    count = static_cast<std::size_t>(*plan.original.limit);
  }
  std::vector<std::vector<Value>> finalRows;
  finalRows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    finalRows.push_back(std::move(outRows[i].cells));
  }
  return std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(outColumns)), std::move(finalRows));
}

std::unique_ptr<dbc::VectorResultSet> mergeOrdered(
    const FederatedPlan& plan, const std::vector<SitePartial>& sites) {
  std::vector<ColumnInfo> columns = sites[0].columns;
  if (columns.size() < plan.hiddenKeys) {
    throw SqlError(ErrorCode::Generic, "fragment row width mismatch");
  }
  const std::size_t visible = columns.size() - plan.hiddenKeys;

  std::vector<std::vector<Value>> rows;
  for (const auto& site : sites) {
    for (const auto& row : site.rows) {
      if (row.size() != columns.size()) {
        throw SqlError(ErrorCode::Generic, "fragment row width mismatch");
      }
      rows.push_back(row);
    }
  }

  // Per-site streams arrive pre-sorted; the stable re-sort over the
  // hidden key columns reproduces the single-site tie order (site
  // order, then per-site row order).
  const auto& orderBy = plan.original.orderBy;
  if (plan.hiddenKeys > 0) {
    std::stable_sort(
        rows.begin(), rows.end(),
        [&](const std::vector<Value>& a, const std::vector<Value>& b) {
          for (std::size_t i = 0; i < plan.hiddenKeys; ++i) {
            const auto c = a[visible + i].compare(b[visible + i]);
            if (c == std::strong_ordering::equal) continue;
            const bool less = c == std::strong_ordering::less;
            return orderBy[i].descending ? !less : less;
          }
          return false;
        });
  }
  if (plan.original.limit && *plan.original.limit >= 0 &&
      static_cast<std::size_t>(*plan.original.limit) < rows.size()) {
    rows.resize(static_cast<std::size_t>(*plan.original.limit));
  }
  if (plan.hiddenKeys > 0) {
    columns.resize(visible);
    for (auto& row : rows) row.resize(visible);
  }
  return std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(columns)), std::move(rows));
}

}  // namespace

std::shared_ptr<const FederatedPlan> planFederated(
    const sql::SelectStatement& stmt) {
  auto plan = std::make_shared<FederatedPlan>();
  plan->original = cloneSelect(stmt);
  plan->shipAllSql = "SELECT * FROM " + stmt.table;
  plan->aggregate = isAggregatePath(stmt);
  plan->fragmentSql = plan->shipAllSql;  // fallback until proven pushable

  // WHERE may not contain aggregates on any path; shipping all rows
  // reproduces the single-site error at the coordinator.
  if (stmt.where && stmt.where->containsAggregate()) return plan;

  sql::SelectStatement frag;
  frag.table = stmt.table;
  frag.tableAlias = stmt.tableAlias;
  if (stmt.where) frag.where = stmt.where->clone();

  if (!plan->aggregate) {
    // Projection + WHERE + per-site ORDER BY/LIMIT push-down. Hidden
    // order-key columns let the coordinator re-sort the merged stream
    // even when keys reference unprojected columns.
    for (const auto& item : stmt.items) {
      sql::SelectItem copy;
      if (!item.isStar()) copy.expr = item.expr->clone();
      copy.alias = item.alias;
      frag.items.push_back(std::move(copy));
    }
    for (std::size_t i = 0; i < stmt.orderBy.size(); ++i) {
      sql::SelectItem hidden;
      hidden.expr = stmt.orderBy[i].expr->clone();
      hidden.alias = "__ok" + std::to_string(i);
      frag.items.push_back(std::move(hidden));
      frag.orderBy.push_back(
          sql::OrderKey{stmt.orderBy[i].expr->clone(),
                        stmt.orderBy[i].descending});
    }
    frag.limit = stmt.limit;
    plan->hiddenKeys = stmt.orderBy.size();
    plan->pushdown = true;
    plan->fragmentSql = frag.toSql();
    return plan;
  }

  // Aggregate path: star projections and aggregates in GROUP BY are
  // rejected by the engine; fall back so the error surfaces unchanged.
  for (const auto& item : stmt.items) {
    if (item.isStar()) return plan;
  }
  for (const auto& g : stmt.groupBy) {
    if (g->containsAggregate()) return plan;
  }
  std::vector<const sql::Expr*> calls;
  for (const auto& item : stmt.items) {
    if (!collectAggregates(*item.expr, calls)) return plan;
  }
  for (const auto& key : stmt.orderBy) {
    if (!collectAggregates(*key.expr, calls)) return plan;
  }

  // Fragment projection: group keys first, then first-row columns,
  // then partial aggregates — deduplicated by rendered SQL.
  std::map<std::string, std::size_t> indexBySql;
  auto fragItem = [&](sql::ExprPtr expr) -> std::size_t {
    const std::string key = expr->toSql();
    auto it = indexBySql.find(key);
    if (it != indexBySql.end()) return it->second;
    const std::size_t index = frag.items.size();
    sql::SelectItem item;
    item.expr = std::move(expr);
    frag.items.push_back(std::move(item));
    indexBySql.emplace(key, index);
    return index;
  };

  for (const auto& g : stmt.groupBy) {
    frag.groupBy.push_back(g->clone());
    // Keys occupy positions 0..k-1 verbatim (no dedup: the merge key
    // vector must match the GROUP BY arity).
    const std::size_t index = frag.items.size();
    sql::SelectItem item;
    item.expr = g->clone();
    frag.items.push_back(std::move(item));
    indexBySql.emplace(g->toSql(), index);
  }
  plan->keyCount = stmt.groupBy.size();

  std::vector<std::string> bare;
  for (const auto& item : stmt.items) collectBareColumns(*item.expr, bare);
  for (const auto& key : stmt.orderBy) collectBareColumns(*key.expr, bare);
  for (const auto& name : bare) {
    plan->firstValues.push_back(
        FederatedFirstValue{name, fragItem(sql::Expr::makeColumn("", name))});
  }

  // Global group + bare columns: ship a count(*) so the merge can
  // tell a zero-row site's synthesized partial from a real first row
  // (see FederatedPlan::trackRowCount). fragItem dedups it against an
  // explicit count(*) in the statement.
  if (plan->keyCount == 0 && !plan->firstValues.empty()) {
    plan->trackRowCount = true;
    plan->rowCountPartial =
        fragItem(sql::Expr::makeCall("count", {}, /*starArg=*/true));
  }

  std::set<std::string> seenCalls;
  for (const sql::Expr* call : calls) {
    const std::string key = call->toSql();
    if (!seenCalls.insert(key).second) continue;
    FederatedAggSlot slot;
    slot.key = key;
    slot.fn = call->name;
    if (slot.isAvg()) {
      std::vector<sql::ExprPtr> sumArg;
      sumArg.push_back(call->children[0]->clone());
      slot.partial = fragItem(sql::Expr::makeCall("sum", std::move(sumArg)));
      std::vector<sql::ExprPtr> countArg;
      countArg.push_back(call->children[0]->clone());
      slot.countPartial =
          fragItem(sql::Expr::makeCall("count", std::move(countArg)));
    } else {
      slot.partial = fragItem(call->clone());
    }
    plan->aggSlots.push_back(std::move(slot));
  }

  plan->pushdown = true;
  plan->fragmentSql = frag.toSql();
  return plan;
}

std::unique_ptr<dbc::VectorResultSet> mergeFederated(
    const FederatedPlan& plan, const std::vector<SitePartial>& sites,
    bool decomposed) {
  if (!decomposed || !plan.pushdown) {
    // Ship-all-rows: execute the original statement over the
    // site-grouped union, exactly like a single gateway would.
    std::vector<ColumnInfo> columns;
    std::vector<std::vector<Value>> rows;
    for (const auto& site : sites) {
      if (columns.empty()) columns = site.columns;
      rows.insert(rows.end(), site.rows.begin(), site.rows.end());
    }
    return executeSelect(plan.original, columns, rows);
  }
  if (sites.empty()) {
    // No partials at all: defer to the engine over an empty union so
    // edge semantics (and errors) match the ship-all baseline.
    return executeSelect(plan.original, {}, {});
  }
  return plan.aggregate ? mergeAggregate(plan, sites)
                        : mergeOrdered(plan, sites);
}

}  // namespace gridrm::store
