#include "gridrm/store/tsdb/tsdb.hpp"

#include <algorithm>
#include <map>

#include "gridrm/dbc/error.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::store::tsdb {

using dbc::ColumnInfo;
using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;
using util::ValueType;

TsdbOptions TsdbOptions::fromConfig(const util::Config& config) {
  TsdbOptions o;
  const auto ms = [&](const char* key, util::Duration def) {
    return config.getInt(key, def / util::kMillisecond) * util::kMillisecond;
  };
  o.enabled = config.getBool("tsdb.enabled", o.enabled);
  o.segmentRows = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.getInt("tsdb.segment_rows",
                       static_cast<std::int64_t>(o.segmentRows))));
  o.segmentSpan = ms("tsdb.segment_span_ms", o.segmentSpan);
  o.rawTtl = ms("tsdb.raw_ttl_ms", o.rawTtl);
  o.rollup1mTtl = ms("tsdb.rollup_1m_ttl_ms", o.rollup1mTtl);
  o.rollup1hTtl = ms("tsdb.rollup_1h_ttl_ms", o.rollup1hTtl);
  o.bucket1m = ms("tsdb.bucket_1m_ms", o.bucket1m);
  o.bucket1h = ms("tsdb.bucket_1h_ms", o.bucket1h);
  if (o.bucket1m <= 0) o.bucket1m = 60 * util::kSecond;
  if (o.bucket1h <= 0) o.bucket1h = 60 * 60 * util::kSecond;
  o.tierQueries = config.getBool("tsdb.tier_queries", o.tierQueries);
  o.tierMinSpanBuckets = static_cast<std::size_t>(std::max<std::int64_t>(
      1, config.getInt("tsdb.tier_min_span_buckets",
                       static_cast<std::int64_t>(o.tierMinSpanBuckets))));
  o.vectorizedScan = config.getBool("tsdb.vectorized_scan", o.vectorizedScan);
  return o;
}

// ---------------------------------------------------------------------
// WHERE analysis.

namespace {

bool qualifierOk(const sql::Expr& e, const std::string& table,
                 const std::string& alias) {
  return e.table.empty() || util::iequals(e.table, table) ||
         util::iequals(e.table, alias);
}

bool isIntLiteral(const sql::Expr& e) {
  return e.kind == sql::ExprKind::Literal &&
         e.literal.type() == ValueType::Int;
}

bool isTimeRef(const sql::Expr& e, const std::string& timeColumn,
               const std::string& table, const std::string& alias) {
  return e.kind == sql::ExprKind::Column &&
         qualifierOk(e, table, alias) &&
         util::iequals(e.name, timeColumn);
}

/// Tighten `bounds` from one comparison `time OP literal` (either
/// operand order). Over-inclusive on int64 edge cases, which is safe:
/// bounds only prune, the predicate itself still runs on survivors.
void tightenBounds(sql::BinOp op, std::int64_t lit, bool literalOnLeft,
                   TimeBounds& bounds) {
  if (literalOnLeft) {  // lit OP col  ==  col FLIP(OP) lit
    switch (op) {
      case sql::BinOp::Lt: op = sql::BinOp::Gt; break;
      case sql::BinOp::Le: op = sql::BinOp::Ge; break;
      case sql::BinOp::Gt: op = sql::BinOp::Lt; break;
      case sql::BinOp::Ge: op = sql::BinOp::Le; break;
      default: break;  // Eq is symmetric
    }
  }
  switch (op) {
    case sql::BinOp::Ge:
      bounds.lo = std::max(bounds.lo, lit);
      break;
    case sql::BinOp::Gt:
      if (lit < std::numeric_limits<std::int64_t>::max()) {
        bounds.lo = std::max(bounds.lo, lit + 1);
      }
      break;
    case sql::BinOp::Le:
      bounds.hi = std::min(bounds.hi, lit);
      break;
    case sql::BinOp::Lt:
      if (lit > std::numeric_limits<std::int64_t>::min()) {
        bounds.hi = std::min(bounds.hi, lit - 1);
      }
      break;
    case sql::BinOp::Eq:
      bounds.lo = std::max(bounds.lo, lit);
      bounds.hi = std::min(bounds.hi, lit);
      break;
    default:
      break;
  }
}

/// True when `term` is a plain time/literal comparison whose effect is
/// fully captured by extractTimeBounds: `time OP intLiteral` (either
/// side) for OP in {<, <=, >, >=, =}, or `time BETWEEN int AND int`.
/// Only these shapes are bucket-uniform, so only these may appear as
/// time conjuncts in a tier-served WHERE.
bool isSimpleTimeTerm(const sql::Expr& term, const std::string& timeColumn,
                      const std::string& table, const std::string& alias,
                      TimeBounds* bounds) {
  if (term.kind == sql::ExprKind::Binary) {
    switch (term.bop) {
      case sql::BinOp::Lt:
      case sql::BinOp::Le:
      case sql::BinOp::Gt:
      case sql::BinOp::Ge:
      case sql::BinOp::Eq: {
        const sql::Expr& l = *term.children[0];
        const sql::Expr& r = *term.children[1];
        if (isTimeRef(l, timeColumn, table, alias) && isIntLiteral(r)) {
          if (bounds) tightenBounds(term.bop, r.literal.asInt(), false, *bounds);
          return true;
        }
        if (isIntLiteral(l) && isTimeRef(r, timeColumn, table, alias)) {
          if (bounds) tightenBounds(term.bop, l.literal.asInt(), true, *bounds);
          return true;
        }
        return false;
      }
      default:
        return false;
    }
  }
  if (term.kind == sql::ExprKind::Between && !term.negated &&
      isTimeRef(*term.children[0], timeColumn, table, alias) &&
      isIntLiteral(*term.children[1]) && isIntLiteral(*term.children[2])) {
    if (bounds) {
      bounds->lo = std::max(bounds->lo, term.children[1]->literal.asInt());
      bounds->hi = std::min(bounds->hi, term.children[2]->literal.asInt());
    }
    return true;
  }
  return false;
}

void extractFromConjunct(const sql::Expr& e, const std::string& timeColumn,
                         const std::string& table, const std::string& alias,
                         TimeBounds& bounds) {
  if (e.kind == sql::ExprKind::Binary && e.bop == sql::BinOp::And) {
    extractFromConjunct(*e.children[0], timeColumn, table, alias, bounds);
    extractFromConjunct(*e.children[1], timeColumn, table, alias, bounds);
    return;
  }
  isSimpleTimeTerm(e, timeColumn, table, alias, &bounds);
}

/// All Column qualifiers in the tree name this statement's table.
bool allQualifiersOk(const sql::Expr& e, const std::string& table,
                     const std::string& alias) {
  if (e.kind == sql::ExprKind::Column && !qualifierOk(e, table, alias)) {
    return false;
  }
  for (const auto& child : e.children) {
    if (!allQualifiersOk(*child, table, alias)) return false;
  }
  return true;
}

/// Column names referenced outside aggregate Call subtrees.
void collectNonAggRefs(const sql::Expr& e, std::vector<std::string>& names) {
  if (e.kind == sql::ExprKind::Call) return;
  if (e.kind == sql::ExprKind::Column) names.push_back(util::toLower(e.name));
  for (const auto& child : e.children) collectNonAggRefs(*child, names);
}

std::size_t rawColumnIndex(const std::vector<ColumnInfo>& columns,
                           const std::string& name) {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (util::iequals(columns[c].name, name)) return c;
  }
  return static_cast<std::size_t>(-1);
}

/// Identical to the row store's output-column derivation, so tier and
/// raw paths produce the same metadata as store::executeSelect.
ColumnInfo projectColumnInfo(const sql::SelectItem& item,
                             const std::vector<ColumnInfo>& source) {
  ColumnInfo out;
  if (!item.alias.empty()) {
    out.name = item.alias;
  } else if (item.expr->kind == sql::ExprKind::Column) {
    out.name = item.expr->name;
  } else {
    out.name = item.expr->toSql();
  }
  if (item.expr->kind == sql::ExprKind::Column) {
    for (const auto& c : source) {
      if (util::iequals(c.name, item.expr->name)) {
        out.type = c.type;
        out.unit = c.unit;
        out.table = c.table;
        break;
      }
    }
  } else if (item.expr->kind == sql::ExprKind::Literal) {
    out.type = item.expr->literal.type();
  } else {
    out.type = util::ValueType::Real;
  }
  if (item.alias.empty() && item.expr->kind == sql::ExprKind::Call) {
    out.name = item.expr->toSql();
    out.type = item.expr->name == "count" ? util::ValueType::Int
                                          : util::ValueType::Real;
  }
  return out;
}

/// Accessor over full-width rows against an explicit column list
/// (mirror of the row store's TableRowAccessor).
class RowsAccessor final : public sql::RowAccessor {
 public:
  RowsAccessor(const std::vector<ColumnInfo>& columns,
               const std::string& tableName, const std::string& alias)
      : columns_(columns), tableName_(tableName), alias_(alias) {}

  void setRow(const std::vector<Value>* row) noexcept { row_ = row; }

  std::optional<Value> column(const std::string& table,
                              const std::string& name) const override {
    if (!table.empty() && !util::iequals(table, tableName_) &&
        !util::iequals(table, alias_)) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (util::iequals(columns_[i].name, name)) return (*row_)[i];
    }
    return std::nullopt;
  }

 private:
  const std::vector<ColumnInfo>& columns_;
  const std::string& tableName_;
  const std::string& alias_;
  const std::vector<Value>* row_ = nullptr;
};

void mergeScan(ScanStats& into, const ScanStats& from) {
  into.segmentsScanned += from.segmentsScanned;
  into.segmentsPruned += from.segmentsPruned;
  into.rowsScanned += from.rowsScanned;
  into.rowsMaterialized += from.rowsMaterialized;
  into.cellsMaterialized += from.cellsMaterialized;
  into.cellsSkipped += from.cellsSkipped;
}

bool isAggregateShaped(const sql::SelectStatement& stmt) {
  if (!stmt.groupBy.empty()) return true;
  for (const auto& item : stmt.items) {
    if (!item.isStar() && item.expr->containsAggregate()) return true;
  }
  for (const auto& key : stmt.orderBy) {
    if (key.expr->containsAggregate()) return true;
  }
  return false;
}

}  // namespace

TimeBounds extractTimeBounds(const sql::Expr* where,
                             const std::string& timeColumn,
                             const std::string& table,
                             const std::string& alias) {
  TimeBounds bounds;
  if (where != nullptr) {
    extractFromConjunct(*where, timeColumn, table, alias, bounds);
  }
  return bounds;
}

// ---------------------------------------------------------------------
// TimeSeriesStore.

TimeSeriesStore::TimeSeriesStore(util::Clock& clock, TsdbOptions options)
    : clock_(clock), options_(options) {}

void TimeSeriesStore::createTable(const std::string& name,
                                  std::vector<ColumnInfo> columns,
                                  const std::string& timeColumn) {
  const std::size_t timeIdx = rawColumnIndex(columns, timeColumn);
  if (timeIdx == static_cast<std::size_t>(-1)) {
    throw SqlError(ErrorCode::NoSuchColumn,
                   "no time column '" + timeColumn + "' in table " + name);
  }
  auto t = std::make_shared<TableData>();
  t->name = name;
  t->columns = std::move(columns);
  t->timeIdx = timeIdx;
  t->rollup = buildRollupSchema(t->columns, timeIdx);
  t->numericClean.assign(t->columns.size(), true);

  std::unique_lock lock(mu_);
  for (auto& existing : tables_) {
    if (util::iequals(existing->name, name)) {
      existing = std::move(t);
      return;
    }
  }
  tables_.push_back(std::move(t));
}

bool TimeSeriesStore::hasTable(const std::string& name) const {
  return find(name) != nullptr;
}

std::vector<std::string> TimeSeriesStore::tableNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name);
  return names;
}

std::shared_ptr<TimeSeriesStore::TableData> TimeSeriesStore::find(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& t : tables_) {
    if (util::iequals(t->name, name)) return t;
  }
  return nullptr;
}

void TimeSeriesStore::append(const std::string& table,
                             std::vector<Value> row) {
  auto t = find(table);
  if (t == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable, "no table '" + table + "'");
  }
  {
    std::unique_lock lock(t->mu);
    if (row.size() != t->columns.size()) {
      throw SqlError(ErrorCode::Generic,
                     "insert arity mismatch for table " + t->name);
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (!row[c].isNull() && !row[c].isNumeric()) t->numericClean[c] = false;
    }
    const Value& tv = row[t->timeIdx];
    if (tv.type() == ValueType::Int) {
      const util::TimePoint tp = tv.asInt();
      if (!t->activeHasTime) {
        t->activeMin = t->activeMax = tp;
        t->activeHasTime = true;
      } else {
        t->activeMin = std::min(t->activeMin, tp);
        t->activeMax = std::max(t->activeMax, tp);
      }
    } else if (!tv.isNull()) {
      // A Real (or other non-Int) sample time cannot be folded into
      // rollup buckets; disable tier rewrites rather than drop rows.
      t->timeClean = false;
    }
    t->active.push_back(std::move(row));
    const bool full = t->active.size() >= options_.segmentRows;
    const bool spanned = options_.segmentSpan > 0 && t->activeHasTime &&
                         t->activeMax - t->activeMin >= options_.segmentSpan;
    if (full || spanned) seal(*t);
  }
  std::lock_guard statsLock(statsMu_);
  ++stats_.appendedRows;
}

void TimeSeriesStore::appendNamed(const std::string& table,
                                  const std::vector<std::string>& columns,
                                  std::vector<Value> row) {
  auto t = find(table);
  if (t == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable, "no table '" + table + "'");
  }
  if (columns.size() != row.size()) {
    throw SqlError(ErrorCode::Generic, "column/value count mismatch");
  }
  std::vector<Value> full(t->columns.size());
  std::vector<bool> assigned(t->columns.size(), false);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const std::size_t c = rawColumnIndex(t->columns, columns[i]);
    if (c == static_cast<std::size_t>(-1)) {
      throw SqlError(ErrorCode::NoSuchColumn,
                     "table " + t->name + " has no column '" + columns[i] +
                         "'");
    }
    if (assigned[c]) {
      throw SqlError(ErrorCode::Syntax, "column '" + columns[i] +
                                            "' listed twice in INSERT into " +
                                            t->name);
    }
    assigned[c] = true;
    full[c] = std::move(row[i]);
  }
  append(table, std::move(full));
}

void TimeSeriesStore::seal(TableData& t) {
  if (t.active.empty()) return;
  t.segments.push_back(encodeSegment(t.columns, t.timeIdx, t.active));
  foldRows(t.rollup, t.timeIdx, options_.bucket1m, t.active, t.tiers[0].active);
  foldRows(t.rollup, t.timeIdx, options_.bucket1h, t.active, t.tiers[1].active);
  if (t.activeHasTime) t.sealedUntil = std::max(t.sealedUntil, t.activeMax);
  t.active.clear();
  t.activeHasTime = false;
  t.activeMin = t.activeMax = 0;
  std::lock_guard statsLock(statsMu_);
  ++stats_.seals;
}

void TimeSeriesStore::sealAll() {
  std::vector<std::shared_ptr<TableData>> snapshot;
  {
    std::shared_lock lock(mu_);
    snapshot = tables_;
  }
  for (const auto& t : snapshot) {
    std::unique_lock lock(t->mu);
    seal(*t);
  }
}

std::size_t TimeSeriesStore::rowCount(const std::string& table) const {
  auto t = find(table);
  if (t == nullptr) return 0;
  std::shared_lock lock(t->mu);
  std::size_t rows = t->active.size();
  for (const auto& seg : t->segments) rows += seg->rowCount();
  return rows;
}

// ---------------------------------------------------------------------
// Query execution.

namespace {

/// Does this aggregate-shaped statement qualify for a rollup rewrite on
/// this table at all (tier-independent conditions)? Alignment, span and
/// coverage are checked per tier afterwards.
bool tierServable(const sql::SelectStatement& stmt,
                  const std::vector<ColumnInfo>& columns,
                  const RollupSchema& rollup, std::size_t timeIdx,
                  const std::vector<bool>& numericClean) {
  const std::string& timeName = columns[timeIdx].name;

  // GROUP BY: bare key columns only (grouping by the raw timestamp or
  // a computed expression cannot be answered from bucket rows).
  std::vector<std::string> groupNames;
  for (const auto& expr : stmt.groupBy) {
    if (expr->kind != sql::ExprKind::Column ||
        !qualifierOk(*expr, stmt.table, stmt.tableAlias)) {
      return false;
    }
    const std::size_t raw = rawColumnIndex(columns, expr->name);
    if (raw == static_cast<std::size_t>(-1) ||
        rollup.keyFor(raw) == static_cast<std::size_t>(-1)) {
      return false;
    }
    groupNames.push_back(util::toLower(expr->name));
  }

  // Items and ORDER BY: every aggregate call must have stored partials
  // and every bare column outside a call must be one of the GROUP BY
  // key columns.
  const auto exprOk = [&](const sql::Expr& root) {
    if (!allQualifiersOk(root, stmt.table, stmt.tableAlias)) return false;
    // Walk for Call nodes.
    std::vector<const sql::Expr*> stack{&root};
    while (!stack.empty()) {
      const sql::Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == sql::ExprKind::Call) {
        const std::string& fn = e->name;
        if (fn == "count" && e->starArg) continue;
        if (fn != "count" && fn != "sum" && fn != "avg" && fn != "min" &&
            fn != "max") {
          return false;
        }
        if (e->children.size() != 1 ||
            e->children[0]->kind != sql::ExprKind::Column) {
          return false;
        }
        const std::size_t raw = rawColumnIndex(columns, e->children[0]->name);
        if (raw == static_cast<std::size_t>(-1)) return false;
        if (const auto* agg = rollup.aggFor(raw)) {
          (void)agg;
          // SUM/AVG partials silently skipped non-numeric cells the row
          // store would reject; only rewrite columns that stayed clean.
          if ((fn == "sum" || fn == "avg") && !numericClean[raw]) {
            return false;
          }
        } else if (!(fn == "count" &&
                     rollup.keyFor(raw) != static_cast<std::size_t>(-1))) {
          return false;  // no partials for this column (e.g. time column)
        }
        continue;  // call arguments handled above
      }
      for (const auto& child : e->children) stack.push_back(child.get());
    }
    std::vector<std::string> bare;
    collectNonAggRefs(root, bare);
    for (const auto& name : bare) {
      bool grouped = false;
      for (const auto& g : groupNames) {
        if (g == name) grouped = true;
      }
      if (!grouped) return false;
    }
    return true;
  };
  for (const auto& item : stmt.items) {
    if (item.isStar() || !exprOk(*item.expr)) return false;
  }
  for (const auto& key : stmt.orderBy) {
    if (!exprOk(*key.expr)) return false;
  }

  // WHERE: an AND-tree whose every conjunct is either a simple time
  // comparison or an expression over key columns only (bucket-uniform).
  if (stmt.where == nullptr) return false;  // need finite bounds anyway
  const auto classify = [&](const sql::Expr& e, const auto& self) -> bool {
    if (e.kind == sql::ExprKind::Binary && e.bop == sql::BinOp::And) {
      return self(*e.children[0], self) && self(*e.children[1], self);
    }
    if (isSimpleTimeTerm(e, timeName, stmt.table, stmt.tableAlias, nullptr)) {
      return true;
    }
    if (e.containsAggregate() ||
        !allQualifiersOk(e, stmt.table, stmt.tableAlias)) {
      return false;
    }
    std::vector<std::string> refs;
    collectColumnRefs(e, refs);
    for (const auto& name : refs) {
      const std::size_t raw = rawColumnIndex(columns, name);
      if (raw == static_cast<std::size_t>(-1) ||
          rollup.keyFor(raw) == static_cast<std::size_t>(-1)) {
        return false;  // references time or an aggregated column
      }
    }
    return true;
  };
  return classify(*stmt.where, classify);
}

}  // namespace

std::unique_ptr<dbc::VectorResultSet> TimeSeriesStore::query(
    const sql::SelectStatement& stmt) const {
  auto t = find(stmt.table);
  if (t == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable, "no table '" + stmt.table + "'");
  }
  {
    std::lock_guard statsLock(statsMu_);
    ++stats_.queries;
  }

  std::shared_lock lock(t->mu);
  const TimeBounds bounds =
      extractTimeBounds(stmt.where.get(), t->columns[t->timeIdx].name,
                        stmt.table, stmt.tableAlias);

  if (options_.tierQueries && t->timeClean &&
      bounds.lo != std::numeric_limits<util::TimePoint>::min() &&
      bounds.hi != std::numeric_limits<util::TimePoint>::max() &&
      isAggregateShaped(stmt) &&
      // Coverage: no buffer row may fall inside the range (rollups only
      // see sealed rows; buffer rows without a time cell cannot match
      // finite bounds anyway).
      (!t->activeHasTime || t->activeMin > bounds.hi) &&
      tierServable(stmt, t->columns, t->rollup, t->timeIdx, t->numericClean)) {
    // Coarsest tier first.
    for (int tierIdx = 1; tierIdx >= 0; --tierIdx) {
      const util::Duration bucket =
          tierIdx == 1 ? options_.bucket1h : options_.bucket1m;
      if (bucketStart(bounds.lo, bucket) != bounds.lo) continue;
      if (bounds.hi >= std::numeric_limits<util::TimePoint>::max()) continue;
      if (bucketStart(bounds.hi + 1, bucket) != bounds.hi + 1) continue;
      if (bounds.hi < bounds.lo) continue;
      const std::int64_t spanBuckets = (bounds.hi - bounds.lo + 1) / bucket;
      if (spanBuckets < static_cast<std::int64_t>(options_.tierMinSpanBuckets)) {
        continue;
      }
      auto result = tierQuery(*t, stmt, bounds, tierIdx);
      if (result != nullptr) return result;
    }
  }
  return rawQuery(*t, stmt, bounds);
}

std::unique_ptr<dbc::VectorResultSet> TimeSeriesStore::rawQuery(
    const TableData& t, const sql::SelectStatement& stmt,
    const TimeBounds& bounds) const {
  const std::size_t width = t.columns.size();
  std::vector<bool> needed(width, false);
  const auto mark = [&](const sql::Expr& e) {
    std::vector<std::string> names;
    collectColumnRefs(e, names);
    for (const auto& name : names) {
      const std::size_t c = rawColumnIndex(t.columns, name);
      if (c != static_cast<std::size_t>(-1)) needed[c] = true;
    }
  };
  for (const auto& item : stmt.items) {
    if (item.isStar()) {
      needed.assign(width, true);
    } else {
      mark(*item.expr);
    }
  }
  if (stmt.where) mark(*stmt.where);
  for (const auto& expr : stmt.groupBy) mark(*expr);
  for (const auto& key : stmt.orderBy) mark(*key.expr);

  ScanStats scan;
  std::vector<std::vector<Value>> rows;
  for (const auto& seg : t.segments) {
    scanSegment(*seg, bounds, stmt.where.get(), stmt.table, stmt.tableAlias,
                needed, rows, scan, options_.vectorizedScan);
  }
  // Write-ahead buffer rows ride along uncompressed, pre-filtered by
  // the same time-bounds rule the segment scan applies in Phase 0.
  const bool constrained =
      bounds.lo != std::numeric_limits<util::TimePoint>::min() ||
      bounds.hi != std::numeric_limits<util::TimePoint>::max();
  scan.rowsScanned += t.active.size();
  for (const auto& row : t.active) {
    const Value& tv = row[t.timeIdx];
    bool keep;
    if (tv.isNull()) {
      keep = !constrained;
    } else if (tv.type() != ValueType::Int) {
      keep = true;
    } else {
      keep = bounds.contains(tv.asInt());
    }
    if (keep) {
      rows.push_back(row);
      ++scan.rowsMaterialized;
      scan.cellsMaterialized += width;
    } else {
      scan.cellsSkipped += width;
    }
  }

  auto result = executeSelect(stmt, t.columns, rows);
  std::lock_guard statsLock(statsMu_);
  ++stats_.rawQueries;
  mergeScan(stats_.scan, scan);
  return result;
}

std::unique_ptr<dbc::VectorResultSet> TimeSeriesStore::tierQuery(
    const TableData& t, const sql::SelectStatement& stmt,
    const TimeBounds& bounds, int tierIdx) const {
  const TierData& tier = t.tiers[tierIdx];
  const RollupSchema& rollup = t.rollup;
  const std::size_t width = rollup.columns.size();

  // Gather the bucket rows in range: sealed rollup segments first, then
  // the live rollup map. Duplicate rows per bucket+key merge additively
  // in the aggregate fold below.
  ScanStats scan;
  std::vector<std::vector<Value>> rrows;
  const std::vector<bool> needAll(width, true);
  for (const auto& seg : tier.segments) {
    scanSegment(*seg, bounds, nullptr, stmt.table, stmt.tableAlias, needAll,
                rrows, scan);
  }
  for (const auto& [key, row] : tier.active) {
    if (bounds.contains(row[rollup.timeColumn].asInt())) {
      rrows.push_back(row);
      ++scan.rowsMaterialized;
    }
  }
  scan.rowsScanned += tier.active.size();

  RowsAccessor accessor(rollup.columns, stmt.table, stmt.tableAlias);
  const std::vector<Value> nullRow(width);

  // Output metadata mirrors executeAggregateSelect over the raw schema.
  std::vector<ColumnInfo> outColumns;
  for (const auto& item : stmt.items) {
    outColumns.push_back(projectColumnInfo(item, t.columns));
  }

  // Filter bucket rows with the original WHERE. Servability guarantees
  // each conjunct is bucket-uniform, so this equals the raw-row filter.
  std::vector<const std::vector<Value>*> selected;
  for (const auto& row : rrows) {
    accessor.setRow(&row);
    bool keep = true;
    try {
      keep = sql::evaluatePredicate(*stmt.where, accessor);
    } catch (const sql::EvalError& e) {
      throw SqlError(ErrorCode::NoSuchColumn, e.what());
    }
    if (keep) selected.push_back(&row);
  }

  // Group by the original GROUP BY expressions (key columns).
  std::map<std::vector<Value>, std::vector<const std::vector<Value>*>,
           ValueVectorLess>
      groups;
  if (stmt.groupBy.empty()) {
    groups[{}] = std::move(selected);
  } else {
    for (const auto* row : selected) {
      accessor.setRow(row);
      std::vector<Value> key;
      key.reserve(stmt.groupBy.size());
      for (const auto& expr : stmt.groupBy) {
        try {
          key.push_back(sql::evaluate(*expr, accessor));
        } catch (const sql::EvalError& e) {
          throw SqlError(ErrorCode::NoSuchColumn, e.what());
        }
      }
      groups[std::move(key)].push_back(row);
    }
  }

  // Merge an aggregate call from the groups' stored partials.
  const auto computeAggregate =
      [&](const sql::Expr& call,
          const std::vector<const std::vector<Value>*>& rows) -> Value {
    const std::string& fn = call.name;
    if (fn == "count" && call.starArg) {
      std::int64_t n = 0;
      for (const auto* row : rows) n += (*row)[rollup.rowsColumn].asInt();
      return Value(n);
    }
    const std::size_t raw =
        rawColumnIndex(t.columns, call.children[0]->name);
    if (const auto* agg = rollup.aggFor(raw)) {
      if (fn == "count") {
        std::int64_t n = 0;
        for (const auto* row : rows) n += (*row)[agg->count].asInt();
        return Value(n);
      }
      if (fn == "min" || fn == "max") {
        Value best;
        for (const auto* row : rows) {
          best = fn == "min" ? mergeMin(best, (*row)[agg->min])
                             : mergeMax(best, (*row)[agg->max]);
        }
        return best;
      }
      Value sum;  // "sum" or "avg"
      std::int64_t count = 0;
      for (const auto* row : rows) {
        sum = mergeSum(sum, (*row)[agg->sum]);
        count += (*row)[agg->count].asInt();
      }
      if (fn == "sum") return sum;
      if (count == 0) return Value::null();
      return Value(sum.toReal() / static_cast<double>(count));
    }
    // count() over a key column: non-null keys count whole buckets.
    const std::size_t keyCol = rollup.keyFor(raw);
    std::int64_t n = 0;
    for (const auto* row : rows) {
      if (!(*row)[keyCol].isNull()) n += (*row)[rollup.rowsColumn].asInt();
    }
    return Value(n);
  };
  const auto substitute = [&](sql::Expr& e,
                              const std::vector<const std::vector<Value>*>&
                                  rows,
                              const auto& self) -> void {
    if (e.kind == sql::ExprKind::Call) {
      Value v = computeAggregate(e, rows);
      e.kind = sql::ExprKind::Literal;
      e.literal = std::move(v);
      e.children.clear();
      return;
    }
    for (auto& child : e.children) self(*child, rows, self);
  };
  const auto evaluateInGroup =
      [&](const sql::Expr& expr,
          const std::vector<const std::vector<Value>*>& rows) -> Value {
    sql::ExprPtr copy = expr.clone();
    substitute(*copy, rows, substitute);
    accessor.setRow(rows.empty() ? &nullRow : rows.front());
    try {
      return sql::evaluate(*copy, accessor);
    } catch (const sql::EvalError& e) {
      throw SqlError(ErrorCode::NoSuchColumn, e.what());
    }
  };

  struct OutRow {
    std::vector<Value> cells;
    std::vector<Value> orderKeys;
  };
  std::vector<OutRow> outRows;
  outRows.reserve(groups.size());
  for (const auto& [key, groupRows] : groups) {
    OutRow out;
    out.cells.reserve(stmt.items.size());
    for (const auto& item : stmt.items) {
      out.cells.push_back(evaluateInGroup(*item.expr, groupRows));
    }
    for (const auto& orderKey : stmt.orderBy) {
      out.orderKeys.push_back(evaluateInGroup(*orderKey.expr, groupRows));
    }
    outRows.push_back(std::move(out));
  }

  if (!stmt.orderBy.empty()) {
    std::stable_sort(outRows.begin(), outRows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (std::size_t i = 0; i < stmt.orderBy.size(); ++i) {
                         const auto c = a.orderKeys[i].compare(b.orderKeys[i]);
                         if (c == std::strong_ordering::equal) continue;
                         const bool less = c == std::strong_ordering::less;
                         return stmt.orderBy[i].descending ? !less : less;
                       }
                       return false;
                     });
  }

  std::size_t count = outRows.size();
  if (stmt.limit && *stmt.limit >= 0 &&
      static_cast<std::size_t>(*stmt.limit) < count) {
    count = static_cast<std::size_t>(*stmt.limit);
  }
  std::vector<std::vector<Value>> finalRows;
  finalRows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    finalRows.push_back(std::move(outRows[i].cells));
  }

  {
    std::lock_guard statsLock(statsMu_);
    if (tierIdx == 1) {
      ++stats_.tierHits1h;
    } else {
      ++stats_.tierHits1m;
    }
    mergeScan(stats_.scan, scan);
  }
  return std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(outColumns)), std::move(finalRows));
}

// ---------------------------------------------------------------------
// Retention.

std::size_t TimeSeriesStore::pruneOlderThan(const std::string& table,
                                            std::int64_t cutoff) {
  auto t = find(table);
  if (t == nullptr) return 0;
  std::unique_lock lock(t->mu);
  std::size_t evictedRows = 0;
  std::size_t evictedSegments = 0;
  std::erase_if(t->segments, [&](const SegmentPtr& seg) {
    if (seg->maxTime() >= cutoff) return false;
    evictedRows += seg->rowCount();
    ++evictedSegments;
    return true;
  });
  const std::size_t before = t->active.size();
  std::erase_if(t->active, [&](const std::vector<Value>& row) {
    // Same rule as Table::pruneOlderThan: never evict undatable cells.
    const auto time = row[t->timeIdx].tryInt();
    return time.has_value() && *time < cutoff;
  });
  evictedRows += before - t->active.size();
  // Recompute buffer time bounds after the partial eviction.
  t->activeHasTime = false;
  t->activeMin = t->activeMax = 0;
  for (const auto& row : t->active) {
    const Value& tv = row[t->timeIdx];
    if (tv.type() != ValueType::Int) continue;
    if (!t->activeHasTime) {
      t->activeMin = t->activeMax = tv.asInt();
      t->activeHasTime = true;
    } else {
      t->activeMin = std::min(t->activeMin, tv.asInt());
      t->activeMax = std::max(t->activeMax, tv.asInt());
    }
  }
  std::lock_guard statsLock(statsMu_);
  stats_.evictedRows += evictedRows;
  stats_.evictedSegments += evictedSegments;
  return evictedRows;
}

std::size_t TimeSeriesStore::retentionTick() {
  const util::TimePoint now = clock_.now();
  std::vector<std::shared_ptr<TableData>> snapshot;
  {
    std::shared_lock lock(mu_);
    snapshot = tables_;
  }
  std::size_t evictedRaw = 0;
  std::uint64_t evictedRows = 0;
  std::uint64_t evictedSegments = 0;
  for (const auto& t : snapshot) {
    std::unique_lock lock(t->mu);
    // Seal an idle write-ahead buffer so rollups stay current even when
    // a source stops reporting.
    if (!t->active.empty() && options_.segmentSpan > 0 && t->activeHasTime &&
        now - t->activeMin >= options_.segmentSpan) {
      seal(*t);
    }
    for (int tierIdx = 0; tierIdx < 2; ++tierIdx) {
      TierData& tier = t->tiers[tierIdx];
      const util::Duration bucket =
          tierIdx == 1 ? options_.bucket1h : options_.bucket1m;
      // Seal complete buckets (no further in-order arrivals possible)
      // into immutable columnar segments.
      std::vector<std::vector<Value>> complete;
      for (auto it = tier.active.begin(); it != tier.active.end();) {
        const util::TimePoint start = it->first[0].asInt();
        if (start + bucket - 1 <= t->sealedUntil) {
          complete.push_back(std::move(it->second));
          it = tier.active.erase(it);
        } else {
          ++it;
        }
      }
      if (!complete.empty()) {
        tier.segments.push_back(
            encodeSegment(t->rollup.columns, t->rollup.timeColumn, complete));
      }
      // Tier TTL.
      const util::Duration ttl =
          tierIdx == 1 ? options_.rollup1hTtl : options_.rollup1mTtl;
      if (ttl > 0) {
        const util::TimePoint cutoff = now - ttl;
        std::erase_if(tier.segments, [&](const SegmentPtr& seg) {
          return seg->maxTime() < cutoff;
        });
        for (auto it = tier.active.begin(); it != tier.active.end();) {
          if (it->first[0].asInt() + bucket - 1 < cutoff) {
            it = tier.active.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    // Raw TTL: whole segments plus datable buffer rows.
    if (options_.rawTtl > 0) {
      const util::TimePoint cutoff = now - options_.rawTtl;
      std::erase_if(t->segments, [&](const SegmentPtr& seg) {
        if (seg->maxTime() >= cutoff) return false;
        evictedRaw += seg->rowCount();
        evictedRows += seg->rowCount();
        ++evictedSegments;
        return true;
      });
    }
  }
  std::lock_guard statsLock(statsMu_);
  stats_.evictedRows += evictedRows;
  stats_.evictedSegments += evictedSegments;
  return evictedRaw;
}

TsdbStats TimeSeriesStore::stats() const {
  std::vector<std::shared_ptr<TableData>> snapshot;
  {
    std::shared_lock lock(mu_);
    snapshot = tables_;
  }
  TsdbStats s;
  {
    std::lock_guard statsLock(statsMu_);
    s = stats_;
  }
  s.tables = snapshot.size();
  s.segments = s.sealedRows = s.activeRows = 0;
  s.encodedBytes = s.logicalBytes = 0;
  s.rollupRows1m = s.rollupRows1h = s.rollupSegments = 0;
  for (const auto& t : snapshot) {
    std::shared_lock lock(t->mu);
    s.activeRows += t->active.size();
    for (const auto& seg : t->segments) {
      ++s.segments;
      s.sealedRows += seg->rowCount();
      s.encodedBytes += seg->bytes();
      s.logicalBytes += seg->logicalBytes();
    }
    for (int tierIdx = 0; tierIdx < 2; ++tierIdx) {
      const TierData& tier = t->tiers[tierIdx];
      std::uint64_t rows = tier.active.size();
      for (const auto& seg : tier.segments) {
        rows += seg->rowCount();
        ++s.rollupSegments;
      }
      (tierIdx == 1 ? s.rollupRows1h : s.rollupRows1m) += rows;
    }
  }
  return s;
}

}  // namespace gridrm::store::tsdb
