#include "gridrm/store/tsdb/codec.hpp"

#include <bit>
#include <cstring>

#include "gridrm/dbc/error.hpp"

namespace gridrm::store::tsdb {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;
using util::ValueType;

void putVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t VarintReader::next() {
  std::uint64_t v = 0;
  int shift = 0;
  while (p_ != end_) {
    const std::uint8_t b = *p_++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
  throw SqlError(ErrorCode::Generic, "tsdb: truncated varint stream");
}

namespace {

void setBit(std::vector<std::uint8_t>& bits, std::size_t i) {
  const std::size_t byte = i / 8;
  if (byte >= bits.size()) bits.resize(byte + 1, 0);
  bits[byte] |= static_cast<std::uint8_t>(1u << (i % 8));
}

bool getBit(const std::vector<std::uint8_t>& bits, std::size_t i) noexcept {
  const std::size_t byte = i / 8;
  if (byte >= bits.size()) return false;
  return (bits[byte] >> (i % 8)) & 1u;
}

/// XOR-coded double: control byte (high nibble = leading zero bytes,
/// low nibble = trailing zero bytes of the xor), then the middle bytes
/// most-significant first. xor == 0 encodes as the single byte 0x80.
void putXor(std::vector<std::uint8_t>& out, std::uint64_t x) {
  if (x == 0) {
    out.push_back(0x80);  // lead = 8: no middle bytes
    return;
  }
  int lead = std::countl_zero(x) / 8;
  int trail = std::countr_zero(x) / 8;
  if (lead + trail >= 8) trail = 8 - lead - 1;  // keep >= 1 middle byte
  out.push_back(static_cast<std::uint8_t>((lead << 4) | trail));
  for (int i = 8 - lead; i-- > trail;) {
    out.push_back(static_cast<std::uint8_t>(x >> (i * 8)));
  }
}

std::uint64_t getXor(const std::vector<std::uint8_t>& bytes,
                     std::size_t& pos) {
  if (pos >= bytes.size()) {
    throw SqlError(ErrorCode::Generic, "tsdb: truncated real stream");
  }
  const std::uint8_t control = bytes[pos++];
  const int lead = control >> 4;
  if (lead >= 8) return 0;
  const int trail = control & 0x0f;
  std::uint64_t x = 0;
  for (int i = 8 - lead; i-- > trail;) {
    if (pos >= bytes.size()) {
      throw SqlError(ErrorCode::Generic, "tsdb: truncated real stream");
    }
    x |= static_cast<std::uint64_t>(bytes[pos++]) << (i * 8);
  }
  return x;
}

}  // namespace

std::size_t EncodedColumn::bytes() const noexcept {
  std::size_t n = validity.size() + tags.size() + bools.size() + ints.size() +
                  reals.size() + ids.size();
  for (const auto& s : dict) n += s.size() + sizeof(std::string);
  return n;
}

ColumnEncoder::ColumnEncoder(dbc::ColumnInfo info, bool deltaOfDelta) {
  col_.info = std::move(info);
  col_.deltaOfDelta = deltaOfDelta;
}

void ColumnEncoder::addTag(std::uint8_t tag) {
  if (!haveTag_) {
    haveTag_ = true;
    runTag_ = tag;
    runLen_ = 1;
    return;
  }
  if (tag == runTag_) {
    ++runLen_;
    return;
  }
  mixed_ = true;
  tagRuns_.emplace_back(runTag_, runLen_);
  runTag_ = tag;
  runLen_ = 1;
}

void ColumnEncoder::add(const Value& v) {
  const std::size_t row = col_.rowCount++;
  if (v.isNull()) return;  // validity bit stays 0
  setBit(col_.validity, row);
  addTag(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::Bool:
      if (v.asBool()) setBit(col_.bools, boolCount_);
      else if (boolCount_ / 8 >= col_.bools.size()) col_.bools.push_back(0);
      ++boolCount_;
      break;
    case ValueType::Int: {
      const std::int64_t x = v.asInt();
      if (!haveInt_) {
        putVarint(col_.ints, zigzagEncode(x));
        haveInt_ = true;
      } else if (col_.deltaOfDelta) {
        const std::int64_t delta = x - prevInt_;
        if (!haveIntDelta_) {
          putVarint(col_.ints, zigzagEncode(delta));
          haveIntDelta_ = true;
        } else {
          putVarint(col_.ints, zigzagEncode(delta - prevDelta_));
        }
        prevDelta_ = delta;
      } else {
        putVarint(col_.ints, zigzagEncode(x - prevInt_));
      }
      prevInt_ = x;
      break;
    }
    case ValueType::Real: {
      std::uint64_t bits;
      const double d = v.asReal();
      std::memcpy(&bits, &d, sizeof bits);
      putXor(col_.reals, bits ^ prevBits_);
      prevBits_ = bits;
      break;
    }
    case ValueType::String: {
      const std::string& s = v.asString();
      const auto [it, inserted] = dictIndex_.try_emplace(
          s, static_cast<std::uint32_t>(col_.dict.size()));
      if (inserted) col_.dict.push_back(s);
      dictIds_.push_back(it->second);
      break;
    }
    case ValueType::Null:
      break;  // unreachable: isNull handled above
  }
}

EncodedColumn ColumnEncoder::finish() {
  if (haveTag_) tagRuns_.emplace_back(runTag_, runLen_);
  if (mixed_) {
    for (const auto& [tag, len] : tagRuns_) {
      col_.tags.push_back(tag);
      putVarint(col_.tags, len);
    }
  } else if (haveTag_) {
    col_.uniformTag = runTag_;
  }
  // RLE the dictionary ids.
  for (std::size_t i = 0; i < dictIds_.size();) {
    std::size_t j = i + 1;
    while (j < dictIds_.size() && dictIds_[j] == dictIds_[i]) ++j;
    putVarint(col_.ids, dictIds_[i]);
    putVarint(col_.ids, j - i);
    i = j;
  }
  return std::move(col_);
}

ColumnCursor::ColumnCursor(const EncodedColumn& col)
    : col_(col), intsR_(col.ints), idsR_(col.ids), tagsR_(col.tags) {}

bool ColumnCursor::next() {
  if (row_ + 1 >= col_.rowCount) {
    row_ = col_.rowCount;  // park past the end
    return false;
  }
  ++row_;
  null_ = !getBit(col_.validity, row_);
  if (null_) return true;
  if (col_.tags.empty()) {
    tag_ = col_.uniformTag;
  } else {
    if (tagRun_ == 0) {
      runTag_ = static_cast<std::uint8_t>(tagsR_.next());
      tagRun_ = tagsR_.next();
    }
    tag_ = runTag_;
    --tagRun_;
  }
  switch (static_cast<ValueType>(tag_)) {
    case ValueType::Bool:
      bool_ = getBit(col_.bools, boolPos_++);
      break;
    case ValueType::Int: {
      const std::int64_t coded = zigzagDecode(intsR_.next());
      if (!haveInt_) {
        int_ = coded;
        haveInt_ = true;
      } else if (col_.deltaOfDelta) {
        const std::int64_t delta =
            haveIntDelta_ ? prevDelta_ + coded : coded;
        haveIntDelta_ = true;
        int_ = prevInt_ + delta;
        prevDelta_ = delta;
      } else {
        int_ = prevInt_ + coded;
      }
      prevInt_ = int_;
      break;
    }
    case ValueType::Real:
      realBits_ = prevBits_ ^ getXor(col_.reals, realPos_);
      prevBits_ = realBits_;
      break;
    case ValueType::String: {
      if (idRun_ == 0) {
        runId_ = static_cast<std::uint32_t>(idsR_.next());
        idRun_ = static_cast<std::uint32_t>(idsR_.next());
      }
      dictId_ = runId_;
      --idRun_;
      break;
    }
    case ValueType::Null:
      break;
  }
  return true;
}

Value ColumnCursor::value() const {
  if (null_) return Value::null();
  switch (static_cast<ValueType>(tag_)) {
    case ValueType::Bool:
      return Value(bool_);
    case ValueType::Int:
      return Value(int_);
    case ValueType::Real: {
      double d;
      std::memcpy(&d, &realBits_, sizeof d);
      return Value(d);
    }
    case ValueType::String:
      return Value(col_.dict[dictId_]);
    case ValueType::Null:
      break;
  }
  return Value::null();
}

std::size_t logicalCellBytes(const Value& v) noexcept {
  std::size_t n = sizeof(Value);
  if (v.type() == ValueType::String) {
    const std::string& s = v.asString();
    if (s.size() >= sizeof(std::string)) n += s.size() + 1;
  }
  return n;
}

}  // namespace gridrm::store::tsdb
