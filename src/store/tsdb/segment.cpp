#include "gridrm/store/tsdb/segment.hpp"

#include <algorithm>
#include <bit>

#include "gridrm/dbc/error.hpp"
#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/vec/engine.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::store::tsdb {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;
using util::ValueType;

Segment::Segment(std::vector<EncodedColumn> columns, std::size_t timeColumn,
                 util::TimePoint minTime, util::TimePoint maxTime,
                 std::size_t logicalBytes)
    : columns_(std::move(columns)),
      timeColumn_(timeColumn),
      rows_(columns_.empty() ? 0 : columns_[0].rowCount),
      minTime_(minTime),
      maxTime_(maxTime),
      bytes_(0),
      logicalBytes_(logicalBytes) {
  for (const auto& c : columns_) bytes_ += c.bytes();
}

SegmentPtr encodeSegment(const std::vector<dbc::ColumnInfo>& columns,
                         std::size_t timeColumn,
                         const std::vector<std::vector<Value>>& rows) {
  std::vector<ColumnEncoder> encoders;
  encoders.reserve(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    encoders.emplace_back(columns[c], /*deltaOfDelta=*/c == timeColumn);
  }
  util::TimePoint minTime = std::numeric_limits<util::TimePoint>::max();
  util::TimePoint maxTime = std::numeric_limits<util::TimePoint>::min();
  std::size_t logicalBytes = 0;
  for (const auto& row : rows) {
    logicalBytes += sizeof(std::vector<Value>);
    for (std::size_t c = 0; c < columns.size(); ++c) {
      encoders[c].add(row[c]);
      logicalBytes += logicalCellBytes(row[c]);
    }
    const Value& t = row[timeColumn];
    if (t.type() == ValueType::Int) {
      minTime = std::min(minTime, t.asInt());
      maxTime = std::max(maxTime, t.asInt());
    }
  }
  if (minTime > maxTime) {  // no datable row: bounds that never prune
    minTime = std::numeric_limits<util::TimePoint>::min();
    maxTime = std::numeric_limits<util::TimePoint>::max();
  }
  std::vector<EncodedColumn> encoded;
  encoded.reserve(encoders.size());
  for (auto& e : encoders) encoded.push_back(e.finish());
  return std::make_shared<const Segment>(std::move(encoded), timeColumn,
                                         minTime, maxTime, logicalBytes);
}

void collectColumnRefs(const sql::Expr& expr,
                       std::vector<std::string>& names) {
  if (expr.kind == sql::ExprKind::Column) {
    names.push_back(util::toLower(expr.name));
  }
  for (const auto& child : expr.children) {
    collectColumnRefs(*child, names);
  }
}

namespace {

/// Accessor over the per-candidate decoded predicate columns (the row
/// interpreter's view of the batch columns, used when the vectorized
/// filter falls back). Columns the predicate does not reference
/// resolve to nullopt, which makes sql::evaluate raise the same
/// "unknown column" EvalError the row store's accessor produces for
/// genuinely unknown names -- and by construction every name the
/// predicate references *is* decoded.
class ColumnarRowAccessor final : public sql::RowAccessor {
 public:
  ColumnarRowAccessor(const Segment& segment,
                      const std::vector<sql::vec::VecColumn>& cols,
                      const std::vector<bool>& predCols,
                      const std::string& tableName, const std::string& alias)
      : segment_(segment), cols_(cols), predCols_(predCols),
        tableName_(tableName), alias_(alias) {}

  void setRow(std::size_t candidate) noexcept { candidate_ = candidate; }

  std::optional<Value> column(const std::string& table,
                              const std::string& name) const override {
    if (!table.empty() && !util::iequals(table, tableName_) &&
        !util::iequals(table, alias_)) {
      return std::nullopt;
    }
    for (std::size_t c = 0; c < segment_.columnCount(); ++c) {
      if (util::iequals(segment_.column(c).info.name, name)) {
        if (!predCols_[c]) return std::nullopt;  // unreachable by construction
        return cols_[c].valueAt(candidate_);
      }
    }
    return std::nullopt;
  }

 private:
  const Segment& segment_;
  const std::vector<sql::vec::VecColumn>& cols_;  // aligned to candidates
  const std::vector<bool>& predCols_;
  const std::string& tableName_;
  const std::string& alias_;
  std::size_t candidate_ = 0;
};

/// Decode one column at the candidate rows straight into a typed batch
/// column. This is the zero-transpose feed for the vectorized filter:
/// the column family comes from the segment's tag metadata, and Str
/// cells stay dictionary codes referencing the segment's own dict --
/// no string is copied to evaluate a predicate.
sql::vec::VecColumn decodeColumnVec(const EncodedColumn& col,
                                    const std::vector<std::uint32_t>& candidates,
                                    std::size_t segmentRows,
                                    ScanStats& stats) {
  using sql::vec::ColKind;
  sql::vec::VecColumn out;
  if (col.tags.empty()) {
    // Uniform (or all-NULL) column: one typed family fits every cell.
    switch (static_cast<ValueType>(col.uniformTag)) {
      case ValueType::Bool:
        out.kind = ColKind::Bool;
        break;
      case ValueType::String:
        out.kind = ColKind::Str;
        out.dict = &col.dict;  // borrowed from the immutable segment
        break;
      default:
        out.kind = ColKind::Numeric;  // Int/Real, or all-NULL
        break;
    }
  } else {
    out.kind = ColKind::Generic;  // genuinely mixed cells
  }
  ColumnCursor cursor(col);
  std::size_t nextCandidate = 0;
  for (std::uint32_t row = 0; cursor.next(); ++row) {
    if (nextCandidate == candidates.size()) {
      stats.cellsSkipped += segmentRows - row;
      break;
    }
    if (candidates[nextCandidate] != row) {
      ++stats.cellsSkipped;
      continue;
    }
    ++nextCandidate;
    ++stats.cellsMaterialized;
    if (cursor.isNull()) {
      out.appendNull();
      continue;
    }
    switch (out.kind) {
      case ColKind::Numeric:
        if (static_cast<ValueType>(cursor.rawTag()) == ValueType::Int) {
          out.appendInt(cursor.rawInt());
        } else {
          out.appendReal(std::bit_cast<double>(cursor.rawRealBits()));
        }
        break;
      case ColKind::Bool:
        out.appendBool(cursor.rawBool());
        break;
      case ColKind::Str:
        out.appendCode(static_cast<std::int32_t>(cursor.rawDictId()));
        break;
      case ColKind::Generic:
        out.appendValue(cursor.value());
        break;
    }
  }
  return out;
}

}  // namespace

void scanSegment(const Segment& segment, const TimeBounds& bounds,
                 const sql::Expr* where, const std::string& tableName,
                 const std::string& alias, const std::vector<bool>& needed,
                 std::vector<std::vector<Value>>& out, ScanStats& stats,
                 bool vectorized) {
  if (segment.maxTime() < bounds.lo || segment.minTime() > bounds.hi) {
    ++stats.segmentsPruned;
    return;
  }
  ++stats.segmentsScanned;
  const std::size_t n = segment.rowCount();
  const std::size_t width = segment.columnCount();
  stats.rowsScanned += n;
  const bool constrained =
      bounds.lo != std::numeric_limits<util::TimePoint>::min() ||
      bounds.hi != std::numeric_limits<util::TimePoint>::max();

  // Phase 0: walk the time column and keep candidate row indices. A
  // non-Int time cell cannot be pruned by integer bounds (SQL type
  // ordering could still satisfy the predicate), and a NULL one fails
  // every comparison, so it survives only an unconstrained scan.
  std::vector<std::uint32_t> candidates;
  candidates.reserve(n);
  {
    ColumnCursor time(segment.column(segment.timeColumn()));
    for (std::uint32_t row = 0; time.next(); ++row) {
      bool keep;
      if (time.isNull()) {
        keep = !constrained;
      } else if (!constrained) {
        keep = true;
      } else {
        const Value v = time.value();
        keep = v.type() == ValueType::Int ? bounds.contains(v.asInt()) : true;
      }
      if (keep) candidates.push_back(row);
    }
  }
  if (candidates.empty()) return;

  // Which columns does the predicate touch?
  std::vector<bool> predCols(width, false);
  if (where != nullptr) {
    std::vector<std::string> names;
    collectColumnRefs(*where, names);
    for (const auto& name : names) {
      for (std::size_t c = 0; c < width; ++c) {
        if (util::iequals(segment.column(c).info.name, name)) {
          predCols[c] = true;
        }
      }
    }
  }

  // Phase A: decode predicate columns at candidate rows only -- into
  // typed batch columns -- then evaluate the predicate to pick
  // survivors, vectorized when allowed (falling back to the row
  // interpreter over the same decoded columns on any parity doubt).
  std::vector<sql::vec::VecColumn> predVec(width);
  for (std::size_t c = 0; c < width; ++c) {
    if (!predCols[c]) continue;
    predVec[c] = decodeColumnVec(segment.column(c), candidates, n, stats);
  }
  std::vector<std::uint32_t> survivors;  // candidate indices
  if (where == nullptr) {
    survivors.resize(candidates.size());
    for (std::uint32_t k = 0; k < survivors.size(); ++k) survivors[k] = k;
  } else {
    std::optional<std::vector<std::uint32_t>> vecSurvivors;
    if (vectorized) {
      std::vector<std::string_view> names;
      names.reserve(width);
      std::vector<const sql::vec::VecColumn*> cols(width, nullptr);
      for (std::size_t c = 0; c < width; ++c) {
        names.emplace_back(segment.column(c).info.name);
        if (predCols[c]) cols[c] = &predVec[c];
      }
      vecSurvivors = sql::vec::tryFilterBatch(*where, names, tableName, alias,
                                              cols, candidates.size());
    }
    if (vecSurvivors) {
      survivors = std::move(*vecSurvivors);
    } else {
      ColumnarRowAccessor accessor(segment, predVec, predCols, tableName,
                                   alias);
      for (std::uint32_t k = 0; k < candidates.size(); ++k) {
        accessor.setRow(k);
        bool keep;
        try {
          keep = sql::evaluatePredicate(*where, accessor);
        } catch (const sql::EvalError& e) {
          throw SqlError(ErrorCode::NoSuchColumn, e.what());
        }
        if (keep) survivors.push_back(k);
      }
    }
  }
  if (survivors.empty()) return;

  // Phase B: materialise the projected columns at surviving rows only.
  // Predicate columns were already decoded per candidate; reuse them.
  const std::size_t base = out.size();
  out.resize(base + survivors.size());
  for (auto it = out.begin() + static_cast<std::ptrdiff_t>(base);
       it != out.end(); ++it) {
    it->resize(width);
  }
  stats.rowsMaterialized += survivors.size();
  for (std::size_t c = 0; c < width; ++c) {
    if (!needed[c]) continue;
    if (predCols[c]) {
      for (std::size_t s = 0; s < survivors.size(); ++s) {
        out[base + s][c] = predVec[c].valueAt(survivors[s]);
      }
      continue;
    }
    // Survivor row indices in segment order.
    ColumnCursor cursor(segment.column(c));
    std::size_t nextSurvivor = 0;
    for (std::uint32_t row = 0; cursor.next(); ++row) {
      if (nextSurvivor == survivors.size()) {
        stats.cellsSkipped += n - row;
        break;  // no survivor left in this segment
      }
      if (candidates[survivors[nextSurvivor]] == row) {
        out[base + nextSurvivor][c] = cursor.value();
        ++stats.cellsMaterialized;
        ++nextSurvivor;
      } else {
        ++stats.cellsSkipped;
      }
    }
  }
}

}  // namespace gridrm::store::tsdb
