#include "gridrm/store/tsdb/retention.hpp"

namespace gridrm::store::tsdb {

using util::Value;
using util::ValueType;

const RollupSchema::Agg* RollupSchema::aggFor(
    std::size_t rawIdx) const noexcept {
  for (const auto& a : aggs) {
    if (a.raw == rawIdx) return &a;
  }
  return nullptr;
}

std::size_t RollupSchema::keyFor(std::size_t rawIdx) const noexcept {
  for (std::size_t k = 0; k < keyRaw.size(); ++k) {
    if (keyRaw[k] == rawIdx) return keyCol[k];
  }
  return static_cast<std::size_t>(-1);
}

RollupSchema buildRollupSchema(const std::vector<dbc::ColumnInfo>& raw,
                               std::size_t timeColumn) {
  RollupSchema schema;
  const std::string& table =
      raw.empty() ? std::string() : raw[timeColumn].table;
  schema.columns.push_back(
      {raw[timeColumn].name, ValueType::Int, raw[timeColumn].unit, table});
  schema.timeColumn = 0;
  for (std::size_t c = 0; c < raw.size(); ++c) {
    if (c == timeColumn) continue;
    if (raw[c].type == ValueType::Int || raw[c].type == ValueType::Real) {
      continue;  // aggregated below, after the keys
    }
    schema.keyRaw.push_back(c);
    schema.keyCol.push_back(schema.columns.size());
    schema.columns.push_back(raw[c]);
  }
  schema.rowsColumn = schema.columns.size();
  schema.columns.push_back({"_rows", ValueType::Int, "", table});
  for (std::size_t c = 0; c < raw.size(); ++c) {
    if (c == timeColumn) continue;
    if (raw[c].type != ValueType::Int && raw[c].type != ValueType::Real) {
      continue;
    }
    RollupSchema::Agg agg;
    agg.raw = c;
    agg.count = schema.columns.size();
    schema.columns.push_back({raw[c].name + "_count", ValueType::Int, "",
                              table});
    agg.sum = schema.columns.size();
    schema.columns.push_back({raw[c].name + "_sum", raw[c].type, raw[c].unit,
                              table});
    agg.min = schema.columns.size();
    schema.columns.push_back({raw[c].name + "_min", raw[c].type, raw[c].unit,
                              table});
    agg.max = schema.columns.size();
    schema.columns.push_back({raw[c].name + "_max", raw[c].type, raw[c].unit,
                              table});
    schema.aggs.push_back(agg);
  }
  return schema;
}

util::TimePoint bucketStart(util::TimePoint t,
                            util::Duration bucket) noexcept {
  util::TimePoint q = t / bucket;
  if (t % bucket != 0 && t < 0) --q;  // floor toward -inf
  return q * bucket;
}

Value mergeSum(const Value& a, const Value& b) {
  if (a.isNull()) return b;
  if (b.isNull()) return a;
  if (a.type() == ValueType::Int && b.type() == ValueType::Int) {
    // Wrapping add: partial sums are re-associated when rollup tiers
    // and federated fragments merge, so saturating or promoting here
    // would make the merged total depend on merge order. Two's
    // complement wrap keeps x+y+z identical however it is bracketed.
    return Value(static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a.asInt()) +
        static_cast<std::uint64_t>(b.asInt())));
  }
  return Value(a.toReal() + b.toReal());
}

Value mergeMin(const Value& a, const Value& b) {
  if (a.isNull()) return b;
  if (b.isNull()) return a;
  return b.compare(a) == std::strong_ordering::less ? b : a;
}

Value mergeMax(const Value& a, const Value& b) {
  if (a.isNull()) return b;
  if (b.isNull()) return a;
  return b.compare(a) == std::strong_ordering::greater ? b : a;
}

void foldRows(const RollupSchema& schema, std::size_t rawTimeColumn,
              util::Duration bucket,
              const std::vector<std::vector<Value>>& rows, RollupMap& acc) {
  for (const auto& row : rows) {
    const Value& t = row[rawTimeColumn];
    if (t.type() != ValueType::Int) continue;  // not bucketable
    RollupKey key;
    key.reserve(1 + schema.keyRaw.size());
    key.emplace_back(bucketStart(t.asInt(), bucket));
    for (const std::size_t raw : schema.keyRaw) key.push_back(row[raw]);

    auto it = acc.find(key);
    if (it == acc.end()) {
      std::vector<Value> fresh(schema.columns.size());
      fresh[schema.timeColumn] = key[0];
      for (std::size_t k = 0; k < schema.keyCol.size(); ++k) {
        fresh[schema.keyCol[k]] = key[k + 1];
      }
      fresh[schema.rowsColumn] = Value(std::int64_t{0});
      for (const auto& agg : schema.aggs) {
        fresh[agg.count] = Value(std::int64_t{0});
        // sum/min/max start NULL (the aggregate of zero values)
      }
      it = acc.emplace(std::move(key), std::move(fresh)).first;
    }
    std::vector<Value>& out = it->second;
    out[schema.rowsColumn] = Value(out[schema.rowsColumn].asInt() + 1);
    for (const auto& agg : schema.aggs) {
      const Value& v = row[agg.raw];
      if (v.isNull()) continue;
      out[agg.count] = Value(out[agg.count].asInt() + 1);
      if (v.isNumeric()) {
        out[agg.sum] = mergeSum(out[agg.sum], v);
      }
      out[agg.min] = mergeMin(out[agg.min], v);
      out[agg.max] = mergeMax(out[agg.max], v);
    }
  }
}

}  // namespace gridrm::store::tsdb
