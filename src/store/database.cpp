#include "gridrm/store/database.hpp"

#include <algorithm>
#include <map>
#include <mutex>

#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/sql/vec/engine.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::store {

using dbc::ColumnInfo;
using dbc::ErrorCode;
using dbc::SqlError;
using dbc::Value;

Table::Table(std::string name, std::vector<ColumnInfo> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

void Table::insert(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    throw SqlError(ErrorCode::Generic,
                   "insert arity mismatch for table " + name_);
  }
  rows_.push_back(std::move(row));
}

void Table::insertNamed(const std::vector<std::string>& columns,
                        std::vector<Value> row) {
  if (columns.size() != row.size()) {
    throw SqlError(ErrorCode::Generic, "column/value count mismatch");
  }
  std::vector<Value> full(columns_.size());
  std::vector<bool> assigned(columns_.size(), false);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    bool found = false;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (util::iequals(columns_[c].name, columns[i])) {
        if (assigned[c]) {
          throw SqlError(ErrorCode::Syntax,
                         "column '" + columns[i] +
                             "' listed twice in INSERT into " + name_);
        }
        assigned[c] = true;
        full[c] = std::move(row[i]);
        found = true;
        break;
      }
    }
    if (!found) {
      throw SqlError(ErrorCode::NoSuchColumn,
                     "table " + name_ + " has no column '" + columns[i] + "'");
    }
  }
  rows_.push_back(std::move(full));
}

std::size_t Table::pruneOlderThan(const std::string& timeColumn,
                                  std::int64_t cutoff) {
  std::size_t idx = columns_.size();
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (util::iequals(columns_[c].name, timeColumn)) {
      idx = c;
      break;
    }
  }
  if (idx == columns_.size()) {
    throw SqlError(ErrorCode::NoSuchColumn,
                   "no time column '" + timeColumn + "'");
  }
  const std::size_t before = rows_.size();
  rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                             [&](const std::vector<Value>& row) {
                               // A cell with no sensible integer reading
                               // (NULL, non-numeric string) never matches
                               // the age test: retention must not silently
                               // eat rows it cannot date.
                               const auto t = row[idx].tryInt();
                               return t.has_value() && *t < cutoff;
                             }),
              rows_.end());
  return before - rows_.size();
}

namespace {

/// Row accessor resolving names against a column list, honouring an
/// optional table alias qualifier.
class TableRowAccessor final : public sql::RowAccessor {
 public:
  TableRowAccessor(const std::vector<ColumnInfo>& columns,
                   const std::string& tableName, const std::string& alias)
      : columns_(columns), tableName_(tableName), alias_(alias) {}

  void setRow(const std::vector<Value>* row) noexcept { row_ = row; }

  std::optional<Value> column(const std::string& table,
                              const std::string& name) const override {
    if (!table.empty() && !util::iequals(table, tableName_) &&
        !util::iequals(table, alias_)) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (util::iequals(columns_[i].name, name)) return (*row_)[i];
    }
    return std::nullopt;
  }

 private:
  const std::vector<ColumnInfo>& columns_;
  const std::string& tableName_;
  const std::string& alias_;
  const std::vector<Value>* row_ = nullptr;
};

}  // namespace

/// Derive an output column descriptor for a projected expression.
/// Exported: the federated merge executor reproduces the same
/// projection metadata at the coordinator (federated_planner.cpp).
ColumnInfo projectColumn(const sql::SelectItem& item,
                         const std::vector<ColumnInfo>& source) {
  ColumnInfo out;
  if (!item.alias.empty()) {
    out.name = item.alias;
  } else if (item.expr->kind == sql::ExprKind::Column) {
    out.name = item.expr->name;
  } else {
    out.name = item.expr->toSql();
  }
  if (item.expr->kind == sql::ExprKind::Column) {
    for (const auto& c : source) {
      if (util::iequals(c.name, item.expr->name)) {
        out.type = c.type;
        out.unit = c.unit;
        out.table = c.table;
        break;
      }
    }
  } else if (item.expr->kind == sql::ExprKind::Literal) {
    out.type = item.expr->literal.type();
  } else {
    out.type = util::ValueType::Real;  // computed expressions
  }
  return out;
}

namespace {

// ---------------------------------------------------------------------
// Aggregation (COUNT / SUM / AVG / MIN / MAX with optional GROUP BY).

/// Compute one aggregate call over the rows of a group.
Value computeAggregate(const sql::Expr& call,
                       const std::vector<const std::vector<Value>*>& rows,
                       TableRowAccessor& accessor) {
  const std::string& fn = call.name;  // parser lower-cases call names
  if (fn == "count" && call.starArg) {
    return Value(static_cast<std::int64_t>(rows.size()));
  }
  if (call.children.size() != 1) {
    throw SqlError(ErrorCode::Syntax,
                   "aggregate " + fn + " expects exactly one argument");
  }
  // Evaluate the argument per row, skipping SQL NULLs.
  std::vector<Value> values;
  values.reserve(rows.size());
  for (const auto* row : rows) {
    accessor.setRow(row);
    Value v = sql::evaluate(*call.children[0], accessor);
    if (!v.isNull()) values.push_back(std::move(v));
  }
  if (fn == "count") {
    return Value(static_cast<std::int64_t>(values.size()));
  }
  if (values.empty()) return Value::null();
  if (fn == "min" || fn == "max") {
    const Value* best = &values[0];
    for (const Value& v : values) {
      const auto c = v.compare(*best);
      if ((fn == "min") ? c == std::strong_ordering::less
                        : c == std::strong_ordering::greater) {
        best = &v;
      }
    }
    return *best;
  }
  if (fn == "sum" || fn == "avg") {
    bool allInt = true;
    double total = 0;
    std::int64_t intTotal = 0;
    for (const Value& v : values) {
      if (!v.isNumeric()) {
        throw SqlError(ErrorCode::Generic,
                       fn + "() over non-numeric values");
      }
      if (v.type() == util::ValueType::Int) {
        // Wrapping add (UB-free): SUM over int64 cells wraps rather
        // than trapping, and stays re-associable across federated
        // partial aggregates (see tsdb mergeSum).
        intTotal = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(intTotal) +
            static_cast<std::uint64_t>(v.asInt()));
      } else {
        allInt = false;
      }
      total += v.toReal();
    }
    if (fn == "sum") {
      return allInt ? Value(intTotal) : Value(total);
    }
    return Value(total / static_cast<double>(values.size()));
  }
  throw SqlError(ErrorCode::Syntax, "unknown aggregate function '" + fn + "'");
}

/// Replace every aggregate Call node in `expr` (in place) with the
/// Literal of its value over the group, so the remaining tree can be
/// evaluated with the ordinary row evaluator.
void substituteAggregates(sql::Expr& expr,
                          const std::vector<const std::vector<Value>*>& rows,
                          TableRowAccessor& accessor) {
  if (expr.kind == sql::ExprKind::Call) {
    Value v = computeAggregate(expr, rows, accessor);
    expr.kind = sql::ExprKind::Literal;
    expr.literal = std::move(v);
    expr.children.clear();
    return;
  }
  for (auto& child : expr.children) {
    substituteAggregates(*child, rows, accessor);
  }
}

/// Evaluate an expression in group context: aggregates over the whole
/// group, plain columns against the group's first row (NULL when the
/// group is empty, which only happens for a global aggregate over an
/// empty input).
Value evaluateInGroup(const sql::Expr& expr,
                      const std::vector<const std::vector<Value>*>& rows,
                      TableRowAccessor& accessor,
                      const std::vector<Value>& nullRow) {
  sql::ExprPtr copy = expr.clone();
  substituteAggregates(*copy, rows, accessor);
  accessor.setRow(rows.empty() ? &nullRow : rows.front());
  try {
    return sql::evaluate(*copy, accessor);
  } catch (const sql::EvalError& e) {
    throw SqlError(ErrorCode::NoSuchColumn, e.what());
  }
}

std::unique_ptr<dbc::VectorResultSet> executeAggregateSelect(
    const sql::SelectStatement& stmt, const std::vector<ColumnInfo>& columns,
    const std::vector<std::vector<Value>>& rows) {
  TableRowAccessor accessor(columns, stmt.table, stmt.tableAlias);
  const std::vector<Value> nullRow(columns.size());

  // Output columns.
  std::vector<ColumnInfo> outColumns;
  for (const auto& item : stmt.items) {
    if (item.isStar()) {
      throw SqlError(ErrorCode::Syntax,
                     "SELECT * cannot be combined with aggregates/GROUP BY");
    }
    ColumnInfo c = projectColumn(item, columns);
    if (item.alias.empty() && item.expr->kind == sql::ExprKind::Call) {
      c.name = item.expr->toSql();
      c.type = item.expr->name == "count" ? util::ValueType::Int
                                          : util::ValueType::Real;
    }
    outColumns.push_back(std::move(c));
  }

  // Filter (WHERE may not contain aggregates; evaluate() enforces that).
  std::vector<const std::vector<Value>*> selected;
  for (const auto& row : rows) {
    accessor.setRow(&row);
    bool keep = true;
    if (stmt.where) {
      try {
        keep = sql::evaluatePredicate(*stmt.where, accessor);
      } catch (const sql::EvalError& e) {
        throw SqlError(ErrorCode::NoSuchColumn, e.what());
      }
    }
    if (keep) selected.push_back(&row);
  }

  // Group.
  struct ValueVectorLess {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const {
      for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
        const auto c = a[i].compare(b[i]);
        if (c != std::strong_ordering::equal) {
          return c == std::strong_ordering::less;
        }
      }
      return a.size() < b.size();
    }
  };
  std::map<std::vector<Value>, std::vector<const std::vector<Value>*>,
           ValueVectorLess>
      groups;
  if (stmt.groupBy.empty()) {
    groups[{}] = std::move(selected);  // one global group (possibly empty)
  } else {
    for (const auto* row : selected) {
      accessor.setRow(row);
      std::vector<Value> key;
      key.reserve(stmt.groupBy.size());
      for (const auto& expr : stmt.groupBy) {
        try {
          key.push_back(sql::evaluate(*expr, accessor));
        } catch (const sql::EvalError& e) {
          throw SqlError(ErrorCode::NoSuchColumn, e.what());
        }
      }
      groups[std::move(key)].push_back(row);
    }
  }

  // Project each group, capturing ORDER BY keys in the same pass.
  struct OutRow {
    std::vector<Value> cells;
    std::vector<Value> orderKeys;
  };
  std::vector<OutRow> outRows;
  outRows.reserve(groups.size());
  for (const auto& [key, groupRows] : groups) {
    OutRow out;
    out.cells.reserve(stmt.items.size());
    for (const auto& item : stmt.items) {
      out.cells.push_back(
          evaluateInGroup(*item.expr, groupRows, accessor, nullRow));
    }
    for (const auto& orderKey : stmt.orderBy) {
      out.orderKeys.push_back(
          evaluateInGroup(*orderKey.expr, groupRows, accessor, nullRow));
    }
    outRows.push_back(std::move(out));
  }

  if (!stmt.orderBy.empty()) {
    std::stable_sort(outRows.begin(), outRows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (std::size_t i = 0; i < stmt.orderBy.size(); ++i) {
                         const auto c = a.orderKeys[i].compare(b.orderKeys[i]);
                         if (c == std::strong_ordering::equal) continue;
                         const bool less = c == std::strong_ordering::less;
                         return stmt.orderBy[i].descending ? !less : less;
                       }
                       return false;
                     });
  }

  std::size_t count = outRows.size();
  if (stmt.limit && *stmt.limit >= 0 &&
      static_cast<std::size_t>(*stmt.limit) < count) {
    count = static_cast<std::size_t>(*stmt.limit);
  }
  std::vector<std::vector<Value>> finalRows;
  finalRows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    finalRows.push_back(std::move(outRows[i].cells));
  }
  return std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(outColumns)), std::move(finalRows));
}

}  // namespace

namespace {

/// GROUP BY, or any aggregate in projection/ordering (the dispatch
/// test executeSelect and the vec engine must agree on).
bool isAggregateSelect(const sql::SelectStatement& stmt) {
  if (!stmt.groupBy.empty()) return true;
  for (const auto& item : stmt.items) {
    if (!item.isStar() && item.expr->containsAggregate()) return true;
  }
  for (const auto& key : stmt.orderBy) {
    if (key.expr->containsAggregate()) return true;
  }
  return false;
}

/// Output metadata for a statement the vec engine executed. Mirrors
/// the projection loops of the interpreter paths below; the
/// differential battery compares metadata as well as cells, so the
/// mirrors cannot drift silently.
std::vector<ColumnInfo> selectOutColumns(const sql::SelectStatement& stmt,
                                         const std::vector<ColumnInfo>& columns,
                                         bool aggregate) {
  std::vector<ColumnInfo> out;
  for (const auto& item : stmt.items) {
    if (item.isStar()) {
      // Unreachable for aggregate results: the vec engine falls back
      // on star + aggregate (always an error).
      for (const auto& c : columns) out.push_back(c);
      continue;
    }
    ColumnInfo c = projectColumn(item, columns);
    if (aggregate && item.alias.empty() &&
        item.expr->kind == sql::ExprKind::Call) {
      c.name = item.expr->toSql();
      c.type = item.expr->name == "count" ? util::ValueType::Int
                                          : util::ValueType::Real;
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::unique_ptr<dbc::VectorResultSet> executeSelect(
    const sql::SelectStatement& stmt, const std::vector<ColumnInfo>& columns,
    const std::vector<std::vector<Value>>& rows) {
  if (sql::vec::engineEnabled()) {
    std::vector<std::string_view> names;
    names.reserve(columns.size());
    for (const auto& c : columns) names.emplace_back(c.name);
    if (auto result = sql::vec::trySelect(stmt, names, rows)) {
      return std::make_unique<dbc::VectorResultSet>(
          dbc::ResultSetMetaData(
              selectOutColumns(stmt, columns, isAggregateSelect(stmt))),
          std::move(result->rows));
    }
  }
  return executeSelectInterpreted(stmt, columns, rows);
}

std::unique_ptr<dbc::VectorResultSet> executeSelectInterpreted(
    const sql::SelectStatement& stmt, const std::vector<ColumnInfo>& columns,
    const std::vector<std::vector<Value>>& rows) {
  // Aggregation path: GROUP BY, or any aggregate in projection/ordering.
  bool aggregate = !stmt.groupBy.empty();
  for (const auto& item : stmt.items) {
    if (!item.isStar() && item.expr->containsAggregate()) aggregate = true;
  }
  for (const auto& key : stmt.orderBy) {
    if (key.expr->containsAggregate()) aggregate = true;
  }
  if (aggregate) return executeAggregateSelect(stmt, columns, rows);

  // Resolve the projection once.
  std::vector<ColumnInfo> outColumns;
  bool star = false;
  for (const auto& item : stmt.items) {
    if (item.isStar()) {
      star = true;
      for (const auto& c : columns) outColumns.push_back(c);
    } else {
      outColumns.push_back(projectColumn(item, columns));
      // Validate the column references early for a clear error.
      if (item.expr->kind == sql::ExprKind::Column) {
        bool known = false;
        for (const auto& c : columns) {
          if (util::iequals(c.name, item.expr->name)) known = true;
        }
        if (!known) {
          throw SqlError(ErrorCode::NoSuchColumn,
                         "no column '" + item.expr->name + "'");
        }
      }
    }
  }

  TableRowAccessor accessor(columns, stmt.table, stmt.tableAlias);

  // Filter.
  std::vector<const std::vector<Value>*> selected;
  for (const auto& row : rows) {
    accessor.setRow(&row);
    bool keep = true;
    if (stmt.where) {
      try {
        keep = sql::evaluatePredicate(*stmt.where, accessor);
      } catch (const sql::EvalError& e) {
        throw SqlError(ErrorCode::NoSuchColumn, e.what());
      }
    }
    if (keep) selected.push_back(&row);
  }

  // Order.
  if (!stmt.orderBy.empty()) {
    std::stable_sort(
        selected.begin(), selected.end(),
        [&](const std::vector<Value>* a, const std::vector<Value>* b) {
          for (const auto& key : stmt.orderBy) {
            accessor.setRow(a);
            Value va = sql::evaluate(*key.expr, accessor);
            accessor.setRow(b);
            Value vb = sql::evaluate(*key.expr, accessor);
            auto c = va.compare(vb);
            if (c == std::strong_ordering::equal) continue;
            const bool less = c == std::strong_ordering::less;
            return key.descending ? !less : less;
          }
          return false;
        });
  }

  // Limit.
  std::size_t count = selected.size();
  if (stmt.limit && *stmt.limit >= 0 &&
      static_cast<std::size_t>(*stmt.limit) < count) {
    count = static_cast<std::size_t>(*stmt.limit);
  }

  // Project.
  std::vector<std::vector<Value>> outRows;
  outRows.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    accessor.setRow(selected[r]);
    std::vector<Value> outRow;
    outRow.reserve(outColumns.size());
    if (star && stmt.items.size() == 1) {
      outRow = *selected[r];
    } else {
      for (const auto& item : stmt.items) {
        if (item.isStar()) {
          for (const auto& v : *selected[r]) outRow.push_back(v);
        } else {
          try {
            outRow.push_back(sql::evaluate(*item.expr, accessor));
          } catch (const sql::EvalError& e) {
            throw SqlError(ErrorCode::NoSuchColumn, e.what());
          }
        }
      }
    }
    outRows.push_back(std::move(outRow));
  }

  return std::make_unique<dbc::VectorResultSet>(
      dbc::ResultSetMetaData(std::move(outColumns)), std::move(outRows));
}

void Database::createTable(const std::string& name,
                           std::vector<ColumnInfo> columns) {
  std::unique_lock lock(mu_);
  for (auto& t : tables_) {
    if (util::iequals(t->name(), name)) {
      t = std::make_unique<Table>(name, std::move(columns));
      return;
    }
  }
  tables_.push_back(std::make_unique<Table>(name, std::move(columns)));
}

bool Database::isTimeSeries(const std::string& name) const {
  return tsdb_ != nullptr && tsdb_->hasTable(name);
}

void Database::createTimeSeries(const std::string& name,
                                std::vector<ColumnInfo> columns,
                                const std::string& timeColumn) {
  if (tsdb_ != nullptr) {
    tsdb_->createTable(name, std::move(columns), timeColumn);
    return;
  }
  createTable(name, std::move(columns));
}

bool Database::hasTable(const std::string& name) const {
  if (isTimeSeries(name)) return true;
  std::shared_lock lock(mu_);
  return findTable(name) != nullptr;
}

std::vector<std::string> Database::tableNames() const {
  std::vector<std::string> names;
  {
    std::shared_lock lock(mu_);
    names.reserve(tables_.size());
    for (const auto& t : tables_) names.push_back(t->name());
  }
  if (tsdb_ != nullptr) {
    for (auto& name : tsdb_->tableNames()) names.push_back(std::move(name));
  }
  return names;
}

Table* Database::findTable(const std::string& name) {
  for (auto& t : tables_) {
    if (util::iequals(t->name(), name)) return t.get();
  }
  return nullptr;
}

const Table* Database::findTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (util::iequals(t->name(), name)) return t.get();
  }
  return nullptr;
}

std::unique_ptr<dbc::VectorResultSet> Database::query(
    const std::string& sqlText) const {
  return query(sql::parseSelect(sqlText));
}

std::unique_ptr<dbc::VectorResultSet> Database::query(
    const sql::SelectStatement& stmt) const {
  if (isTimeSeries(stmt.table)) return tsdb_->query(stmt);
  std::shared_lock lock(mu_);
  const Table* t = findTable(stmt.table);
  if (t == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable, "no table '" + stmt.table + "'");
  }
  return executeSelect(stmt, t->columns(), t->rows());
}

std::size_t Database::execute(const std::string& sqlText) {
  sql::Statement stmt = sql::parse(sqlText);
  if (stmt.kind != sql::StatementKind::Insert) {
    throw SqlError(ErrorCode::Syntax, "execute() expects INSERT");
  }
  return execute(stmt.insert);
}

std::size_t Database::execute(const sql::InsertStatement& stmt) {
  if (isTimeSeries(stmt.table)) {
    for (const auto& row : stmt.rows) {
      if (stmt.columns.empty()) {
        tsdb_->append(stmt.table, row);
      } else {
        tsdb_->appendNamed(stmt.table, stmt.columns, row);
      }
    }
    return stmt.rows.size();
  }
  std::unique_lock lock(mu_);
  Table* t = findTable(stmt.table);
  if (t == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable, "no table '" + stmt.table + "'");
  }
  for (const auto& row : stmt.rows) {
    if (stmt.columns.empty()) {
      t->insert(row);
    } else {
      t->insertNamed(stmt.columns, row);
    }
  }
  return stmt.rows.size();
}

void Database::insertRow(const std::string& table, std::vector<Value> row) {
  if (isTimeSeries(table)) {
    tsdb_->append(table, std::move(row));
    return;
  }
  std::unique_lock lock(mu_);
  Table* t = findTable(table);
  if (t == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable, "no table '" + table + "'");
  }
  t->insert(std::move(row));
}

std::size_t Database::rowCount(const std::string& table) const {
  if (isTimeSeries(table)) return tsdb_->rowCount(table);
  std::shared_lock lock(mu_);
  const Table* t = findTable(table);
  return t == nullptr ? 0 : t->rowCount();
}

std::size_t Database::pruneOlderThan(const std::string& table,
                                     const std::string& timeColumn,
                                     std::int64_t cutoff) {
  if (isTimeSeries(table)) return tsdb_->pruneOlderThan(table, cutoff);
  std::unique_lock lock(mu_);
  Table* t = findTable(table);
  if (t == nullptr) return 0;
  return t->pruneOlderThan(timeColumn, cutoff);
}

}  // namespace gridrm::store
