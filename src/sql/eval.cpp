#include "gridrm/sql/eval.hpp"

#include <cmath>
#include <limits>

namespace gridrm::sql {

using util::Value;
using util::ValueType;

Value compareValues(BinOp op, const Value& l, const Value& r) {
  if (l.isNull() || r.isNull()) return Value::null();
  const auto c = l.compare(r);
  switch (op) {
    case BinOp::Eq:
      return Value(c == std::strong_ordering::equal);
    case BinOp::Ne:
      return Value(c != std::strong_ordering::equal);
    case BinOp::Lt:
      return Value(c == std::strong_ordering::less);
    case BinOp::Le:
      return Value(c != std::strong_ordering::greater);
    case BinOp::Gt:
      return Value(c == std::strong_ordering::greater);
    case BinOp::Ge:
      return Value(c != std::strong_ordering::less);
    default:
      throw EvalError("compareValues: not a comparison");
  }
}

Value arithmeticValues(BinOp op, const Value& l, const Value& r) {
  if (l.isNull() || r.isNull()) return Value::null();
  if (op == BinOp::Add && l.type() == ValueType::String &&
      r.type() == ValueType::String) {
    return Value(l.asString() + r.asString());  // string concatenation
  }
  if (!l.isNumeric() || !r.isNumeric()) {
    throw EvalError("arithmetic on non-numeric operands");
  }
  const bool bothInt =
      l.type() == ValueType::Int && r.type() == ValueType::Int;
  if (bothInt) {
    // Results that fit int64 stay Int; an overflowing Add/Sub/Mul (and
    // INT64_MIN / -1) promotes to Real, computed in double below --
    // the same widening a mixed Int/Real expression gets. The previous
    // code computed `a + b` etc. directly, which is UB on overflow.
    const std::int64_t a = l.asInt();
    const std::int64_t b = r.asInt();
    std::int64_t out = 0;
    switch (op) {
      case BinOp::Add:
        if (!__builtin_add_overflow(a, b, &out)) return Value(out);
        break;
      case BinOp::Sub:
        if (!__builtin_sub_overflow(a, b, &out)) return Value(out);
        break;
      case BinOp::Mul:
        if (!__builtin_mul_overflow(a, b, &out)) return Value(out);
        break;
      case BinOp::Div:
        if (b == 0) return Value::null();  // SQL: division by zero -> NULL here
        if (a == std::numeric_limits<std::int64_t>::min() && b == -1) break;
        return Value(a / b);
      case BinOp::Mod:
        if (b == 0) return Value::null();
        // x % -1 is 0, but INT64_MIN % -1 traps on hardware; answer
        // directly instead of promoting (the result is exact).
        if (b == -1) return Value(std::int64_t{0});
        return Value(a % b);
      default:
        break;
    }
  }
  const double a = l.toReal();
  const double b = r.toReal();
  switch (op) {
    case BinOp::Add:
      return Value(a + b);
    case BinOp::Sub:
      return Value(a - b);
    case BinOp::Mul:
      return Value(a * b);
    case BinOp::Div:
      if (b == 0.0) return Value::null();
      return Value(a / b);
    case BinOp::Mod:
      if (b == 0.0) return Value::null();
      return Value(std::fmod(a, b));
    default:
      throw EvalError("arithmeticValues: not arithmetic");
  }
}

Value negateValue(const Value& v) {
  if (v.isNull()) return Value::null();
  if (v.type() == ValueType::Int) {
    const std::int64_t i = v.asInt();
    if (i == std::numeric_limits<std::int64_t>::min()) {
      return Value(-static_cast<double>(i));  // -INT64_MIN overflows Int
    }
    return Value(-i);
  }
  if (v.type() == ValueType::Real) return Value(-v.asReal());
  throw EvalError("unary '-' on non-numeric operand");
}

bool likeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer match with backtracking on the last '%'.
  std::size_t t = 0;
  std::size_t p = 0;
  std::size_t starP = std::string::npos;
  std::size_t starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      starP = p++;
      starT = t;
    } else if (starP != std::string::npos) {
      p = starP + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

util::Value evaluate(const Expr& expr, const RowAccessor& row) {
  switch (expr.kind) {
    case ExprKind::Literal:
      return expr.literal;
    case ExprKind::Column: {
      auto v = row.column(expr.table, expr.name);
      if (!v) throw EvalError("unknown column '" + expr.name + "'");
      return *v;
    }
    case ExprKind::Unary: {
      Value v = evaluate(*expr.children[0], row);
      if (v.isNull()) return Value::null();
      if (expr.uop == UnOp::Not) return Value(!v.toBool());
      return negateValue(v);
    }
    case ExprKind::Binary: {
      switch (expr.bop) {
        case BinOp::And: {
          // SQL three-valued AND: false dominates NULL.
          Value l = evaluate(*expr.children[0], row);
          if (!l.isNull() && !l.toBool()) return Value(false);
          Value r = evaluate(*expr.children[1], row);
          if (!r.isNull() && !r.toBool()) return Value(false);
          if (l.isNull() || r.isNull()) return Value::null();
          return Value(true);
        }
        case BinOp::Or: {
          Value l = evaluate(*expr.children[0], row);
          if (!l.isNull() && l.toBool()) return Value(true);
          Value r = evaluate(*expr.children[1], row);
          if (!r.isNull() && r.toBool()) return Value(true);
          if (l.isNull() || r.isNull()) return Value::null();
          return Value(false);
        }
        case BinOp::Like: {
          Value l = evaluate(*expr.children[0], row);
          Value r = evaluate(*expr.children[1], row);
          if (l.isNull() || r.isNull()) return Value::null();
          return Value(likeMatch(l.toString(), r.toString()));
        }
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
          return compareValues(expr.bop, evaluate(*expr.children[0], row),
                               evaluate(*expr.children[1], row));
        default:
          return arithmeticValues(expr.bop, evaluate(*expr.children[0], row),
                                  evaluate(*expr.children[1], row));
      }
    }
    case ExprKind::InList: {
      Value needle = evaluate(*expr.children[0], row);
      if (needle.isNull()) return Value::null();
      bool sawNull = false;
      for (std::size_t i = 1; i < expr.children.size(); ++i) {
        Value candidate = evaluate(*expr.children[i], row);
        if (candidate.isNull()) {
          sawNull = true;
          continue;
        }
        if (needle == candidate) return Value(!expr.negated);
      }
      if (sawNull) return Value::null();
      return Value(expr.negated);
    }
    case ExprKind::IsNull: {
      Value v = evaluate(*expr.children[0], row);
      return Value(expr.negated ? !v.isNull() : v.isNull());
    }
    case ExprKind::Between: {
      Value v = evaluate(*expr.children[0], row);
      Value lo = evaluate(*expr.children[1], row);
      Value hi = evaluate(*expr.children[2], row);
      if (v.isNull() || lo.isNull() || hi.isNull()) return Value::null();
      const bool inside = v.compare(lo) != std::strong_ordering::less &&
                          v.compare(hi) != std::strong_ordering::greater;
      return Value(expr.negated ? !inside : inside);
    }
    case ExprKind::Call:
      // Aggregates are computed by the aggregation executor
      // (store::executeSelect), which substitutes their results before
      // row-level evaluation. Reaching one here means an aggregate was
      // used where a scalar is required (e.g. in WHERE).
      throw EvalError("aggregate function '" + expr.name +
                      "' is not allowed in this context");
  }
  throw EvalError("unhandled expression kind");
}

bool evaluatePredicate(const Expr& expr, const RowAccessor& row) {
  Value v = evaluate(expr, row);
  return !v.isNull() && v.toBool();
}

}  // namespace gridrm::sql
