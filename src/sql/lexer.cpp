#include "gridrm/sql/lexer.hpp"

#include <cctype>

namespace gridrm::sql {

namespace {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto push = [&](TokenType type, std::string tok, std::size_t pos) {
    out.push_back(Token{type, std::move(tok), pos});
  };

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (isIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && isIdentBody(text[j])) ++j;
      push(TokenType::Identifier, text.substr(i, j - i), start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i;
      bool isReal = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      if (j < n && text[j] == '.') {
        isReal = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
      }
      if (j < n && (text[j] == 'e' || text[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (text[k] == '+' || text[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(text[k]))) {
          isReal = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) ++j;
        }
      }
      push(isReal ? TokenType::Real : TokenType::Integer, text.substr(i, j - i),
           start);
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string value;
      std::size_t j = i + 1;
      while (true) {
        if (j >= n) throw ParseError("unterminated string literal", start);
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {  // SQL doubled-quote escape
            value.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        value.push_back(text[j]);
        ++j;
      }
      push(TokenType::String, std::move(value), start);
      i = j + 1;
      continue;
    }
    switch (c) {
      case ',':
        push(TokenType::Comma, ",", start);
        ++i;
        continue;
      case '.':
        push(TokenType::Dot, ".", start);
        ++i;
        continue;
      case '*':
        push(TokenType::Star, "*", start);
        ++i;
        continue;
      case '(':
        push(TokenType::LParen, "(", start);
        ++i;
        continue;
      case ')':
        push(TokenType::RParen, ")", start);
        ++i;
        continue;
      case '=':
        push(TokenType::Eq, "=", start);
        ++i;
        continue;
      case '+':
        push(TokenType::Plus, "+", start);
        ++i;
        continue;
      case '-':
        push(TokenType::Minus, "-", start);
        ++i;
        continue;
      case '/':
        push(TokenType::Slash, "/", start);
        ++i;
        continue;
      case '%':
        push(TokenType::Percent, "%", start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenType::Ne, "!=", start);
          i += 2;
          continue;
        }
        throw ParseError("unexpected '!'", start);
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenType::Le, "<=", start);
          i += 2;
        } else if (i + 1 < n && text[i + 1] == '>') {
          push(TokenType::Ne, "<>", start);
          i += 2;
        } else {
          push(TokenType::Lt, "<", start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenType::Ge, ">=", start);
          i += 2;
        } else {
          push(TokenType::Gt, ">", start);
          ++i;
        }
        continue;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", start);
    }
  }
  push(TokenType::End, "", n);
  return out;
}

}  // namespace gridrm::sql
