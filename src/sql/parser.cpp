#include "gridrm/sql/parser.hpp"

#include <atomic>

#include "gridrm/util/strings.hpp"

namespace gridrm::sql {

namespace {

using util::iequals;

class Parser {
 public:
  explicit Parser(const std::string& text) : tokens_(lex(text)) {}

  Statement parseStatement() {
    Statement stmt;
    if (peekKeyword("SELECT")) {
      stmt.kind = StatementKind::Select;
      stmt.select = parseSelect();
    } else if (peekKeyword("INSERT")) {
      stmt.kind = StatementKind::Insert;
      stmt.insert = parseInsert();
    } else {
      throw ParseError("expected SELECT or INSERT", cur().pos);
    }
    expectEnd();
    return stmt;
  }

 private:
  const Token& cur() const { return tokens_[i_]; }
  const Token& advance() { return tokens_[i_++]; }

  bool peek(TokenType t) const { return cur().type == t; }
  bool accept(TokenType t) {
    if (!peek(t)) return false;
    ++i_;
    return true;
  }
  void expect(TokenType t, const char* what) {
    if (!accept(t)) {
      throw ParseError(std::string("expected ") + what, cur().pos);
    }
  }

  bool peekKeyword(std::string_view kw) const {
    return cur().type == TokenType::Identifier && iequals(cur().text, kw);
  }
  bool acceptKeyword(std::string_view kw) {
    if (!peekKeyword(kw)) return false;
    ++i_;
    return true;
  }
  void expectKeyword(const char* kw) {
    if (!acceptKeyword(kw)) {
      throw ParseError(std::string("expected ") + kw, cur().pos);
    }
  }
  void expectEnd() {
    if (!peek(TokenType::End)) {
      throw ParseError("unexpected trailing input '" + cur().text + "'",
                       cur().pos);
    }
  }

  static bool isReservedKeyword(const std::string& word) {
    static const char* kReserved[] = {
        "SELECT", "FROM", "WHERE",   "AND",  "OR",     "NOT",   "ORDER",
        "BY",     "ASC",  "DESC",    "LIMIT", "AS",    "LIKE",  "IN",
        "IS",     "NULL", "BETWEEN", "INSERT", "INTO", "VALUES", "GROUP",
        "HAVING"};
    for (const char* kw : kReserved) {
      if (iequals(word, kw)) return true;
    }
    return false;
  }

  std::string expectIdentifier(const char* what) {
    if (!peek(TokenType::Identifier) || isReservedKeyword(cur().text)) {
      throw ParseError(std::string("expected ") + what, cur().pos);
    }
    return advance().text;
  }

  SelectStatement parseSelect() {
    expectKeyword("SELECT");
    SelectStatement sel;
    do {
      SelectItem item;
      if (accept(TokenType::Star)) {
        // '*' select item (expr stays null).
      } else {
        item.expr = parseExpr();
        if (acceptKeyword("AS")) {
          item.alias = expectIdentifier("alias after AS");
        }
      }
      sel.items.push_back(std::move(item));
    } while (accept(TokenType::Comma));

    expectKeyword("FROM");
    sel.table = expectIdentifier("table name");
    if (acceptKeyword("AS")) {
      sel.tableAlias = expectIdentifier("table alias");
    } else if (peek(TokenType::Identifier) && !isReservedKeyword(cur().text)) {
      sel.tableAlias = advance().text;
    }

    if (acceptKeyword("WHERE")) sel.where = parseExpr();

    if (acceptKeyword("GROUP")) {
      expectKeyword("BY");
      do {
        sel.groupBy.push_back(parseExpr());
      } while (accept(TokenType::Comma));
    }

    if (acceptKeyword("ORDER")) {
      expectKeyword("BY");
      do {
        OrderKey key;
        key.expr = parseExpr();
        if (acceptKeyword("DESC")) {
          key.descending = true;
        } else {
          acceptKeyword("ASC");
        }
        sel.orderBy.push_back(std::move(key));
      } while (accept(TokenType::Comma));
    }

    if (acceptKeyword("LIMIT")) {
      if (!peek(TokenType::Integer)) {
        throw ParseError("expected integer after LIMIT", cur().pos);
      }
      sel.limit = util::Value::parse(advance().text).toInt();
    }
    return sel;
  }

  InsertStatement parseInsert() {
    expectKeyword("INSERT");
    expectKeyword("INTO");
    InsertStatement ins;
    ins.table = expectIdentifier("table name");
    if (accept(TokenType::LParen)) {
      do {
        ins.columns.push_back(expectIdentifier("column name"));
      } while (accept(TokenType::Comma));
      expect(TokenType::RParen, "')'");
    }
    expectKeyword("VALUES");
    do {
      expect(TokenType::LParen, "'('");
      std::vector<util::Value> row;
      do {
        row.push_back(parseLiteralValue());
      } while (accept(TokenType::Comma));
      expect(TokenType::RParen, "')'");
      if (!ins.columns.empty() && row.size() != ins.columns.size()) {
        throw ParseError("VALUES row arity does not match column list",
                         cur().pos);
      }
      ins.rows.push_back(std::move(row));
    } while (accept(TokenType::Comma));
    return ins;
  }

  util::Value parseLiteralValue() {
    bool negative = accept(TokenType::Minus);
    const Token& t = cur();
    util::Value v;
    switch (t.type) {
      case TokenType::Integer:
      case TokenType::Real:
        v = util::Value::parse(t.text);
        if (negative) {
          v = v.type() == util::ValueType::Int ? util::Value(-v.asInt())
                                               : util::Value(-v.asReal());
        }
        advance();
        return v;
      case TokenType::String:
        if (negative) throw ParseError("'-' before string literal", t.pos);
        v = util::Value(t.text);
        advance();
        return v;
      case TokenType::Identifier:
        if (negative) throw ParseError("'-' before keyword literal", t.pos);
        if (acceptKeyword("NULL")) return util::Value::null();
        if (acceptKeyword("TRUE")) return util::Value(true);
        if (acceptKeyword("FALSE")) return util::Value(false);
        [[fallthrough]];
      default:
        throw ParseError("expected literal value", t.pos);
    }
  }

  // Expression precedence (loosest to tightest):
  //   OR < AND < NOT < comparison/LIKE/IN/IS/BETWEEN < +- < */% < unary
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (acceptKeyword("OR")) {
      lhs = Expr::makeBinary(BinOp::Or, std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseNot();
    while (acceptKeyword("AND")) {
      lhs = Expr::makeBinary(BinOp::And, std::move(lhs), parseNot());
    }
    return lhs;
  }

  ExprPtr parseNot() {
    if (acceptKeyword("NOT")) {
      return Expr::makeUnary(UnOp::Not, parseNot());
    }
    return parseComparison();
  }

  ExprPtr parseComparison() {
    ExprPtr lhs = parseAdditive();
    // Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE
    bool negated = false;
    if (peekKeyword("NOT")) {
      // Look ahead: NOT IN / NOT BETWEEN / NOT LIKE.
      const Token& next = tokens_[i_ + 1];
      if (next.type == TokenType::Identifier &&
          (iequals(next.text, "IN") || iequals(next.text, "BETWEEN") ||
           iequals(next.text, "LIKE"))) {
        ++i_;
        negated = true;
      }
    }
    if (acceptKeyword("IS")) {
      bool neg = acceptKeyword("NOT");
      expectKeyword("NULL");
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::IsNull;
      e->negated = neg;
      e->children.push_back(std::move(lhs));
      return e;
    }
    if (acceptKeyword("IN")) {
      expect(TokenType::LParen, "'('");
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::InList;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      do {
        e->children.push_back(parseAdditive());
      } while (accept(TokenType::Comma));
      expect(TokenType::RParen, "')'");
      return e;
    }
    if (acceptKeyword("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Between;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parseAdditive());
      expectKeyword("AND");
      e->children.push_back(parseAdditive());
      return e;
    }
    if (acceptKeyword("LIKE")) {
      ExprPtr like =
          Expr::makeBinary(BinOp::Like, std::move(lhs), parseAdditive());
      if (negated) return Expr::makeUnary(UnOp::Not, std::move(like));
      return like;
    }
    BinOp op;
    if (accept(TokenType::Eq)) {
      op = BinOp::Eq;
    } else if (accept(TokenType::Ne)) {
      op = BinOp::Ne;
    } else if (accept(TokenType::Lt)) {
      op = BinOp::Lt;
    } else if (accept(TokenType::Le)) {
      op = BinOp::Le;
    } else if (accept(TokenType::Gt)) {
      op = BinOp::Gt;
    } else if (accept(TokenType::Ge)) {
      op = BinOp::Ge;
    } else {
      return lhs;
    }
    return Expr::makeBinary(op, std::move(lhs), parseAdditive());
  }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    while (true) {
      if (accept(TokenType::Plus)) {
        lhs = Expr::makeBinary(BinOp::Add, std::move(lhs), parseMultiplicative());
      } else if (accept(TokenType::Minus)) {
        lhs = Expr::makeBinary(BinOp::Sub, std::move(lhs), parseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    while (true) {
      if (accept(TokenType::Star)) {
        lhs = Expr::makeBinary(BinOp::Mul, std::move(lhs), parseUnary());
      } else if (accept(TokenType::Slash)) {
        lhs = Expr::makeBinary(BinOp::Div, std::move(lhs), parseUnary());
      } else if (accept(TokenType::Percent)) {
        lhs = Expr::makeBinary(BinOp::Mod, std::move(lhs), parseUnary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parseUnary() {
    if (accept(TokenType::Minus)) {
      return Expr::makeUnary(UnOp::Neg, parseUnary());
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token& t = cur();
    switch (t.type) {
      case TokenType::Integer:
      case TokenType::Real: {
        util::Value v = util::Value::parse(t.text);
        advance();
        return Expr::makeLiteral(std::move(v));
      }
      case TokenType::String: {
        util::Value v(t.text);
        advance();
        return Expr::makeLiteral(std::move(v));
      }
      case TokenType::LParen: {
        advance();
        ExprPtr inner = parseExpr();
        expect(TokenType::RParen, "')'");
        return inner;
      }
      case TokenType::Identifier: {
        if (acceptKeyword("NULL")) return Expr::makeLiteral(util::Value::null());
        if (acceptKeyword("TRUE")) return Expr::makeLiteral(util::Value(true));
        if (acceptKeyword("FALSE")) return Expr::makeLiteral(util::Value(false));
        if (isReservedKeyword(t.text)) {
          throw ParseError("unexpected keyword '" + t.text + "'", t.pos);
        }
        std::string first = advance().text;
        if (accept(TokenType::LParen)) {
          // Aggregate call: COUNT(*) / COUNT(x) / SUM/AVG/MIN/MAX(x).
          if (accept(TokenType::Star)) {
            expect(TokenType::RParen, "')'");
            return Expr::makeCall(util::toLower(first), {}, /*starArg=*/true);
          }
          std::vector<ExprPtr> args;
          if (!peek(TokenType::RParen)) {
            do {
              args.push_back(parseExpr());
            } while (accept(TokenType::Comma));
          }
          expect(TokenType::RParen, "')'");
          return Expr::makeCall(util::toLower(first), std::move(args));
        }
        if (accept(TokenType::Dot)) {
          std::string second = expectIdentifier("column after '.'");
          return Expr::makeColumn(std::move(first), std::move(second));
        }
        return Expr::makeColumn("", std::move(first));
      }
      default:
        throw ParseError("unexpected token '" + t.text + "'", t.pos);
    }
  }

  std::vector<Token> tokens_;
  std::size_t i_ = 0;
};

}  // namespace

Statement parse(const std::string& text) {
  return Parser(text).parseStatement();
}

namespace {
std::atomic<std::uint64_t> gParseSelectCount{0};
}  // namespace

SelectStatement parseSelect(const std::string& text) {
  gParseSelectCount.fetch_add(1, std::memory_order_relaxed);
  Statement stmt = parse(text);
  if (stmt.kind != StatementKind::Select) {
    throw ParseError("expected a SELECT statement", 0);
  }
  return std::move(stmt.select);
}

std::uint64_t parseSelectCount() noexcept {
  return gParseSelectCount.load(std::memory_order_relaxed);
}

}  // namespace gridrm::sql
