#include "gridrm/sql/vec/column_batch.hpp"

#include <string_view>
#include <unordered_map>

namespace gridrm::sql::vec {

using util::Value;
using util::ValueType;

bool VecColumn::isNullAt(std::size_t i) const noexcept {
  switch (kind) {
    case ColKind::Numeric:
    case ColKind::Bool:
      return tag[i] == kNullTag;
    case ColKind::Str:
      return codes[i] < 0;
    case ColKind::Generic:
      return values[i].isNull();
  }
  return true;
}

Value VecColumn::valueAt(std::size_t i) const {
  switch (kind) {
    case ColKind::Numeric:
      if (tag[i] == kIntTag) return Value(ints[i]);
      if (tag[i] == kRealTag) return Value(reals[i]);
      return Value::null();
    case ColKind::Bool:
      return tag[i] == kNullTag ? Value::null() : Value(bools[i] != 0);
    case ColKind::Str:
      return codes[i] < 0 ? Value::null()
                          : Value((*dict)[static_cast<std::size_t>(codes[i])]);
    case ColKind::Generic:
      return values[i];
  }
  return Value::null();
}

void VecColumn::appendNull() {
  switch (kind) {
    case ColKind::Numeric:
      tag.push_back(kNullTag);
      ints.push_back(0);
      reals.push_back(0.0);
      break;
    case ColKind::Bool:
      tag.push_back(kNullTag);
      bools.push_back(0);
      break;
    case ColKind::Str:
      codes.push_back(-1);
      break;
    case ColKind::Generic:
      values.emplace_back();
      break;
  }
  ++size;
}

void VecColumn::appendInt(std::int64_t v) {
  tag.push_back(kIntTag);
  ints.push_back(v);
  reals.push_back(0.0);
  ++size;
}

void VecColumn::appendReal(double v) {
  tag.push_back(kRealTag);
  ints.push_back(0);
  reals.push_back(v);
  ++size;
}

void VecColumn::appendBool(bool v) {
  tag.push_back(1);
  bools.push_back(v ? 1 : 0);
  ++size;
}

void VecColumn::appendCode(std::int32_t code) {
  codes.push_back(code);
  ++size;
}

void VecColumn::appendValue(Value v) {
  values.push_back(std::move(v));
  ++size;
}

void VecColumn::demoteToGeneric() {
  std::vector<Value> cells;
  cells.reserve(size);
  for (std::size_t i = 0; i < size; ++i) cells.push_back(valueAt(i));
  *this = VecColumn{};
  kind = ColKind::Generic;
  values = std::move(cells);
  size = values.size();
}

namespace {

void appendCell(VecColumn& out, const Value& v,
                std::unordered_map<std::string_view, std::int32_t>* dictIndex) {
  if (v.isNull()) {
    out.appendNull();
    return;
  }
  switch (out.kind) {
    case ColKind::Numeric:
      if (v.type() == ValueType::Int) {
        out.appendInt(v.asInt());
        return;
      }
      if (v.type() == ValueType::Real) {
        out.appendReal(v.asReal());
        return;
      }
      break;
    case ColKind::Bool:
      if (v.type() == ValueType::Bool) {
        out.appendBool(v.asBool());
        return;
      }
      break;
    case ColKind::Str:
      if (v.type() == ValueType::String) {
        const std::string& s = v.asString();
        auto [it, fresh] = dictIndex->try_emplace(
            std::string_view(s),
            static_cast<std::int32_t>(out.ownedDict->size()));
        if (fresh) out.ownedDict->push_back(s);
        out.appendCode(it->second);
        return;
      }
      break;
    case ColKind::Generic:
      out.appendValue(v);
      return;
  }
  // The cell does not fit the column's current family: mixed column.
  out.demoteToGeneric();
  out.appendValue(v);
}

ColKind kindFor(const Value& v) noexcept {
  switch (v.type()) {
    case ValueType::Int:
    case ValueType::Real:
      return ColKind::Numeric;
    case ValueType::Bool:
      return ColKind::Bool;
    case ValueType::String:
      return ColKind::Str;
    case ValueType::Null:
      break;
  }
  return ColKind::Numeric;  // all-NULL prefix: any family holds NULLs
}

}  // namespace

void ColumnBuilder::build(const std::vector<std::vector<Value>>& rows,
                          const std::uint32_t* ids, std::size_t begin,
                          std::size_t end, std::size_t c) {
  VecColumn& out = col;
  const std::size_t n = end - begin;
  out.tag.clear();
  out.ints.clear();
  out.reals.clear();
  out.bools.clear();
  out.codes.clear();
  out.values.clear();
  out.dict = nullptr;
  out.size = 0;
  // Decide the family from the first non-NULL cell, then reserve the
  // whole slice before appending (a NULL-only slice stays Numeric:
  // any family holds NULLs).
  out.kind = ColKind::Numeric;
  for (std::size_t pos = begin; pos < end; ++pos) {
    const Value& v = rows[ids != nullptr ? ids[pos] : pos][c];
    if (!v.isNull()) {
      out.kind = kindFor(v);
      break;
    }
  }
  // Family-specialised fill loops: write by index into resized
  // vectors (one size-field update per batch instead of three per
  // cell) and test only the types the family can hold. A cell outside
  // the family drops to the slow appendCell/demotion tail below.
  std::size_t pos = begin;
  switch (out.kind) {
    case ColKind::Numeric: {
      out.tag.resize(n);
      out.ints.resize(n);
      out.reals.resize(n);
      for (; pos < end; ++pos) {
        const Value& v = rows[ids != nullptr ? ids[pos] : pos][c];
        const std::size_t i = pos - begin;
        if (v.type() == ValueType::Int) {
          out.tag[i] = kIntTag;
          out.ints[i] = v.asInt();
        } else if (v.type() == ValueType::Real) {
          out.tag[i] = kRealTag;
          out.reals[i] = v.asReal();
        } else if (v.isNull()) {
          out.tag[i] = kNullTag;
        } else {
          break;  // mixed column
        }
      }
      out.size = pos - begin;
      if (pos < end) {
        out.tag.resize(out.size);
        out.ints.resize(out.size);
        out.reals.resize(out.size);
      }
      break;
    }
    case ColKind::Bool: {
      out.tag.resize(n);
      out.bools.resize(n);
      for (; pos < end; ++pos) {
        const Value& v = rows[ids != nullptr ? ids[pos] : pos][c];
        const std::size_t i = pos - begin;
        if (v.type() == ValueType::Bool) {
          out.tag[i] = 1;
          out.bools[i] = v.asBool() ? 1 : 0;
        } else if (v.isNull()) {
          out.tag[i] = kNullTag;
          out.bools[i] = 0;
        } else {
          break;  // mixed column
        }
      }
      out.size = pos - begin;
      if (pos < end) {
        out.tag.resize(out.size);
        out.bools.resize(out.size);
      }
      break;
    }
    case ColKind::Str: {
      out.codes.resize(n);
      if (!out.ownedDict) {
        out.ownedDict = std::make_shared<std::vector<std::string>>();
      }
      out.dict = out.ownedDict.get();
      // Low-cardinality columns repeat the same string in runs (or
      // near-runs): one short equality test beats a hash probe.
      std::string_view lastSeen;
      std::int32_t lastCode = -1;
      for (; pos < end; ++pos) {
        const Value& v = rows[ids != nullptr ? ids[pos] : pos][c];
        const std::size_t i = pos - begin;
        if (v.type() == ValueType::String) {
          const std::string_view s = v.asString();
          if (lastCode >= 0 && s == lastSeen) {
            out.codes[i] = lastCode;
          } else {
            auto [it, fresh] = dictIndex.try_emplace(
                s, static_cast<std::int32_t>(out.ownedDict->size()));
            if (fresh) out.ownedDict->push_back(std::string(s));
            out.codes[i] = it->second;
            lastSeen = it->first;  // key outlives the value it came from
            lastCode = it->second;
          }
        } else if (v.isNull()) {
          out.codes[i] = -1;
        } else {
          break;  // mixed column
        }
      }
      out.size = pos - begin;
      if (pos < end) out.codes.resize(out.size);
      break;
    }
    case ColKind::Generic:
      break;  // kindFor never picks Generic; demotion handles it below
  }
  for (; pos < end; ++pos) {
    const std::size_t row = ids != nullptr ? ids[pos] : pos;
    appendCell(out, rows[row][c],
               out.kind == ColKind::Str ? &dictIndex : nullptr);
    if (out.kind == ColKind::Generic) {
      // Demoted mid-batch (mixed column): finish on the generic path.
      dictIndex.clear();  // demotion dropped ownedDict; codes died with it
      for (std::size_t p = pos + 1; p < end; ++p) {
        const std::size_t r = ids != nullptr ? ids[p] : p;
        out.appendValue(rows[r][c]);
      }
      break;
    }
  }
}

VecColumn buildColumn(const std::vector<std::vector<Value>>& rows,
                      const std::uint32_t* ids, std::size_t begin,
                      std::size_t end, std::size_t col) {
  ColumnBuilder builder;
  builder.build(rows, ids, begin, end, col);
  return std::move(builder.col);
}

VecColumn gatherColumn(const VecColumn& column, const std::uint32_t* positions,
                       std::size_t n) {
  VecColumn out;
  out.kind = column.kind;
  switch (column.kind) {
    case ColKind::Numeric:
      out.tag.reserve(n);
      out.ints.reserve(n);
      out.reals.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = positions[k];
        out.tag.push_back(column.tag[i]);
        out.ints.push_back(column.ints[i]);
        out.reals.push_back(column.reals[i]);
      }
      break;
    case ColKind::Bool:
      out.tag.reserve(n);
      out.bools.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = positions[k];
        out.tag.push_back(column.tag[i]);
        out.bools.push_back(column.bools[i]);
      }
      break;
    case ColKind::Str:
      out.codes.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        out.codes.push_back(column.codes[positions[k]]);
      }
      out.dict = column.dict;
      out.ownedDict = column.ownedDict;
      break;
    case ColKind::Generic:
      out.values.reserve(n);
      for (std::size_t k = 0; k < n; ++k) {
        out.values.push_back(column.values[positions[k]]);
      }
      break;
  }
  out.size = n;
  return out;
}

}  // namespace gridrm::sql::vec
