#include "gridrm/sql/vec/kernels.hpp"

#include <cmath>
#include <limits>

#include "gridrm/sql/eval.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::sql::vec {

using util::Value;
using util::ValueType;

std::ptrdiff_t BatchSchema::resolve(std::string_view qualifier,
                                    std::string_view name) const noexcept {
  if (!qualifier.empty() && !util::iequals(qualifier, table) &&
      !util::iequals(qualifier, alias)) {
    return -1;
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (util::iequals(names[i], name)) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

namespace {

/// Result of value evaluation over a selection: either one constant
/// (literals, folded sub-expressions) or a column aligned to the
/// selection, possibly borrowed straight from the batch.
struct EvalCol {
  bool isConst = false;
  Value constVal;
  const VecColumn* borrowed = nullptr;
  VecColumn owned;
  std::size_t n = 0;

  const VecColumn& col() const noexcept {
    return borrowed != nullptr ? *borrowed : owned;
  }
  bool cellNull(std::size_t i) const {
    return isConst ? constVal.isNull() : col().isNullAt(i);
  }
  Value cellValue(std::size_t i) const {
    return isConst ? constVal : col().valueAt(i);
  }
};

EvalCol evalV(const Expr& expr, const BatchSchema& schema, const Batch& batch,
              const Sel& sel);
Mask evalP(const Expr& expr, const BatchSchema& schema, const Batch& batch,
           const Sel& sel);

// --- small helpers ----------------------------------------------------

/// -1 / 0 / +1 orderings matching util::Value::compare's numeric rule
/// (NaN compares equal to everything, like the double branch there).
inline int cmp3(double l, double r) noexcept {
  if (l < r) return -1;
  if (l > r) return 1;
  return 0;
}
inline int cmp3i(std::int64_t l, std::int64_t r) noexcept {
  if (l < r) return -1;
  if (l > r) return 1;
  return 0;
}

/// Does ordering `c` satisfy comparison `op` (mirror of compareValues)?
inline bool cmpHolds(BinOp op, int c) {
  switch (op) {
    case BinOp::Eq:
      return c == 0;
    case BinOp::Ne:
      return c != 0;
    case BinOp::Lt:
      return c < 0;
    case BinOp::Le:
      return c <= 0;
    case BinOp::Gt:
      return c > 0;
    case BinOp::Ge:
      return c >= 0;
    default:
      throw Fallback{};
  }
}

inline int orderOf(std::strong_ordering c) noexcept {
  if (c == std::strong_ordering::less) return -1;
  if (c == std::strong_ordering::greater) return 1;
  return 0;
}

/// Per-cell access to the Numeric fast path (column or numeric const).
struct NumAcc {
  bool isConst = false;
  std::uint8_t ctag = kNullTag;
  std::int64_t ci = 0;
  double cr = 0.0;
  const VecColumn* c = nullptr;

  explicit NumAcc(const EvalCol& e) {
    isConst = e.isConst;
    if (isConst) {
      const Value& v = e.constVal;
      if (v.type() == ValueType::Int) {
        ctag = kIntTag;
        ci = v.asInt();
      } else if (v.type() == ValueType::Real) {
        ctag = kRealTag;
        cr = v.asReal();
      }
    } else {
      c = &e.col();
    }
  }
  std::uint8_t tag(std::size_t i) const { return isConst ? ctag : c->tag[i]; }
  std::int64_t iv(std::size_t i) const { return isConst ? ci : c->ints[i]; }
  double rv(std::size_t i) const { return isConst ? cr : c->reals[i]; }
  double real(std::size_t i) const {
    return tag(i) == kIntTag ? static_cast<double>(iv(i)) : rv(i);
  }
};

/// Cells are all NULL/Int/Real: eligible for the numeric fast paths.
bool numericish(const EvalCol& e) {
  if (e.isConst) return e.constVal.isNull() || e.constVal.isNumeric();
  return e.col().kind == ColKind::Numeric;
}

bool isStrCol(const EvalCol& e) {
  return !e.isConst && e.col().kind == ColKind::Str;
}
bool isConstNonNull(const EvalCol& e) {
  return e.isConst && !e.constVal.isNull();
}

/// util::Value::toBool(false) without building a Value for a string.
bool strToBool(const std::string& s) noexcept {
  if (s == "true" || s == "TRUE" || s == "1") return true;
  return false;  // "false"/"FALSE"/"0" and unparseable both land here
}

/// Predicate view of a value column: NULL -> kMNull, else toBool(false).
Mask boolish(const EvalCol& e, std::size_t n) {
  Mask m(n, kMFalse);
  if (e.isConst) {
    const std::uint8_t v = e.constVal.isNull()
                               ? kMNull
                               : (e.constVal.toBool(false) ? kMTrue : kMFalse);
    std::fill(m.begin(), m.end(), v);
    return m;
  }
  const VecColumn& c = e.col();
  switch (c.kind) {
    case ColKind::Numeric:
      for (std::size_t i = 0; i < n; ++i) {
        if (c.tag[i] == kNullTag) {
          m[i] = kMNull;
        } else if (c.tag[i] == kIntTag) {
          m[i] = c.ints[i] != 0 ? kMTrue : kMFalse;
        } else {
          m[i] = c.reals[i] != 0.0 ? kMTrue : kMFalse;
        }
      }
      break;
    case ColKind::Bool:
      for (std::size_t i = 0; i < n; ++i) {
        m[i] = c.tag[i] == kNullTag ? kMNull
                                    : (c.bools[i] != 0 ? kMTrue : kMFalse);
      }
      break;
    case ColKind::Str: {
      std::vector<std::uint8_t> perCode(c.dict->size());
      for (std::size_t k = 0; k < perCode.size(); ++k) {
        perCode[k] = strToBool((*c.dict)[k]) ? kMTrue : kMFalse;
      }
      for (std::size_t i = 0; i < n; ++i) {
        m[i] = c.codes[i] < 0 ? kMNull
                              : perCode[static_cast<std::size_t>(c.codes[i])];
      }
      break;
    }
    case ColKind::Generic:
      for (std::size_t i = 0; i < n; ++i) {
        const Value& v = c.values[i];
        m[i] = v.isNull() ? kMNull : (v.toBool(false) ? kMTrue : kMFalse);
      }
      break;
  }
  return m;
}

/// Predicate result materialised as a value column (Bool with NULLs),
/// matching what evaluate() returns for a boolean sub-expression.
VecColumn maskToBool(const Mask& m) {
  VecColumn out;
  out.kind = ColKind::Bool;
  out.tag.reserve(m.size());
  out.bools.reserve(m.size());
  for (const std::uint8_t v : m) {
    if (v == kMNull) {
      out.appendNull();
    } else {
      out.appendBool(v == kMTrue);
    }
  }
  return out;
}

// --- comparison / LIKE / BETWEEN masks --------------------------------

void compareMask(BinOp op, const EvalCol& a, const EvalCol& b, Mask& m) {
  const std::size_t n = m.size();
  if ((a.isConst && a.constVal.isNull()) ||
      (b.isConst && b.constVal.isNull())) {
    std::fill(m.begin(), m.end(), kMNull);  // NULL operand: NULL everywhere
    return;
  }
  if (numericish(a) && numericish(b)) {
    const NumAcc av(a);
    const NumAcc bv(b);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t at = av.tag(i);
      const std::uint8_t bt = bv.tag(i);
      if (at == kNullTag || bt == kNullTag) {
        m[i] = kMNull;
        continue;
      }
      const int c = (at == kIntTag && bt == kIntTag)
                        ? cmp3i(av.iv(i), bv.iv(i))
                        : cmp3(av.real(i), bv.real(i));
      m[i] = cmpHolds(op, c) ? kMTrue : kMFalse;
    }
    return;
  }
  // Dictionary column vs string literal: decide once per dict entry.
  const bool aStrConst = isStrCol(a) && isConstNonNull(b) &&
                         b.constVal.type() == ValueType::String;
  const bool bStrConst = isStrCol(b) && isConstNonNull(a) &&
                         a.constVal.type() == ValueType::String;
  if (aStrConst || bStrConst) {
    const VecColumn& c = aStrConst ? a.col() : b.col();
    const std::string& lit =
        (aStrConst ? b.constVal : a.constVal).asString();
    std::vector<std::uint8_t> perCode(c.dict->size());
    for (std::size_t k = 0; k < perCode.size(); ++k) {
      int ord = cmp3i((*c.dict)[k].compare(lit), 0);
      if (!aStrConst) ord = -ord;  // literal on the left
      perCode[k] = cmpHolds(op, ord) ? kMTrue : kMFalse;
    }
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = c.codes[i] < 0 ? kMNull
                            : perCode[static_cast<std::size_t>(c.codes[i])];
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Value r = compareValues(op, a.cellValue(i), b.cellValue(i));
    m[i] = r.isNull() ? kMNull : (r.asBool() ? kMTrue : kMFalse);
  }
}

void likeMask(const EvalCol& a, const EvalCol& b, Mask& m) {
  const std::size_t n = m.size();
  if ((a.isConst && a.constVal.isNull()) ||
      (b.isConst && b.constVal.isNull())) {
    std::fill(m.begin(), m.end(), kMNull);
    return;
  }
  if (isStrCol(a) && isConstNonNull(b)) {
    const VecColumn& c = a.col();
    const std::string pattern = b.constVal.toString();
    std::vector<std::uint8_t> perCode(c.dict->size());
    for (std::size_t k = 0; k < perCode.size(); ++k) {
      perCode[k] = likeMatch((*c.dict)[k], pattern) ? kMTrue : kMFalse;
    }
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = c.codes[i] < 0 ? kMNull
                            : perCode[static_cast<std::size_t>(c.codes[i])];
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (a.cellNull(i) || b.cellNull(i)) {
      m[i] = kMNull;
      continue;
    }
    m[i] = likeMatch(a.cellValue(i).toString(), b.cellValue(i).toString())
               ? kMTrue
               : kMFalse;
  }
}

void betweenMask(const EvalCol& v, const EvalCol& lo, const EvalCol& hi,
                 bool negated, Mask& m) {
  const std::size_t n = m.size();
  if (numericish(v) && numericish(lo) && numericish(hi)) {
    const NumAcc vv(v);
    const NumAcc lv(lo);
    const NumAcc hv(hi);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t vt = vv.tag(i);
      const std::uint8_t lt = lv.tag(i);
      const std::uint8_t ht = hv.tag(i);
      if (vt == kNullTag || lt == kNullTag || ht == kNullTag) {
        m[i] = kMNull;
        continue;
      }
      const int cl = (vt == kIntTag && lt == kIntTag)
                         ? cmp3i(vv.iv(i), lv.iv(i))
                         : cmp3(vv.real(i), lv.real(i));
      const int ch = (vt == kIntTag && ht == kIntTag)
                         ? cmp3i(vv.iv(i), hv.iv(i))
                         : cmp3(vv.real(i), hv.real(i));
      const bool inside = cl >= 0 && ch <= 0;
      m[i] = (negated ? !inside : inside) ? kMTrue : kMFalse;
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (v.cellNull(i) || lo.cellNull(i) || hi.cellNull(i)) {
      m[i] = kMNull;
      continue;
    }
    const Value a = v.cellValue(i);
    const bool inside = orderOf(a.compare(lo.cellValue(i))) >= 0 &&
                        orderOf(a.compare(hi.cellValue(i))) <= 0;
    m[i] = (negated ? !inside : inside) ? kMTrue : kMFalse;
  }
}

// --- arithmetic -------------------------------------------------------

EvalCol arithmeticBatch(BinOp op, const EvalCol& a, const EvalCol& b,
                        std::size_t n) {
  EvalCol e;
  e.n = n;
  if (a.isConst && b.isConst) {
    try {
      e.isConst = true;
      e.constVal = arithmeticValues(op, a.constVal, b.constVal);
    } catch (const EvalError&) {
      throw Fallback{};  // the interpreter raises this for every row
    }
    return e;
  }
  if ((a.isConst && a.constVal.isNull()) ||
      (b.isConst && b.constVal.isNull())) {
    e.isConst = true;  // NULL operand: NULL everywhere
    return e;
  }
  if (numericish(a) && numericish(b)) {
    const NumAcc av(a);
    const NumAcc bv(b);
    VecColumn& out = e.owned;
    // Index writes into zero-filled vectors: an untouched cell keeps
    // tag kNullTag, so NULL results cost nothing.
    out.tag.resize(n);
    out.ints.resize(n);
    out.reals.resize(n);
    out.size = n;
    const auto setInt = [&](std::size_t i, std::int64_t v) {
      out.tag[i] = kIntTag;
      out.ints[i] = v;
    };
    const auto setReal = [&](std::size_t i, double v) {
      out.tag[i] = kRealTag;
      out.reals[i] = v;
    };
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t at = av.tag(i);
      const std::uint8_t bt = bv.tag(i);
      if (at == kNullTag || bt == kNullTag) {
        continue;  // NULL operand: NULL result
      }
      if (at == kIntTag && bt == kIntTag) {
        // Mirror of arithmeticValues' both-Int branch (incl. overflow
        // promotion to Real).
        const std::int64_t x = av.iv(i);
        const std::int64_t y = bv.iv(i);
        std::int64_t o = 0;
        bool promoted = false;
        switch (op) {
          case BinOp::Add:
            if (!__builtin_add_overflow(x, y, &o)) {
              setInt(i, o);
            } else {
              promoted = true;
            }
            break;
          case BinOp::Sub:
            if (!__builtin_sub_overflow(x, y, &o)) {
              setInt(i, o);
            } else {
              promoted = true;
            }
            break;
          case BinOp::Mul:
            if (!__builtin_mul_overflow(x, y, &o)) {
              setInt(i, o);
            } else {
              promoted = true;
            }
            break;
          case BinOp::Div:
            if (y == 0) {
              // NULL result: tag already kNullTag
            } else if (x == std::numeric_limits<std::int64_t>::min() &&
                       y == -1) {
              promoted = true;
            } else {
              setInt(i, x / y);
            }
            break;
          case BinOp::Mod:
            if (y == 0) {
              // NULL result
            } else if (y == -1) {
              setInt(i, 0);
            } else {
              setInt(i, x % y);
            }
            break;
          default:
            throw Fallback{};
        }
        if (!promoted) continue;
        // fall through to the double path for this cell
      }
      const double x = av.real(i);
      const double y = bv.real(i);
      switch (op) {
        case BinOp::Add:
          setReal(i, x + y);
          break;
        case BinOp::Sub:
          setReal(i, x - y);
          break;
        case BinOp::Mul:
          setReal(i, x * y);
          break;
        case BinOp::Div:
          if (y != 0.0) setReal(i, x / y);  // else NULL
          break;
        case BinOp::Mod:
          if (y != 0.0) setReal(i, std::fmod(x, y));  // else NULL
          break;
        default:
          throw Fallback{};
      }
    }
    return e;
  }
  // Mixed / string / generic operands: shared scalar kernel per cell.
  VecColumn& out = e.owned;
  out.kind = ColKind::Generic;
  out.values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    try {
      out.appendValue(arithmeticValues(op, a.cellValue(i), b.cellValue(i)));
    } catch (const EvalError&) {
      throw Fallback{};
    }
  }
  return e;
}

// --- tree walkers -----------------------------------------------------

Mask evalP(const Expr& expr, const BatchSchema& schema, const Batch& batch,
           const Sel& sel) {
  Mask m(sel.size(), kMFalse);
  if (sel.empty()) return m;
  switch (expr.kind) {
    case ExprKind::Binary:
      switch (expr.bop) {
        case BinOp::And: {
          const Mask lm = evalP(*expr.children[0], schema, batch, sel);
          Sel sub;
          std::vector<std::uint32_t> subPos;
          sub.reserve(sel.size());
          subPos.reserve(sel.size());
          for (std::size_t pos = 0; pos < sel.size(); ++pos) {
            if (lm[pos] != kMFalse) {  // false dominates: rhs not reached
              sub.push_back(sel[pos]);
              subPos.push_back(static_cast<std::uint32_t>(pos));
            }
          }
          const Mask rm = evalP(*expr.children[1], schema, batch, sub);
          for (std::size_t j = 0; j < sub.size(); ++j) {
            const std::size_t pos = subPos[j];
            if (rm[j] == kMFalse) {
              m[pos] = kMFalse;
            } else if (lm[pos] == kMNull || rm[j] == kMNull) {
              m[pos] = kMNull;
            } else {
              m[pos] = kMTrue;
            }
          }
          return m;  // lm == false positions stay kMFalse
        }
        case BinOp::Or: {
          const Mask lm = evalP(*expr.children[0], schema, batch, sel);
          Sel sub;
          std::vector<std::uint32_t> subPos;
          sub.reserve(sel.size());
          subPos.reserve(sel.size());
          for (std::size_t pos = 0; pos < sel.size(); ++pos) {
            if (lm[pos] == kMTrue) {
              m[pos] = kMTrue;  // true dominates: rhs not reached
            } else {
              sub.push_back(sel[pos]);
              subPos.push_back(static_cast<std::uint32_t>(pos));
            }
          }
          const Mask rm = evalP(*expr.children[1], schema, batch, sub);
          for (std::size_t j = 0; j < sub.size(); ++j) {
            const std::size_t pos = subPos[j];
            if (rm[j] == kMTrue) {
              m[pos] = kMTrue;
            } else if (lm[pos] == kMNull || rm[j] == kMNull) {
              m[pos] = kMNull;
            } else {
              m[pos] = kMFalse;
            }
          }
          return m;
        }
        case BinOp::Like: {
          const EvalCol a = evalV(*expr.children[0], schema, batch, sel);
          const EvalCol b = evalV(*expr.children[1], schema, batch, sel);
          likeMask(a, b, m);
          return m;
        }
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge: {
          const EvalCol a = evalV(*expr.children[0], schema, batch, sel);
          const EvalCol b = evalV(*expr.children[1], schema, batch, sel);
          compareMask(expr.bop, a, b, m);
          return m;
        }
        default:  // arithmetic used as a predicate
          return boolish(evalV(expr, schema, batch, sel), sel.size());
      }
    case ExprKind::Unary:
      if (expr.uop == UnOp::Not) {
        m = evalP(*expr.children[0], schema, batch, sel);
        for (auto& v : m) {
          if (v != kMNull) v = v == kMTrue ? kMFalse : kMTrue;
        }
        return m;
      }
      return boolish(evalV(expr, schema, batch, sel), sel.size());
    case ExprKind::IsNull: {
      const EvalCol v = evalV(*expr.children[0], schema, batch, sel);
      for (std::size_t i = 0; i < sel.size(); ++i) {
        const bool isnull = v.cellNull(i);
        m[i] = (expr.negated ? !isnull : isnull) ? kMTrue : kMFalse;
      }
      return m;
    }
    case ExprKind::Between: {
      const EvalCol v = evalV(*expr.children[0], schema, batch, sel);
      const EvalCol lo = evalV(*expr.children[1], schema, batch, sel);
      const EvalCol hi = evalV(*expr.children[2], schema, batch, sel);
      betweenMask(v, lo, hi, expr.negated, m);
      return m;
    }
    case ExprKind::InList: {
      const EvalCol needle = evalV(*expr.children[0], schema, batch, sel);
      std::vector<EvalCol> cands;
      cands.reserve(expr.children.size() - 1);
      for (std::size_t k = 1; k < expr.children.size(); ++k) {
        cands.push_back(evalV(*expr.children[k], schema, batch, sel));
      }
      // Numeric needle against non-NULL numeric constants (the common
      // `x IN (1, 2, 3)` shape): compare unboxed numerics instead of
      // building a Value per cell per candidate. Mirrors
      // Value::compare: Int-vs-Int is exact, anything else promotes
      // to double.
      bool constNums = numericish(needle);
      for (const EvalCol& cand : cands) {
        constNums = constNums && isConstNonNull(cand) &&
                    cand.constVal.isNumeric();
      }
      if (constNums) {
        struct NumCand {
          bool isInt;
          std::int64_t i;
          double r;
        };
        std::vector<NumCand> vals;
        vals.reserve(cands.size());
        for (const EvalCol& cand : cands) {
          const Value& v = cand.constVal;
          vals.push_back(NumCand{v.type() == ValueType::Int,
                                 v.type() == ValueType::Int ? v.asInt() : 0,
                                 v.toReal()});
        }
        const NumAcc nv(needle);
        for (std::size_t i = 0; i < sel.size(); ++i) {
          const std::uint8_t t = nv.tag(i);
          if (t == kNullTag) {
            m[i] = kMNull;
            continue;
          }
          bool matched = false;
          for (const NumCand& cand : vals) {
            if (t == kIntTag && cand.isInt ? nv.iv(i) == cand.i
                                           : nv.real(i) == cand.r) {
              matched = true;
              break;
            }
          }
          m[i] = (matched != expr.negated) ? kMTrue : kMFalse;
        }
        return m;
      }
      for (std::size_t i = 0; i < sel.size(); ++i) {
        if (needle.cellNull(i)) {
          m[i] = kMNull;
          continue;
        }
        const Value nv = needle.cellValue(i);
        bool sawNull = false;
        bool matched = false;
        for (const EvalCol& cand : cands) {
          if (cand.cellNull(i)) {
            sawNull = true;
            continue;
          }
          if (nv == cand.cellValue(i)) {
            matched = true;
            break;
          }
        }
        if (matched) {
          m[i] = expr.negated ? kMFalse : kMTrue;
        } else if (sawNull) {
          m[i] = kMNull;
        } else {
          m[i] = expr.negated ? kMTrue : kMFalse;
        }
      }
      return m;
    }
    case ExprKind::Call:
      throw Fallback{};  // aggregate in scalar context, reached by a row
    default:  // Literal / Column
      return boolish(evalV(expr, schema, batch, sel), sel.size());
  }
}

EvalCol evalV(const Expr& expr, const BatchSchema& schema, const Batch& batch,
              const Sel& sel) {
  EvalCol e;
  e.n = sel.size();
  if (sel.empty()) {
    e.isConst = true;  // nothing is evaluated; value is never read
    return e;
  }
  switch (expr.kind) {
    case ExprKind::Literal:
      e.isConst = true;
      e.constVal = expr.literal;
      return e;
    case ExprKind::Column: {
      const std::ptrdiff_t idx = schema.resolve(expr.table, expr.name);
      if (idx < 0 || batch.cols[static_cast<std::size_t>(idx)] == nullptr) {
        // Unknown column evaluated by at least one row: the interpreter
        // raises EvalError here.
        throw Fallback{};
      }
      const VecColumn* c = batch.cols[static_cast<std::size_t>(idx)];
      if (sel.size() == batch.rows) {
        e.borrowed = c;  // identity selection: zero-copy
      } else {
        e.owned = gatherColumn(*c, sel.data(), sel.size());
      }
      return e;
    }
    case ExprKind::Unary: {
      if (expr.uop == UnOp::Not) {
        e.owned = maskToBool(evalP(expr, schema, batch, sel));
        return e;
      }
      // Neg
      const EvalCol v = evalV(*expr.children[0], schema, batch, sel);
      if (v.isConst) {
        try {
          e.isConst = true;
          e.constVal = negateValue(v.constVal);
        } catch (const EvalError&) {
          throw Fallback{};
        }
        return e;
      }
      const VecColumn& c = v.col();
      switch (c.kind) {
        case ColKind::Numeric:
          e.owned.tag.reserve(sel.size());
          e.owned.ints.reserve(sel.size());
          e.owned.reals.reserve(sel.size());
          for (std::size_t i = 0; i < sel.size(); ++i) {
            if (c.tag[i] == kNullTag) {
              e.owned.appendNull();
            } else if (c.tag[i] == kIntTag) {
              const std::int64_t x = c.ints[i];
              if (x == std::numeric_limits<std::int64_t>::min()) {
                e.owned.appendReal(-static_cast<double>(x));
              } else {
                e.owned.appendInt(-x);
              }
            } else {
              e.owned.appendReal(-c.reals[i]);
            }
          }
          return e;
        case ColKind::Bool:
        case ColKind::Str:
          // Any non-NULL cell makes the interpreter throw "unary '-' on
          // non-numeric operand".
          for (std::size_t i = 0; i < sel.size(); ++i) {
            if (!c.isNullAt(i)) throw Fallback{};
            e.owned.appendNull();
          }
          return e;
        case ColKind::Generic:
          e.owned.kind = ColKind::Generic;
          e.owned.values.reserve(sel.size());
          for (std::size_t i = 0; i < sel.size(); ++i) {
            try {
              e.owned.appendValue(negateValue(c.values[i]));
            } catch (const EvalError&) {
              throw Fallback{};
            }
          }
          return e;
      }
      throw Fallback{};
    }
    case ExprKind::Binary:
      switch (expr.bop) {
        case BinOp::And:
        case BinOp::Or:
        case BinOp::Like:
        case BinOp::Eq:
        case BinOp::Ne:
        case BinOp::Lt:
        case BinOp::Le:
        case BinOp::Gt:
        case BinOp::Ge:
          e.owned = maskToBool(evalP(expr, schema, batch, sel));
          return e;
        default: {
          const EvalCol a = evalV(*expr.children[0], schema, batch, sel);
          const EvalCol b = evalV(*expr.children[1], schema, batch, sel);
          return arithmeticBatch(expr.bop, a, b, sel.size());
        }
      }
    case ExprKind::InList:
    case ExprKind::IsNull:
    case ExprKind::Between:
      e.owned = maskToBool(evalP(expr, schema, batch, sel));
      return e;
    case ExprKind::Call:
      throw Fallback{};
  }
  throw Fallback{};
}

}  // namespace

Mask evalPredicateBatch(const Expr& expr, const BatchSchema& schema,
                        const Batch& batch, const Sel& sel) {
  return evalP(expr, schema, batch, sel);
}

VecColumn evalValueBatch(const Expr& expr, const BatchSchema& schema,
                         const Batch& batch, const Sel& sel) {
  EvalCol e = evalV(expr, schema, batch, sel);
  if (!e.isConst) {
    if (e.borrowed != nullptr) return *e.borrowed;  // caller owns a copy
    return std::move(e.owned);
  }
  VecColumn out;
  if (e.constVal.isNull()) {
    for (std::size_t i = 0; i < sel.size(); ++i) out.appendNull();
    return out;
  }
  out.kind = ColKind::Generic;
  out.values.assign(sel.size(), e.constVal);
  out.size = sel.size();
  return out;
}

}  // namespace gridrm::sql::vec
