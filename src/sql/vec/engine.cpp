#include "gridrm/sql/vec/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "gridrm/sql/eval.hpp"
#include "gridrm/sql/vec/kernels.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::sql::vec {

using util::Value;
using util::ValueType;

namespace {

// --- counters ---------------------------------------------------------

std::atomic<std::uint64_t> gStatements{0};
std::atomic<std::uint64_t> gFallbacks{0};
std::atomic<std::uint64_t> gBatches{0};
std::atomic<std::uint64_t> gRowsScanned{0};
std::atomic<std::uint64_t> gRowsFiltered{0};
std::atomic<bool> gEnabled{true};

void countBatch(std::size_t scanned, std::size_t kept) noexcept {
  gBatches.fetch_add(1, std::memory_order_relaxed);
  gRowsScanned.fetch_add(scanned, std::memory_order_relaxed);
  gRowsFiltered.fetch_add(scanned - kept, std::memory_order_relaxed);
}

// --- shared plumbing --------------------------------------------------

/// RowAccessor over string_view column names, with TableRowAccessor's
/// qualifier rule. Used for the per-group residual evaluation in the
/// aggregate path (one row per group -- not worth a kernel).
class NamesRowAccessor final : public RowAccessor {
 public:
  NamesRowAccessor(const std::vector<std::string_view>& names,
                   std::string_view table, std::string_view alias)
      : names_(names), table_(table), alias_(alias) {}

  void setRow(const std::vector<Value>* row) noexcept { row_ = row; }

  std::optional<Value> column(const std::string& table,
                              const std::string& name) const override {
    if (!table.empty() && !util::iequals(table, table_) &&
        !util::iequals(table, alias_)) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < names_.size(); ++i) {
      if (util::iequals(names_[i], name)) return (*row_)[i];
    }
    return std::nullopt;
  }

 private:
  const std::vector<std::string_view>& names_;
  std::string_view table_;
  std::string_view alias_;
  const std::vector<Value>* row_ = nullptr;
};

/// Mark schema columns an expression can touch (unresolvable refs are
/// left to the Column kernel, which falls back only when reached).
void markNeeded(const Expr& expr, const BatchSchema& schema,
                std::vector<char>& needed) {
  if (expr.kind == ExprKind::Column) {
    const std::ptrdiff_t idx = schema.resolve(expr.table, expr.name);
    if (idx >= 0) needed[static_cast<std::size_t>(idx)] = 1;
  }
  for (const auto& child : expr.children) {
    markNeeded(*child, schema, needed);
  }
}

/// Transpose one slice of the row-major input (dense when ids ==
/// nullptr, gathered otherwise) into batch columns for `needed`.
/// Builders persist across batches, so steady-state builds reuse the
/// typed vectors' capacity and the string dictionaries.
struct BatchStorage {
  std::vector<ColumnBuilder> builders;
  Batch batch;

  void build(const std::vector<std::vector<Value>>& rows,
             const std::uint32_t* ids, std::size_t begin, std::size_t end,
             const std::vector<char>& needed) {
    const std::size_t width = needed.size();
    if (builders.size() != width) builders.resize(width);
    batch.rows = end - begin;
    batch.cols.assign(width, nullptr);
    for (std::size_t c = 0; c < width; ++c) {
      if (needed[c] == 0) continue;
      builders[c].build(rows, ids, begin, end, c);
      batch.cols[c] = &builders[c].col;
    }
  }
};

Sel identitySel(std::size_t n) {
  Sel sel(n);
  std::iota(sel.begin(), sel.end(), 0U);
  return sel;
}

/// WHERE phase: batch the input and collect surviving global row ids.
std::vector<std::uint32_t> filterRows(
    const SelectStatement& stmt, const BatchSchema& schema,
    const std::vector<std::vector<Value>>& rows) {
  std::vector<std::uint32_t> selected;
  if (stmt.where == nullptr) {
    selected.resize(rows.size());
    std::iota(selected.begin(), selected.end(), 0U);
    return selected;
  }
  std::vector<char> needed(schema.names.size(), 0);
  markNeeded(*stmt.where, schema, needed);
  selected.reserve(rows.size());
  BatchStorage storage;
  // The identity prefix stays valid as the final batch shrinks it.
  Sel sel = identitySel(std::min(kBatchRows, rows.size()));
  for (std::size_t begin = 0; begin < rows.size(); begin += kBatchRows) {
    const std::size_t end = std::min(begin + kBatchRows, rows.size());
    storage.build(rows, nullptr, begin, end, needed);
    sel.resize(end - begin);
    const Mask mask =
        evalPredicateBatch(*stmt.where, schema, storage.batch, sel);
    const std::size_t before = selected.size();
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] == kMTrue) {
        selected.push_back(static_cast<std::uint32_t>(begin + i));
      }
    }
    countBatch(end - begin, selected.size() - before);
  }
  return selected;
}

// --- non-aggregate pipeline -------------------------------------------

std::optional<SelectResult> runPlainSelect(
    const SelectStatement& stmt, const BatchSchema& schema,
    const std::vector<std::vector<Value>>& rows) {
  // Mirror of executeSelect's early validation: a bare column item
  // whose name is unknown errors before any row work.
  bool star = false;
  for (const auto& item : stmt.items) {
    if (item.isStar()) {
      star = true;
      continue;
    }
    if (item.expr->kind == ExprKind::Column) {
      bool known = false;
      for (const auto& name : schema.names) {
        if (util::iequals(name, item.expr->name)) known = true;
      }
      if (!known) throw Fallback{};
    }
  }

  std::vector<std::uint32_t> selected = filterRows(stmt, schema, rows);

  // ORDER BY: evaluate every key eagerly (batched), then sort indices
  // with the interpreter's exact comparator. Same comparator outcomes
  // on the same initial sequence make stable_sort's permutation
  // identical. With <= 1 survivor the interpreter never evaluates keys
  // (the comparator is never called), so neither do we.
  if (!stmt.orderBy.empty() && selected.size() > 1) {
    std::vector<char> needed(schema.names.size(), 0);
    for (const auto& key : stmt.orderBy) {
      markNeeded(*key.expr, schema, needed);
    }
    std::vector<std::vector<Value>> keys(
        stmt.orderBy.size(), std::vector<Value>(selected.size()));
    BatchStorage storage;
    Sel sel = identitySel(std::min(kBatchRows, selected.size()));
    for (std::size_t begin = 0; begin < selected.size();
         begin += kBatchRows) {
      const std::size_t end = std::min(begin + kBatchRows, selected.size());
      storage.build(rows, selected.data(), begin, end, needed);
      sel.resize(end - begin);
      for (std::size_t k = 0; k < stmt.orderBy.size(); ++k) {
        const VecColumn col =
            evalValueBatch(*stmt.orderBy[k].expr, schema, storage.batch, sel);
        for (std::size_t i = 0; i < sel.size(); ++i) {
          keys[k][begin + i] = col.valueAt(i);
        }
      }
    }
    std::vector<std::uint32_t> perm(selected.size());
    std::iota(perm.begin(), perm.end(), 0U);
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       for (std::size_t k = 0; k < stmt.orderBy.size(); ++k) {
                         const auto c = keys[k][a].compare(keys[k][b]);
                         if (c == std::strong_ordering::equal) continue;
                         const bool less = c == std::strong_ordering::less;
                         return stmt.orderBy[k].descending ? !less : less;
                       }
                       return false;
                     });
    std::vector<std::uint32_t> sorted(selected.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      sorted[i] = selected[perm[i]];
    }
    selected = std::move(sorted);
  }

  std::size_t count = selected.size();
  if (stmt.limit && *stmt.limit >= 0 &&
      static_cast<std::size_t>(*stmt.limit) < count) {
    count = static_cast<std::size_t>(*stmt.limit);
  }

  SelectResult result;
  result.rows.reserve(count);
  if (star && stmt.items.size() == 1) {
    for (std::size_t r = 0; r < count; ++r) {
      result.rows.push_back(rows[selected[r]]);
    }
    return result;
  }

  std::vector<char> needed(schema.names.size(), 0);
  for (const auto& item : stmt.items) {
    if (!item.isStar()) markNeeded(*item.expr, schema, needed);
  }
  BatchStorage storage;
  Sel sel = identitySel(std::min(kBatchRows, count));
  for (std::size_t begin = 0; begin < count; begin += kBatchRows) {
    const std::size_t end = std::min(begin + kBatchRows, count);
    storage.build(rows, selected.data(), begin, end, needed);
    sel.resize(end - begin);
    std::vector<VecColumn> itemCols(stmt.items.size());
    for (std::size_t k = 0; k < stmt.items.size(); ++k) {
      if (stmt.items[k].isStar()) continue;
      itemCols[k] =
          evalValueBatch(*stmt.items[k].expr, schema, storage.batch, sel);
    }
    for (std::size_t i = 0; i < sel.size(); ++i) {
      const std::vector<Value>& source = rows[selected[begin + i]];
      std::vector<Value> outRow;
      outRow.reserve(stmt.items.size());
      for (std::size_t k = 0; k < stmt.items.size(); ++k) {
        if (stmt.items[k].isStar()) {
          for (const auto& v : source) outRow.push_back(v);
        } else {
          outRow.push_back(itemCols[k].valueAt(i));
        }
      }
      result.rows.push_back(std::move(outRow));
    }
  }
  return result;
}

// --- aggregate pipeline -----------------------------------------------

/// Same group-key ordering the interpreter gets from its std::map.
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const auto c = a[i].compare(b[i]);
      if (c != std::strong_ordering::equal) {
        return c == std::strong_ordering::less;
      }
    }
    return a.size() < b.size();
  }
};

/// Hash consistent with Value::compare equivalence classes: Int 2 and
/// Real 2.0 compare equal, so numerics hash by (normalised) double bit
/// pattern. NaN keys never reach here (the caller falls back: the
/// interpreter's tree probe with a NaN is path-dependent and cannot be
/// reproduced by hashing).
std::size_t hashValue(const Value& v) noexcept {
  switch (v.type()) {
    case ValueType::Null:
      return 0x9b1a6179u;
    case ValueType::Bool:
      return v.asBool() ? 0x2d5fca31u : 0x713c0a85u;
    case ValueType::Int:
    case ValueType::Real: {
      double d = v.toReal();
      if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0 (compare equal)
      return std::hash<std::uint64_t>{}(std::bit_cast<std::uint64_t>(d));
    }
    case ValueType::String:
      return std::hash<std::string>{}(v.asString()) ^ 0x5bd1e995u;
  }
  return 0;
}

std::size_t hashKey(const std::vector<Value>& key) noexcept {
  std::size_t h = 0x811c9dc5u;
  for (const Value& v : key) {
    h ^= hashValue(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

struct Group {
  std::vector<Value> key;
  std::vector<std::uint32_t> pos;  // positions into `selected`, ascending
};

struct AggCall {
  const Expr* call = nullptr;
  std::string sql;  // toSql(), the substitution identity
  bool starCount = false;
};

struct AggState {
  std::uint64_t cnt = 0;  // non-NULL argument values
  bool allInt = true;
  std::int64_t intTotal = 0;  // wrapping (see wrappingAdd)
  double total = 0.0;
  bool haveBest = false;
  Value best;
};

/// Two's-complement wrapping add, mirroring the interpreter's SUM
/// accumulator (see computeAggregate in store/database.cpp).
std::int64_t wrappingAdd(std::int64_t a, std::int64_t b) noexcept {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}

/// Collect aggregate Call nodes (deduplicated by rendered SQL, the
/// same identity substitution uses). Throws Fallback for any call
/// shape computeAggregate would reject -- the rerun raises the exact
/// error in the exact order.
void collectCalls(const Expr& expr, std::vector<AggCall>& calls,
                  std::unordered_set<std::string>& seen) {
  if (expr.kind == ExprKind::Call) {
    AggCall c;
    c.call = &expr;
    c.sql = expr.toSql();
    if (!seen.insert(c.sql).second) return;
    if (expr.name == "count" && expr.starArg) {
      c.starCount = true;
    } else if (expr.children.size() != 1 ||
               expr.children[0]->containsAggregate() ||
               (expr.name != "count" && expr.name != "sum" &&
                expr.name != "avg" && expr.name != "min" &&
                expr.name != "max")) {
      throw Fallback{};
    }
    calls.push_back(std::move(c));
    return;
  }
  for (const auto& child : expr.children) {
    collectCalls(*child, calls, seen);
  }
}

void substituteCalls(Expr& expr,
                     const std::unordered_map<std::string, Value>& vals) {
  if (expr.kind == ExprKind::Call) {
    expr.literal = vals.at(expr.toSql());
    expr.kind = ExprKind::Literal;
    expr.children.clear();
    return;
  }
  for (auto& child : expr.children) {
    substituteCalls(*child, vals);
  }
}

Value finalizeAgg(const AggCall& call, const AggState& st,
                  std::size_t groupSize) {
  if (call.starCount) return Value(static_cast<std::int64_t>(groupSize));
  const std::string& fn = call.call->name;
  if (fn == "count") return Value(static_cast<std::int64_t>(st.cnt));
  if (st.cnt == 0) return Value::null();
  if (fn == "min" || fn == "max") return st.best;
  if (fn == "sum") return st.allInt ? Value(st.intTotal) : Value(st.total);
  return Value(st.total / static_cast<double>(st.cnt));  // avg
}

std::optional<SelectResult> runAggregateSelect(
    const SelectStatement& stmt, const BatchSchema& schema,
    const std::vector<std::vector<Value>>& rows) {
  for (const auto& item : stmt.items) {
    if (item.isStar()) throw Fallback{};  // always an error; rerun raises it
  }
  std::vector<AggCall> calls;
  {
    std::unordered_set<std::string> seen;
    for (const auto& item : stmt.items) {
      collectCalls(*item.expr, calls, seen);
    }
    for (const auto& key : stmt.orderBy) {
      collectCalls(*key.expr, calls, seen);
    }
  }

  const std::vector<std::uint32_t> selected = filterRows(stmt, schema, rows);

  // Group. Bucket-chained hashing that preserves the interpreter's
  // std::map semantics: equality is Value::compare, the first
  // encountered key is the representative, and groups are ordered by
  // ValueVectorLess at the end.
  std::vector<Group> groups;
  std::vector<std::uint32_t> rowGroup(selected.size(), 0);
  if (stmt.groupBy.empty()) {
    Group g;
    g.pos.resize(selected.size());
    std::iota(g.pos.begin(), g.pos.end(), 0U);
    groups.push_back(std::move(g));  // one global group (possibly empty)
  } else if (!selected.empty()) {
    std::vector<char> needed(schema.names.size(), 0);
    for (const auto& expr : stmt.groupBy) {
      markNeeded(*expr, schema, needed);
    }
    std::unordered_map<std::size_t, std::vector<std::uint32_t>> buckets;
    BatchStorage storage;
    Sel sel = identitySel(std::min(kBatchRows, selected.size()));
    for (std::size_t begin = 0; begin < selected.size();
         begin += kBatchRows) {
      const std::size_t end = std::min(begin + kBatchRows, selected.size());
      storage.build(rows, selected.data(), begin, end, needed);
      sel.resize(end - begin);
      std::vector<VecColumn> keyCols(stmt.groupBy.size());
      for (std::size_t k = 0; k < stmt.groupBy.size(); ++k) {
        keyCols[k] =
            evalValueBatch(*stmt.groupBy[k], schema, storage.batch, sel);
      }
      for (std::size_t i = 0; i < sel.size(); ++i) {
        std::vector<Value> key;
        key.reserve(stmt.groupBy.size());
        for (std::size_t k = 0; k < stmt.groupBy.size(); ++k) {
          Value v = keyCols[k].valueAt(i);
          if (v.type() == ValueType::Real && std::isnan(v.asReal())) {
            throw Fallback{};
          }
          key.push_back(std::move(v));
        }
        const std::size_t h = hashKey(key);
        std::uint32_t gidx = std::numeric_limits<std::uint32_t>::max();
        auto& chain = buckets[h];
        for (const std::uint32_t cand : chain) {
          if (std::equal(key.begin(), key.end(), groups[cand].key.begin(),
                         groups[cand].key.end(),
                         [](const Value& a, const Value& b) {
                           return a.compare(b) ==
                                  std::strong_ordering::equal;
                         })) {
            gidx = cand;
            break;
          }
        }
        if (gidx == std::numeric_limits<std::uint32_t>::max()) {
          gidx = static_cast<std::uint32_t>(groups.size());
          chain.push_back(gidx);
          groups.push_back(Group{std::move(key), {}});
        }
        const std::size_t pos = begin + i;
        groups[gidx].pos.push_back(static_cast<std::uint32_t>(pos));
        rowGroup[pos] = gidx;
      }
    }
  }

  // Accumulate every distinct aggregate in one batched pass over the
  // selected rows (global row order == per-group row order, which SUM's
  // double accumulation depends on).
  std::vector<std::vector<AggState>> states(
      calls.size(), std::vector<AggState>(groups.size()));
  bool anyArg = false;
  std::vector<char> needed(schema.names.size(), 0);
  for (const auto& call : calls) {
    if (call.starCount) continue;
    anyArg = true;
    markNeeded(*call.call->children[0], schema, needed);
  }
  if (anyArg && !selected.empty()) {
    BatchStorage storage;
    Sel sel = identitySel(std::min(kBatchRows, selected.size()));
    for (std::size_t begin = 0; begin < selected.size();
         begin += kBatchRows) {
      const std::size_t end = std::min(begin + kBatchRows, selected.size());
      storage.build(rows, selected.data(), begin, end, needed);
      sel.resize(end - begin);
      for (std::size_t c = 0; c < calls.size(); ++c) {
        if (calls[c].starCount) continue;
        const VecColumn col = evalValueBatch(*calls[c].call->children[0],
                                             schema, storage.batch, sel);
        const std::string& fn = calls[c].call->name;
        for (std::size_t i = 0; i < sel.size(); ++i) {
          if (col.isNullAt(i)) continue;  // NULLs never aggregate
          Value v = col.valueAt(i);
          AggState& st = states[c][rowGroup[begin + i]];
          ++st.cnt;
          if (fn == "min" || fn == "max") {
            if (!st.haveBest) {
              st.best = std::move(v);
              st.haveBest = true;
            } else {
              const auto cmp = v.compare(st.best);
              if ((fn == "min") ? cmp == std::strong_ordering::less
                                : cmp == std::strong_ordering::greater) {
                st.best = std::move(v);
              }
            }
          } else if (fn == "sum" || fn == "avg") {
            if (!v.isNumeric()) throw Fallback{};  // SqlError on rerun
            if (v.type() == ValueType::Int) {
              st.intTotal = wrappingAdd(st.intTotal, v.asInt());
            } else {
              st.allInt = false;
            }
            st.total += v.toReal();
          }
          // count: cnt++ above is the whole job
        }
      }
    }
  }

  // Emit groups in the interpreter's (ValueVectorLess) order.
  std::vector<std::uint32_t> order(groups.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return ValueVectorLess{}(groups[a].key, groups[b].key);
                   });

  NamesRowAccessor accessor(schema.names, schema.table, schema.alias);
  const std::vector<Value> nullRow(schema.names.size());
  struct OutRow {
    std::vector<Value> cells;
    std::vector<Value> orderKeys;
  };
  std::vector<OutRow> outRows;
  outRows.reserve(groups.size());
  for (const std::uint32_t g : order) {
    const Group& group = groups[g];
    std::unordered_map<std::string, Value> vals;
    for (std::size_t c = 0; c < calls.size(); ++c) {
      vals.emplace(calls[c].sql,
                   finalizeAgg(calls[c], states[c][g], group.pos.size()));
    }
    accessor.setRow(group.pos.empty() ? &nullRow
                                      : &rows[selected[group.pos.front()]]);
    const auto evalResidual = [&](const Expr& expr) {
      ExprPtr copy = expr.clone();
      substituteCalls(*copy, vals);
      try {
        return evaluate(*copy, accessor);
      } catch (const EvalError&) {
        throw Fallback{};  // interpreter wraps this as NoSuchColumn
      }
    };
    OutRow out;
    out.cells.reserve(stmt.items.size());
    for (const auto& item : stmt.items) {
      out.cells.push_back(evalResidual(*item.expr));
    }
    out.orderKeys.reserve(stmt.orderBy.size());
    for (const auto& key : stmt.orderBy) {
      out.orderKeys.push_back(evalResidual(*key.expr));
    }
    outRows.push_back(std::move(out));
  }

  if (!stmt.orderBy.empty()) {
    std::stable_sort(outRows.begin(), outRows.end(),
                     [&](const OutRow& a, const OutRow& b) {
                       for (std::size_t i = 0; i < stmt.orderBy.size(); ++i) {
                         const auto c = a.orderKeys[i].compare(b.orderKeys[i]);
                         if (c == std::strong_ordering::equal) continue;
                         const bool less = c == std::strong_ordering::less;
                         return stmt.orderBy[i].descending ? !less : less;
                       }
                       return false;
                     });
  }

  std::size_t count = outRows.size();
  if (stmt.limit && *stmt.limit >= 0 &&
      static_cast<std::size_t>(*stmt.limit) < count) {
    count = static_cast<std::size_t>(*stmt.limit);
  }
  SelectResult result;
  result.rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    result.rows.push_back(std::move(outRows[i].cells));
  }
  return result;
}

}  // namespace

// --- public entry points ----------------------------------------------

VecEngineStats engineStats() noexcept {
  VecEngineStats s;
  s.vecStatements = gStatements.load(std::memory_order_relaxed);
  s.vecFallbacks = gFallbacks.load(std::memory_order_relaxed);
  s.vecBatches = gBatches.load(std::memory_order_relaxed);
  s.vecRowsScanned = gRowsScanned.load(std::memory_order_relaxed);
  s.vecRowsFiltered = gRowsFiltered.load(std::memory_order_relaxed);
  return s;
}

void resetEngineStats() noexcept {
  gStatements.store(0, std::memory_order_relaxed);
  gFallbacks.store(0, std::memory_order_relaxed);
  gBatches.store(0, std::memory_order_relaxed);
  gRowsScanned.store(0, std::memory_order_relaxed);
  gRowsFiltered.store(0, std::memory_order_relaxed);
}

bool engineEnabled() noexcept {
  return gEnabled.load(std::memory_order_relaxed);
}

void setEngineEnabled(bool enabled) noexcept {
  gEnabled.store(enabled, std::memory_order_relaxed);
}

std::optional<SelectResult> trySelect(
    const SelectStatement& stmt,
    const std::vector<std::string_view>& columnNames,
    const std::vector<std::vector<Value>>& rows) {
  if (!engineEnabled()) return std::nullopt;
  if (rows.size() > std::numeric_limits<std::uint32_t>::max()) {
    return std::nullopt;
  }
  const BatchSchema schema{columnNames, stmt.table, stmt.tableAlias};
  bool aggregate = !stmt.groupBy.empty();
  for (const auto& item : stmt.items) {
    if (!item.isStar() && item.expr->containsAggregate()) aggregate = true;
  }
  for (const auto& key : stmt.orderBy) {
    if (key.expr->containsAggregate()) aggregate = true;
  }
  try {
    auto result = aggregate ? runAggregateSelect(stmt, schema, rows)
                            : runPlainSelect(stmt, schema, rows);
    if (result) gStatements.fetch_add(1, std::memory_order_relaxed);
    return result;
  } catch (const Fallback&) {
    gFallbacks.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

std::optional<std::vector<std::uint32_t>> tryFilterBatch(
    const Expr& where, const std::vector<std::string_view>& columnNames,
    std::string_view table, std::string_view alias,
    const std::vector<const VecColumn*>& cols, std::size_t rowCount) {
  if (!engineEnabled()) return std::nullopt;
  const BatchSchema schema{columnNames, table, alias};
  Batch batch;
  batch.rows = rowCount;
  batch.cols = cols;
  try {
    const Sel sel = identitySel(rowCount);
    const Mask mask = evalPredicateBatch(where, schema, batch, sel);
    std::vector<std::uint32_t> selected;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] == kMTrue) {
        selected.push_back(static_cast<std::uint32_t>(i));
      }
    }
    countBatch(rowCount, selected.size());
    return selected;
  } catch (const Fallback&) {
    gFallbacks.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
}

}  // namespace gridrm::sql::vec
