#include "gridrm/sql/ast.hpp"

#include "gridrm/util/strings.hpp"

namespace gridrm::sql {

ExprPtr Expr::makeLiteral(util::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Literal;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::makeColumn(std::string table, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Column;
  e->table = std::move(table);
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::makeUnary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->uop = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::makeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->bop = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::makeCall(std::string name, std::vector<ExprPtr> args,
                       bool starArg) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Call;
  e->name = std::move(name);
  e->starArg = starArg;
  e->children = std::move(args);
  return e;
}

bool Expr::containsAggregate() const {
  if (kind == ExprKind::Call) return true;
  for (const auto& child : children) {
    if (child->containsAggregate()) return true;
  }
  return false;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->name = name;
  e->bop = bop;
  e->uop = uop;
  e->negated = negated;
  e->starArg = starArg;
  e->children.reserve(children.size());
  for (const auto& child : children) e->children.push_back(child->clone());
  return e;
}

const char* binOpName(BinOp op) noexcept {
  switch (op) {
    case BinOp::Or:
      return "OR";
    case BinOp::And:
      return "AND";
    case BinOp::Eq:
      return "=";
    case BinOp::Ne:
      return "!=";
    case BinOp::Lt:
      return "<";
    case BinOp::Le:
      return "<=";
    case BinOp::Gt:
      return ">";
    case BinOp::Ge:
      return ">=";
    case BinOp::Like:
      return "LIKE";
    case BinOp::Add:
      return "+";
    case BinOp::Sub:
      return "-";
    case BinOp::Mul:
      return "*";
    case BinOp::Div:
      return "/";
    case BinOp::Mod:
      return "%";
  }
  return "?";
}

namespace {

std::string literalToSql(const util::Value& v) {
  if (v.type() == util::ValueType::String) {
    return "'" + util::replaceAll(v.asString(), "'", "''") + "'";
  }
  return v.toString();
}

}  // namespace

std::string Expr::toSql() const {
  switch (kind) {
    case ExprKind::Literal:
      return literalToSql(literal);
    case ExprKind::Column:
      return table.empty() ? name : table + "." + name;
    case ExprKind::Unary:
      return uop == UnOp::Not ? "(NOT " + children[0]->toSql() + ")"
                              : "(-" + children[0]->toSql() + ")";
    case ExprKind::Binary:
      return "(" + children[0]->toSql() + " " + binOpName(bop) + " " +
             children[1]->toSql() + ")";
    case ExprKind::InList: {
      std::string out = "(" + children[0]->toSql();
      out += negated ? " NOT IN (" : " IN (";
      for (std::size_t i = 1; i < children.size(); ++i) {
        if (i != 1) out += ", ";
        out += children[i]->toSql();
      }
      return out + "))";
    }
    case ExprKind::IsNull:
      return "(" + children[0]->toSql() +
             (negated ? " IS NOT NULL)" : " IS NULL)");
    case ExprKind::Between:
      return "(" + children[0]->toSql() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->toSql() + " AND " + children[2]->toSql() + ")";
    case ExprKind::Call: {
      if (starArg) return name + "(*)";
      std::string out = name + "(";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i != 0) out += ", ";
        out += children[i]->toSql();
      }
      return out + ")";
    }
  }
  return "?";
}

std::string SelectStatement::toSql() const {
  std::string out = "SELECT ";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += items[i].isStar() ? "*" : items[i].expr->toSql();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  out += " FROM " + table;
  if (!tableAlias.empty()) out += " AS " + tableAlias;
  if (where) out += " WHERE " + where->toSql();
  if (!groupBy.empty()) {
    out += " GROUP BY ";
    for (std::size_t i = 0; i < groupBy.size(); ++i) {
      if (i != 0) out += ", ";
      out += groupBy[i]->toSql();
    }
  }
  if (!orderBy.empty()) {
    out += " ORDER BY ";
    for (std::size_t i = 0; i < orderBy.size(); ++i) {
      if (i != 0) out += ", ";
      out += orderBy[i].expr->toSql();
      if (orderBy[i].descending) out += " DESC";
    }
  }
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

std::string InsertStatement::toSql() const {
  std::string out = "INSERT INTO " + table;
  if (!columns.empty()) {
    out += " (" + util::join(columns, ", ") + ")";
  }
  out += " VALUES ";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r != 0) out += ", ";
    out += "(";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c != 0) out += ", ";
      out += literalToSql(rows[r][c]);
    }
    out += ")";
  }
  return out;
}

}  // namespace gridrm::sql
