#include "gridrm/net/network.hpp"

#include <charconv>

namespace gridrm::net {

Address Address::parse(const std::string& text) {
  std::size_t sep = text.rfind(':');
  if (sep == std::string::npos) return Address{text, 0};
  unsigned port = 0;
  const char* first = text.data() + sep + 1;
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, port);
  if (ec != std::errc{} || ptr != last || port > 0xffff) {
    return Address{text, 0};
  }
  return Address{text.substr(0, sep), static_cast<std::uint16_t>(port)};
}

void Network::bind(const Address& addr, RequestHandler* handler) {
  std::scoped_lock lock(mu_);
  endpoints_[addr] = handler;
}

void Network::unbind(const Address& addr) {
  std::scoped_lock lock(mu_);
  endpoints_.erase(addr);
}

bool Network::isBound(const Address& addr) const {
  std::scoped_lock lock(mu_);
  return endpoints_.count(addr) != 0;
}

void Network::setDefaultLink(const LinkModel& link) {
  std::scoped_lock lock(mu_);
  defaultLink_ = link;
}

void Network::setLink(const std::string& hostA, const std::string& hostB,
                      const LinkModel& link) {
  std::scoped_lock lock(mu_);
  auto key = hostA <= hostB ? std::make_pair(hostA, hostB)
                            : std::make_pair(hostB, hostA);
  links_[key] = link;
}

void Network::setHostDown(const std::string& host, bool down) {
  std::scoped_lock lock(mu_);
  hostDown_[host] = down;
}

LinkModel Network::linkFor(const std::string& a, const std::string& b) const {
  auto key = a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  auto it = links_.find(key);
  return it == links_.end() ? defaultLink_ : it->second;
}

util::Duration Network::sampleLatency(const LinkModel& link) {
  if (link.jitterUs <= 0) return link.latencyUs;
  return link.latencyUs +
         static_cast<util::Duration>(rng_.below(
             static_cast<std::uint64_t>(link.jitterUs)));
}

std::atomic<util::Duration> Network::chargedLatency_{0};

void Network::chargeOrSleep(util::Duration us) {
  if (eventDriven()) {
    chargedLatency_.fetch_add(us, std::memory_order_acq_rel);
  } else {
    clock_.sleepFor(us);
  }
}

Payload Network::request(const Address& from, const Address& to,
                         const Payload& body, util::Duration timeoutUs) {
  RequestHandler* handler = nullptr;
  util::Duration rtt = 0;
  bool lost = false;
  {
    std::scoped_lock lock(mu_);
    auto downIt = hostDown_.find(to.host);
    const bool down = downIt != hostDown_.end() && downIt->second;
    auto it = endpoints_.find(to);
    if (down) {
      // A down host drops packets silently: the caller pays the timeout.
      lost = true;
    } else if (it == endpoints_.end()) {
      // An unbound port fails fast (connection refused).
      ++totalRequests_;
      ++stats_[to].requestsFailed;
      throw NetError(NetErrorKind::Unreachable,
                     "no endpoint bound at " + to.toString());
    } else {
      handler = it->second;
    }
    const LinkModel link = linkFor(from.host, to.host);
    lost = lost || rng_.chance(link.lossProbability);
    rtt = sampleLatency(link) + sampleLatency(link);
    ++totalRequests_;
    EndpointStats& s = stats_[to];
    if (lost) {
      ++s.requestsFailed;
    } else {
      ++s.requestsServed;
      s.bytesIn += body.size();
    }
  }
  if (lost) {
    chargeOrSleep(timeoutUs);
    throw NetError(NetErrorKind::Timeout,
                   "request to " + to.toString() + " timed out");
  }
  chargeOrSleep(rtt);
  Payload response = handler->handleRequest(from, body);  // outside the lock
  {
    std::scoped_lock lock(mu_);
    stats_[to].bytesOut += response.size();
  }
  return response;
}

void Network::requestAsync(const Address& from, const Address& to,
                           const Payload& body, ResponseCallback onComplete,
                           util::Duration timeoutUs) {
  util::EventScheduler* sched = scheduler_.load(std::memory_order_acquire);
  if (sched == nullptr) {
    // Degraded (threaded/live) mode: run the synchronous path inline.
    AsyncOutcome outcome;
    try {
      outcome.response = request(from, to, body, timeoutUs);
    } catch (const NetError& e) {
      outcome.error = e.kind();
      outcome.message = e.what();
    }
    onComplete(outcome);
    return;
  }

  bool lost = false;
  util::Duration onewayOut = 0;
  util::Duration onewayBack = 0;
  {
    std::scoped_lock lock(mu_);
    auto downIt = hostDown_.find(to.host);
    lost = downIt != hostDown_.end() && downIt->second;
    const LinkModel link = linkFor(from.host, to.host);
    lost = lost || rng_.chance(link.lossProbability);
    onewayOut = sampleLatency(link);
    onewayBack = sampleLatency(link);
    ++totalRequests_;
    if (lost) ++stats_[to].requestsFailed;
  }
  const util::TimePoint now = clock_.now();
  if (lost) {
    const std::string where = to.toString();
    sched->schedule(now + timeoutUs, [onComplete, where] {
      onComplete(AsyncOutcome{{}, NetErrorKind::Timeout,
                              "request to " + where + " timed out"});
    });
    return;
  }

  auto state = std::make_shared<PendingRequest>();
  state->onComplete = std::move(onComplete);
  state->timeoutId =
      sched->schedule(now + timeoutUs, [state, to] {
        if (state->done) return;
        state->done = true;
        state->onComplete(AsyncOutcome{{}, NetErrorKind::Timeout,
                                       "request to " + to.toString() +
                                           " timed out"});
      });
  sched->schedule(now + onewayOut, [this, sched, state, from, to, body,
                                    onewayBack] {
    if (state->done) return;
    RequestHandler* handler = nullptr;
    bool downNow = false;
    {
      std::scoped_lock lock(mu_);
      auto downIt = hostDown_.find(to.host);
      downNow = downIt != hostDown_.end() && downIt->second;
      if (!downNow) {
        auto it = endpoints_.find(to);
        if (it != endpoints_.end()) handler = it->second;
      }
    }
    if (downNow) {
      // Swallowed mid-flight: the timeout event pays.
      std::scoped_lock lock(mu_);
      ++stats_[to].requestsFailed;
      return;
    }
    if (handler == nullptr) {
      // Connection refused surfaces as soon as the packet arrives.
      {
        std::scoped_lock lock(mu_);
        ++stats_[to].requestsFailed;
      }
      state->done = true;
      sched->cancel(state->timeoutId);
      state->onComplete(AsyncOutcome{{}, NetErrorKind::Unreachable,
                                     "no endpoint bound at " +
                                         to.toString()});
      return;
    }
    {
      std::scoped_lock lock(mu_);
      EndpointStats& s = stats_[to];
      ++s.requestsServed;
      s.bytesIn += body.size();
    }
    Payload response = handler->handleRequest(from, body);
    {
      std::scoped_lock lock(mu_);
      stats_[to].bytesOut += response.size();
    }
    sched->schedule(clock_.now() + onewayBack,
                    [sched, state, response = std::move(response)] {
                      if (state->done) return;
                      state->done = true;
                      sched->cancel(state->timeoutId);
                      state->onComplete(
                          AsyncOutcome{std::move(response), std::nullopt, {}});
                    });
  });
}

void Network::datagram(const Address& from, const Address& to,
                       const Payload& body) {
  // Datagrams deliver inline in every mode. Protocols built on the
  // synchronous request API (fragment streaming, trap fan-out) rely on
  // "frames arrive before the reply" ordering, which a scheduled
  // delivery cannot honour while a sync exchange holds the clock still.
  // Event-driven mode charges the one-way hop instead of sleeping, the
  // same accounting the sync request wrapper uses.
  RequestHandler* handler = nullptr;
  util::Duration oneway = 0;
  {
    std::scoped_lock lock(mu_);
    ++totalDatagrams_;
    EndpointStats& s = stats_[to];
    const LinkModel link = linkFor(from.host, to.host);
    oneway = sampleLatency(link);
    auto downIt = hostDown_.find(to.host);
    if (downIt != hostDown_.end() && downIt->second) {
      ++s.datagramsDropped;
      return;
    }
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      ++s.datagramsDropped;
      return;
    }
    if (rng_.chance(link.lossProbability)) {
      ++s.datagramsDropped;
      return;
    }
    handler = it->second;
    ++s.datagramsReceived;
    s.bytesIn += body.size();
  }
  if (eventDriven()) {
    chargedLatency_.fetch_add(oneway, std::memory_order_acq_rel);
  }
  handler->handleDatagram(from, body);
}

EndpointStats Network::stats(const Address& addr) const {
  std::scoped_lock lock(mu_);
  auto it = stats_.find(addr);
  return it == stats_.end() ? EndpointStats{} : it->second;
}

void Network::resetStats() {
  std::scoped_lock lock(mu_);
  stats_.clear();
  totalRequests_ = 0;
  totalDatagrams_ = 0;
}

std::uint64_t Network::totalRequests() const {
  std::scoped_lock lock(mu_);
  return totalRequests_;
}

std::uint64_t Network::totalDatagrams() const {
  std::scoped_lock lock(mu_);
  return totalDatagrams_;
}

}  // namespace gridrm::net
