#include "gridrm/drivers/netlogger_driver.hpp"

#include "gridrm/agents/netlogger_agent.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

class NetLoggerConnection final : public UrlConnection {
 public:
  NetLoggerConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_{url_.host(), url_.port() == 0 ? agents::netlogger::kNetLoggerPort
                                             : url_.port()},
        client_{"gateway", 0},
        schemaMap_(requireDriverMap(ctx_, "netlogger")) {
    if (roundTrip("EVENTS").empty()) {
      throw SqlError(ErrorCode::ConnectionFailed,
                     url_.text() + ": no event streams advertised");
    }
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      return !roundTrip("EVENTS").empty();
    } catch (const std::exception&) {
      return false;
    }
  }

  std::string roundTrip(const std::string& request) {
    try {
      return ctx_.network->request(client_, agent_, request);
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
  }

  const glue::DriverSchemaMap& schemaMap() const noexcept {
    return *schemaMap_;
  }
  const std::string& host() const noexcept { return url_.host(); }
  DriverContext& context() noexcept { return ctx_; }

 private:
  net::Address agent_;
  net::Address client_;
  std::shared_ptr<const glue::DriverSchemaMap> schemaMap_;
};

class NetLoggerStatement final : public dbc::BaseStatement {
 public:
  explicit NetLoggerStatement(NetLoggerConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    // Parse through the gateway's shared plan cache: repeated polls of
    // the same SQL reuse one SelectStatement + GLUE binding (E14).
    const std::shared_ptr<const ParsedQuery> plan =
        parseQuery(sql, conn_.context());
    const ParsedQuery& q = *plan;
    const glue::GroupMapping* mapping =
        conn_.schemaMap().findGroup(q.group().name());
    if (mapping == nullptr) {
      throw SqlError(ErrorCode::NoSuchTable,
                     "NetLogger source does not serve group " +
                         q.group().name());
    }

    GlueRowBuilder builder(q.group());
    builder.beginRow();
    std::int64_t newest = 0;
    for (const auto& attrName : q.neededAttributes()) {
      const glue::AttributeDef* attr = q.group().find(attrName);
      auto m = mapping->find(attrName);
      Value raw;
      if (m) {
        if (m->native == "@hostname") {
          raw = Value(conn_.host());
        } else if (m->native == "@timestamp") {
          raw = Value(conn_.context().clock->now());
        } else if (!m->native.empty()) {
          // Fine-grained: tail exactly one record of the mapped event.
          const std::string text = conn_.roundTrip("TAIL " + m->native + " 1");
          const auto lines = util::splitNonEmpty(text, '\n');
          double value = 0.0;
          if (!lines.empty() &&
              agents::netlogger::parseUlmValue(lines.back(), value)) {
            raw = Value(value);
            util::TimePoint ts = 0;
            if (agents::netlogger::parseUlmDate(lines.back(), ts)) {
              newest = std::max(newest, ts);
            }
          }
        }
        builder.set(attr->name, convertScaled(raw, m->scale, attr->type));
      }
    }
    // Prefer the record timestamp over the gateway clock when available.
    if (newest > 0 && q.needs("Timestamp")) {
      builder.set("Timestamp", Value(newest));
    }

    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  NetLoggerConnection& conn_;
};

std::unique_ptr<dbc::Statement> NetLoggerConnection::createStatement() {
  ensureOpen();
  return std::make_unique<NetLoggerStatement>(*this);
}

}  // namespace

bool NetLoggerDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "netlogger") return true;
  return url.subprotocol().empty() &&
         url.port() == agents::netlogger::kNetLoggerPort;
}

std::unique_ptr<dbc::Connection> NetLoggerDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<NetLoggerConnection>(url, ctx_);
}

glue::DriverSchemaMap NetLoggerDriver::defaultSchemaMap() {
  glue::DriverSchemaMap map("netlogger");

  glue::GroupMapping& cpu = map.group("Processor");
  cpu.map("HostName", "@hostname");
  cpu.map("ClusterName", "");
  cpu.map("Timestamp", "@timestamp");
  cpu.map("CPUCount", "");
  cpu.map("ClockSpeed", "");
  cpu.map("Model", "");
  cpu.map("Load1", "cpu.load");
  cpu.map("Load5", "");
  cpu.map("Load15", "");
  cpu.map("UserPct", "");
  cpu.map("SystemPct", "");
  cpu.map("IdlePct", "");

  glue::GroupMapping& mem = map.group("Memory");
  mem.map("HostName", "@hostname");
  mem.map("ClusterName", "");
  mem.map("Timestamp", "@timestamp");
  mem.map("RAMSize", "");
  mem.map("RAMAvailable", "mem.free");
  mem.map("VirtualSize", "");
  mem.map("VirtualAvailable", "");

  glue::GroupMapping& fs = map.group("FileSystem");
  fs.map("HostName", "@hostname");
  fs.map("ClusterName", "");
  fs.map("Timestamp", "@timestamp");
  fs.map("Root", "");
  fs.map("Size", "");
  fs.map("AvailableSpace", "disk.free");
  fs.map("ReadOnly", "");

  glue::GroupMapping& nic = map.group("NetworkAdapter");
  nic.map("HostName", "@hostname");
  nic.map("ClusterName", "");
  nic.map("Timestamp", "@timestamp");
  nic.map("Name", "");
  nic.map("Speed", "");
  nic.map("InBytes", "net.in");
  nic.map("OutBytes", "net.out");

  return map;
}

}  // namespace gridrm::drivers
