#include "gridrm/drivers/snmp_driver.hpp"

#include "gridrm/agents/snmp_agent.hpp"
#include "gridrm/agents/snmp_codec.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

namespace snmp = agents::snmp;
using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

// Mapping conventions for this driver's DriverSchemaMap `native` field:
//   "<dotted oid>"          plain GET of that OID
//   "@hostname"             the agent's cached sysName
//   "@timestamp"            gateway clock at query time
//   "@walkcount:<oid>"      number of rows under the prefix (GETBULK)
//   ""                      unavailable -> NULL

class SnmpConnection final : public UrlConnection {
 public:
  SnmpConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_(net::Address{url_.host(), url_.port() == 0 ? snmp::kSnmpPort
                                                          : url_.port()}),
        community_(url_.param("community", "public")),
        client_{"gateway", 0},
        schemaMap_(requireDriverMap(ctx_, "snmp")) {
    // Probe the agent and learn its sysName (HostName attribute).
    snmp::Pdu probe;
    probe.type = snmp::PduType::Get;
    probe.community = community_;
    probe.requestId = nextRequestId();
    probe.varbinds.push_back({snmp::Oid::parse(snmp::oids::kSysName), {}});
    snmp::Pdu response = roundTrip(probe);
    if (response.errorStatus == snmp::SnmpError::AuthorizationError) {
      throw SqlError(ErrorCode::SecurityDenied,
                     "SNMP community rejected by " + url_.text());
    }
    if (response.varbinds.empty() ||
        response.varbinds[0].value.isNull()) {
      throw SqlError(ErrorCode::ConnectionFailed,
                     "agent at " + url_.text() + " did not report sysName");
    }
    sysName_ = response.varbinds[0].value.toString();
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      snmp::Pdu probe;
      probe.type = snmp::PduType::Get;
      probe.community = community_;
      probe.requestId = nextRequestId();
      probe.varbinds.push_back({snmp::Oid::parse(snmp::oids::kSysUpTime), {}});
      return roundTrip(probe).errorStatus == snmp::SnmpError::NoError;
    } catch (const std::exception&) {
      return false;
    }
  }

  snmp::Pdu roundTrip(const snmp::Pdu& pdu) {
    try {
      const net::Payload response =
          ctx_.network->request(client_, agent_, snmp::encodePdu(pdu));
      return snmp::decodePdu(response);
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
  }

  std::uint32_t nextRequestId() noexcept { return ++requestId_; }
  const std::string& sysName() const noexcept { return sysName_; }
  const std::string& community() const noexcept { return community_; }
  const glue::DriverSchemaMap& schemaMap() const noexcept {
    return *schemaMap_;
  }
  DriverContext& context() noexcept { return ctx_; }

 private:
  net::Address agent_;
  std::string community_;
  net::Address client_;
  std::shared_ptr<const glue::DriverSchemaMap> schemaMap_;
  std::string sysName_;
  std::uint32_t requestId_ = 0;
};

class SnmpStatement final : public dbc::BaseStatement {
 public:
  explicit SnmpStatement(SnmpConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    // Parse through the gateway's shared plan cache: repeated polls of
    // the same SQL reuse one SelectStatement + GLUE binding (E14).
    const std::shared_ptr<const ParsedQuery> parsed =
        parseQuery(sql, conn_.context());
    const ParsedQuery& q = *parsed;
    const glue::GroupMapping* mapping =
        conn_.schemaMap().findGroup(q.group().name());
    if (mapping == nullptr) {
      throw SqlError(ErrorCode::NoSuchTable,
                     "SNMP source does not serve group " + q.group().name());
    }

    // Plan: one GET for the plain OIDs; remember special attributes.
    struct Fetch {
      const glue::AttributeDef* attr;
      glue::AttributeMapping map;
      std::size_t varbindIndex = SIZE_MAX;  // into the GET PDU
    };
    std::vector<Fetch> plan;
    snmp::Pdu get;
    get.type = snmp::PduType::Get;
    get.community = conn_.community();
    get.requestId = conn_.nextRequestId();

    for (const auto& attrName : q.neededAttributes()) {
      const glue::AttributeDef* attr = q.group().find(attrName);
      auto m = mapping->find(attrName);
      Fetch f{attr, m ? *m : glue::AttributeMapping{}, SIZE_MAX};
      if (!f.map.native.empty() && f.map.native[0] != '@') {
        f.varbindIndex = get.varbinds.size();
        get.varbinds.push_back({snmp::Oid::parse(f.map.native), {}});
      }
      plan.push_back(std::move(f));
    }

    snmp::Pdu response;
    if (!get.varbinds.empty()) {
      response = conn_.roundTrip(get);
      if (response.errorStatus == snmp::SnmpError::AuthorizationError) {
        throw SqlError(ErrorCode::SecurityDenied, "SNMP community rejected");
      }
    }

    GlueRowBuilder builder(q.group());
    builder.beginRow();
    for (const auto& f : plan) {
      Value raw;
      if (f.map.native == "@hostname") {
        raw = Value(conn_.sysName());
      } else if (f.map.native == "@timestamp") {
        raw = Value(conn_.context().clock->now());
      } else if (util::startsWith(f.map.native, "@walkcount:")) {
        raw = Value(walkCount(f.map.native.substr(11)));
      } else if (f.varbindIndex != SIZE_MAX &&
                 f.varbindIndex < response.varbinds.size()) {
        raw = response.varbinds[f.varbindIndex].value;
      }  // else: unavailable -> NULL
      builder.set(f.attr->name,
                  convertScaled(raw, f.map.scale, f.attr->type));
    }

    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  std::int64_t walkCount(const std::string& prefixText) {
    const snmp::Oid prefix = snmp::Oid::parse(prefixText);
    snmp::Pdu bulk;
    bulk.type = snmp::PduType::GetBulk;
    bulk.community = conn_.community();
    bulk.requestId = conn_.nextRequestId();
    bulk.maxRepetitions = 64;
    bulk.varbinds.push_back({prefix, {}});
    snmp::Pdu response = conn_.roundTrip(bulk);
    std::int64_t count = 0;
    for (const auto& vb : response.varbinds) {
      if (prefix.isPrefixOf(vb.oid)) ++count;
    }
    return count;
  }

  SnmpConnection& conn_;
};

std::unique_ptr<dbc::Statement> SnmpConnection::createStatement() {
  ensureOpen();
  return std::make_unique<SnmpStatement>(*this);
}

}  // namespace

bool SnmpDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "snmp") return true;
  // "jdbc:://host:161/..." -- claim the SNMP well-known port.
  return url.subprotocol().empty() && url.port() == snmp::kSnmpPort;
}

std::unique_ptr<dbc::Connection> SnmpDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<SnmpConnection>(url, ctx_);
}

glue::DriverSchemaMap SnmpDriver::defaultSchemaMap() {
  namespace oids = agents::snmp::oids;
  glue::DriverSchemaMap map("snmp");

  glue::GroupMapping& host = map.group("Host");
  host.map("HostName", "@hostname");
  host.map("ClusterName", "");  // SNMP agents know nothing of clusters
  host.map("Timestamp", "@timestamp");
  host.map("UpTime", oids::kSysUpTime, 0.01);  // centiseconds -> seconds
  host.map("ProcessCount", oids::kHrSystemProcesses);
  host.map("OSName", oids::kSysDescr);
  host.map("OSVersion", "");
  host.map("Architecture", "");

  glue::GroupMapping& cpu = map.group("Processor");
  cpu.map("HostName", "@hostname");
  cpu.map("ClusterName", "");
  cpu.map("Timestamp", "@timestamp");
  cpu.map("CPUCount",
          std::string("@walkcount:") + oids::kHrProcessorLoadPrefix);
  cpu.map("ClockSpeed", "");
  cpu.map("Model", "");
  cpu.map("Load1", oids::kLaLoad1);
  cpu.map("Load5", oids::kLaLoad5);
  cpu.map("Load15", oids::kLaLoad15);
  cpu.map("UserPct", oids::kSsCpuUser);
  cpu.map("SystemPct", oids::kSsCpuSystem);
  cpu.map("IdlePct", oids::kSsCpuIdle);

  glue::GroupMapping& mem = map.group("Memory");
  mem.map("HostName", "@hostname");
  mem.map("ClusterName", "");
  mem.map("Timestamp", "@timestamp");
  mem.map("RAMSize", oids::kMemTotalReal, 1.0 / 1024);  // KB -> MB
  mem.map("RAMAvailable", oids::kMemAvailReal, 1.0 / 1024);
  mem.map("VirtualSize", oids::kMemTotalSwap, 1.0 / 1024);
  mem.map("VirtualAvailable", oids::kMemAvailSwap, 1.0 / 1024);

  glue::GroupMapping& os = map.group("OperatingSystem");
  os.map("HostName", "@hostname");
  os.map("ClusterName", "");
  os.map("Timestamp", "@timestamp");
  os.map("Name", oids::kSysDescr);
  os.map("Release", "");
  os.map("BootTime", "");

  glue::GroupMapping& fs = map.group("FileSystem");
  fs.map("HostName", "@hostname");
  fs.map("ClusterName", "");
  fs.map("Timestamp", "@timestamp");
  fs.map("Root", "");
  fs.map("Size", oids::kHrStorageSize);
  fs.map("AvailableSpace", "");  // derived Size-Used not expressible; NULL
  fs.map("ReadOnly", "");

  glue::GroupMapping& nic = map.group("NetworkAdapter");
  nic.map("HostName", "@hostname");
  nic.map("ClusterName", "");
  nic.map("Timestamp", "@timestamp");
  nic.map("Name", oids::kIfDescr);
  nic.map("Speed", oids::kIfSpeed, 1e-6);  // bps -> Mbps
  nic.map("InBytes", oids::kIfInOctets);
  nic.map("OutBytes", oids::kIfOutOctets);

  return map;
}

}  // namespace gridrm::drivers
