#include "gridrm/drivers/mds_driver.hpp"

#include "gridrm/agents/mds_agent.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

using agents::mds::LdifEntry;
using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

class MdsConnection final : public UrlConnection {
 public:
  MdsConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_{url_.host(),
               url_.port() == 0 ? agents::mds::kGrisPort : url_.port()},
        client_{"gateway", 0},
        schemaMap_(requireDriverMap(ctx_, "mds")),
        cache_(*ctx_.clock,
               util::Value::parse(url_.param("cachems", "15000")).toInt() *
                   util::kMillisecond) {
    if (entries().empty()) {
      throw SqlError(ErrorCode::ConnectionFailed,
                     url_.text() + ": GRIS returned no GlueHost entries");
    }
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      return !fetch().empty();
    } catch (const std::exception&) {
      return false;
    }
  }

  /// The cached host entries, refetched when the TTL lapsed.
  const std::vector<LdifEntry>& entries() {
    if (const auto* hit = cache_.get()) return *hit;
    current_ = fetch();
    cache_.put(current_);
    return current_;
  }

  const glue::DriverSchemaMap& schemaMap() const noexcept {
    return *schemaMap_;
  }
  DriverContext& context() noexcept { return ctx_; }

 private:
  std::vector<LdifEntry> fetch() {
    net::Payload response;
    try {
      response = ctx_.network->request(
          client_, agent_, "SEARCH o=grid sub (objectClass=GlueHost)");
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
    if (util::startsWith(response, "ERROR")) {
      throw SqlError(ErrorCode::Translation, url_.text() + ": " + response);
    }
    return agents::mds::parseLdif(response);
  }

  net::Address agent_;
  net::Address client_;
  std::shared_ptr<const glue::DriverSchemaMap> schemaMap_;
  ResponseCache<std::vector<LdifEntry>> cache_;
  std::vector<LdifEntry> current_;
};

class MdsStatement final : public dbc::BaseStatement {
 public:
  explicit MdsStatement(MdsConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    // Parse through the gateway's shared plan cache: repeated polls of
    // the same SQL reuse one SelectStatement + GLUE binding (E14).
    const std::shared_ptr<const ParsedQuery> plan =
        parseQuery(sql, conn_.context());
    const ParsedQuery& q = *plan;
    const glue::GroupMapping* mapping =
        conn_.schemaMap().findGroup(q.group().name());
    if (mapping == nullptr) {
      throw SqlError(ErrorCode::NoSuchTable,
                     "MDS source does not serve group " + q.group().name());
    }

    GlueRowBuilder builder(q.group());
    for (const LdifEntry& entry : conn_.entries()) {
      builder.beginRow();
      for (const auto& attrName : q.neededAttributes()) {
        const glue::AttributeDef* attr = q.group().find(attrName);
        auto m = mapping->find(attrName);
        Value raw;
        if (m) {
          if (m->native == "@timestamp") {
            raw = Value(conn_.context().clock->now());
          } else if (!m->native.empty()) {
            const std::string text = entry.attr(m->native);
            if (!text.empty()) raw = util::Value::parse(text);
          }
          builder.set(attr->name, convertScaled(raw, m->scale, attr->type));
        }
      }
    }

    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  MdsConnection& conn_;
};

std::unique_ptr<dbc::Statement> MdsConnection::createStatement() {
  ensureOpen();
  return std::make_unique<MdsStatement>(*this);
}

}  // namespace

bool MdsDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "mds" || url.subprotocol() == "ldap") return true;
  return url.subprotocol().empty() && url.port() == agents::mds::kGrisPort;
}

std::unique_ptr<dbc::Connection> MdsDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<MdsConnection>(url, ctx_);
}

glue::DriverSchemaMap MdsDriver::defaultSchemaMap() {
  glue::DriverSchemaMap map("mds");

  glue::GroupMapping& host = map.group("Host");
  host.map("HostName", "GlueHostName");
  host.map("ClusterName", "GlueClusterName");
  host.map("Timestamp", "@timestamp");
  host.map("UpTime", "");
  host.map("ProcessCount", "");
  host.map("OSName", "GlueHostOperatingSystemName");
  host.map("OSVersion", "GlueHostOperatingSystemRelease");
  host.map("Architecture", "GlueHostArchitecturePlatformType");

  glue::GroupMapping& cpu = map.group("Processor");
  cpu.map("HostName", "GlueHostName");
  cpu.map("ClusterName", "GlueClusterName");
  cpu.map("Timestamp", "@timestamp");
  cpu.map("CPUCount", "GlueHostArchitectureSMPSize");
  cpu.map("ClockSpeed", "GlueHostProcessorClockSpeed");
  cpu.map("Model", "");
  cpu.map("Load1", "GlueHostProcessorLoadAverage1Min");
  cpu.map("Load5", "GlueHostProcessorLoadAverage5Min");
  cpu.map("Load15", "GlueHostProcessorLoadAverage15Min");
  cpu.map("UserPct", "");
  cpu.map("SystemPct", "");
  cpu.map("IdlePct", "");

  glue::GroupMapping& mem = map.group("Memory");
  mem.map("HostName", "GlueHostName");
  mem.map("ClusterName", "GlueClusterName");
  mem.map("Timestamp", "@timestamp");
  mem.map("RAMSize", "GlueHostMainMemoryRAMSize");
  mem.map("RAMAvailable", "GlueHostMainMemoryRAMAvailable");
  mem.map("VirtualSize", "GlueHostMainMemoryVirtualSize");
  mem.map("VirtualAvailable", "GlueHostMainMemoryVirtualAvailable");

  glue::GroupMapping& nic = map.group("NetworkAdapter");
  nic.map("HostName", "GlueHostName");
  nic.map("ClusterName", "GlueClusterName");
  nic.map("Timestamp", "@timestamp");
  nic.map("Name", "");
  nic.map("Speed", "");
  nic.map("InBytes", "GlueHostNetworkAdapterInboundIP");
  nic.map("OutBytes", "GlueHostNetworkAdapterOutboundIP");

  return map;
}

}  // namespace gridrm::drivers
