#include "gridrm/drivers/mock_driver.hpp"

#include <chrono>
#include <thread>

#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/glue/schema.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

class MockConnection;

class MockStatement final : public dbc::BaseStatement {
 public:
  MockStatement(MockDriver& driver, const util::Url& url)
      : driver_(driver), url_(url) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    const std::size_t call = driver_.noteQuery();
    const MockBehaviour& b = driver_.behaviour();
    DriverContext& ctx = driver_.context();
    const util::Duration delay = call <= b.queryDelaySchedule.size()
                                     ? b.queryDelaySchedule[call - 1]
                                     : b.queryLatencyUs;
    if (delay > 0 && ctx.clock != nullptr) {
      if (b.blockOnDelay) {
        driver_.blockUntil(*ctx.clock, ctx.clock->now() + delay);
      } else {
        ctx.clock->sleepFor(delay);
      }
    }
    const bool fail = call <= b.failQuerySchedule.size()
                          ? b.failQuerySchedule[call - 1]
                          : call > b.failQueriesFrom;
    if (fail) {
      throw SqlError(ErrorCode::ConnectionFailed,
                     "mock driver scripted failure on query " +
                         std::to_string(call));
    }
    const std::shared_ptr<const ParsedQuery> plan = parseQuery(sql, ctx);
    const ParsedQuery& q = *plan;
    GlueRowBuilder builder(q.group());
    builder.beginRow()
        .set("HostName", Value(b.hostName))
        .set("Timestamp",
             Value(ctx.clock != nullptr ? ctx.clock->now()
                                        : static_cast<std::int64_t>(0)))
        .set("Load1", Value(b.load1));
    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  MockDriver& driver_;
  [[maybe_unused]] const util::Url& url_;
};

class MockConnection final : public UrlConnection {
 public:
  MockConnection(util::Url url, DriverContext ctx, MockDriver& driver)
      : UrlConnection(std::move(url), ctx), driver_(driver) {}

  std::unique_ptr<dbc::Statement> createStatement() override {
    ensureOpen();
    return std::make_unique<MockStatement>(driver_, url_);
  }

 private:
  MockDriver& driver_;
};

}  // namespace

void MockDriver::blockUntil(util::Clock& clock, util::TimePoint wakeAt) const {
  // Real-time cap so a forgotten release can never wedge a test binary.
  const auto hardStop = std::chrono::steady_clock::now() +
                        std::chrono::seconds(60);
  while (clock.now() < wakeAt && !released_.load() &&
         std::chrono::steady_clock::now() < hardStop) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

bool MockDriver::acceptsUrl(const util::Url& url) const {
  ++acceptProbes_;
  for (const auto& sub : behaviour_.accepts) {
    if (url.subprotocol() == sub) return true;
  }
  return false;
}

std::unique_ptr<dbc::Connection> MockDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  const std::size_t call = ++connectCalls_;
  if (behaviour_.connectLatencyUs > 0 && ctx_.clock != nullptr) {
    ctx_.clock->sleepFor(behaviour_.connectLatencyUs);
  }
  if (behaviour_.failConnect ||
      (behaviour_.failConnectEveryN > 0 &&
       call % behaviour_.failConnectEveryN == 0)) {
    throw SqlError(ErrorCode::ConnectionFailed,
                   "mock driver scripted connect failure");
  }
  return std::make_unique<MockConnection>(url, ctx_, *this);
}

}  // namespace gridrm::drivers
