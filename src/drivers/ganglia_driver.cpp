#include "gridrm/drivers/ganglia_driver.hpp"

#include <map>

#include "gridrm/agents/ganglia_agent.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/util/strings.hpp"
#include "gridrm/util/xml.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

/// Parsed gmond snapshot: cluster name + per-host metric map.
struct ClusterSnapshot {
  std::string clusterName;
  std::int64_t localtime = 0;
  // host -> metric name -> raw value text
  std::vector<std::pair<std::string, std::map<std::string, std::string>>> hosts;
};

ClusterSnapshot parseSnapshot(const std::string& xmlText) {
  auto root = util::parseXml(xmlText);
  if (root->name != "GANGLIA_XML") {
    throw SqlError(ErrorCode::Translation, "not a GANGLIA_XML document");
  }
  const util::XmlElement* cluster = root->child("CLUSTER");
  if (cluster == nullptr) {
    throw SqlError(ErrorCode::Translation, "missing CLUSTER element");
  }
  ClusterSnapshot snap;
  snap.clusterName = cluster->attr("NAME");
  snap.localtime = util::Value::parse(cluster->attr("LOCALTIME", "0")).toInt();
  for (const util::XmlElement* host : cluster->childrenNamed("HOST")) {
    std::map<std::string, std::string> metrics;
    for (const util::XmlElement* m : host->childrenNamed("METRIC")) {
      metrics[m->attr("NAME")] = m->attr("VAL");
    }
    snap.hosts.emplace_back(host->attr("NAME"), std::move(metrics));
  }
  return snap;
}

class GangliaConnection final : public UrlConnection {
 public:
  GangliaConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_{url_.host(), url_.port() == 0 ? agents::ganglia::kGmondPort
                                             : url_.port()},
        client_{"gateway", 0},
        schemaMap_(requireDriverMap(ctx_, "ganglia")),
        cache_(*ctx_.clock,
               util::Value::parse(url_.param("cachems", "15000")).toInt() *
                   util::kMillisecond) {
    // Validate reachability and document shape once at connect time.
    (void)snapshot();
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      (void)fetch();
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  /// The cached snapshot, refetched when the TTL lapsed.
  const ClusterSnapshot& snapshot() {
    if (const ClusterSnapshot* hit = cache_.get()) return *hit;
    current_ = parseSnapshot(fetch());
    cache_.put(current_);
    return current_;
  }

  const glue::DriverSchemaMap& schemaMap() const noexcept {
    return *schemaMap_;
  }
  DriverContext& context() noexcept { return ctx_; }

 private:
  std::string fetch() {
    try {
      return ctx_.network->request(client_, agent_, "dump");
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
  }

  net::Address agent_;
  net::Address client_;
  std::shared_ptr<const glue::DriverSchemaMap> schemaMap_;
  ResponseCache<ClusterSnapshot> cache_;
  ClusterSnapshot current_;  // storage when caching is disabled (ttl=0)
};

class GangliaStatement final : public dbc::BaseStatement {
 public:
  explicit GangliaStatement(GangliaConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    // Parse through the gateway's shared plan cache: repeated polls of
    // the same SQL reuse one SelectStatement + GLUE binding (E14).
    const std::shared_ptr<const ParsedQuery> plan =
        parseQuery(sql, conn_.context());
    const ParsedQuery& q = *plan;
    const glue::GroupMapping* mapping =
        conn_.schemaMap().findGroup(q.group().name());
    if (mapping == nullptr) {
      throw SqlError(ErrorCode::NoSuchTable,
                     "Ganglia source does not serve group " + q.group().name());
    }

    const ClusterSnapshot& snap = conn_.snapshot();
    GlueRowBuilder builder(q.group());
    for (const auto& [hostName, metrics] : snap.hosts) {
      builder.beginRow();
      for (const auto& attrName : q.neededAttributes()) {
        const glue::AttributeDef* attr = q.group().find(attrName);
        auto m = mapping->find(attrName);
        Value raw;
        if (m) {
          if (m->native == "@hostname") {
            raw = Value(hostName);
          } else if (m->native == "@cluster") {
            raw = Value(snap.clusterName);
          } else if (m->native == "@timestamp") {
            raw = Value(conn_.context().clock->now());
          } else if (!m->native.empty()) {
            auto it = metrics.find(m->native);
            if (it != metrics.end()) raw = util::Value::parse(it->second);
          }
          builder.set(attr->name,
                      convertScaled(raw, m->scale, attr->type));
        }
      }
    }

    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  GangliaConnection& conn_;
};

std::unique_ptr<dbc::Statement> GangliaConnection::createStatement() {
  ensureOpen();
  return std::make_unique<GangliaStatement>(*this);
}

}  // namespace

bool GangliaDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "ganglia") return true;
  return url.subprotocol().empty() &&
         url.port() == agents::ganglia::kGmondPort;
}

std::unique_ptr<dbc::Connection> GangliaDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<GangliaConnection>(url, ctx_);
}

glue::DriverSchemaMap GangliaDriver::defaultSchemaMap() {
  glue::DriverSchemaMap map("ganglia");

  glue::GroupMapping& host = map.group("Host");
  host.map("HostName", "@hostname");
  host.map("ClusterName", "@cluster");
  host.map("Timestamp", "@timestamp");
  host.map("UpTime", "");  // derivable from boottime only with wall time
  host.map("ProcessCount", "proc_total");
  host.map("OSName", "os_name");
  host.map("OSVersion", "os_release");
  host.map("Architecture", "machine_type");

  glue::GroupMapping& cpu = map.group("Processor");
  cpu.map("HostName", "@hostname");
  cpu.map("ClusterName", "@cluster");
  cpu.map("Timestamp", "@timestamp");
  cpu.map("CPUCount", "cpu_num");
  cpu.map("ClockSpeed", "cpu_speed");
  cpu.map("Model", "");
  cpu.map("Load1", "load_one");
  cpu.map("Load5", "load_five");
  cpu.map("Load15", "load_fifteen");
  cpu.map("UserPct", "cpu_user");
  cpu.map("SystemPct", "cpu_system");
  cpu.map("IdlePct", "cpu_idle");

  glue::GroupMapping& mem = map.group("Memory");
  mem.map("HostName", "@hostname");
  mem.map("ClusterName", "@cluster");
  mem.map("Timestamp", "@timestamp");
  mem.map("RAMSize", "mem_total", 1.0 / 1024);  // KB -> MB
  mem.map("RAMAvailable", "mem_free", 1.0 / 1024);
  mem.map("VirtualSize", "swap_total", 1.0 / 1024);
  mem.map("VirtualAvailable", "swap_free", 1.0 / 1024);

  glue::GroupMapping& os = map.group("OperatingSystem");
  os.map("HostName", "@hostname");
  os.map("ClusterName", "@cluster");
  os.map("Timestamp", "@timestamp");
  os.map("Name", "os_name");
  os.map("Release", "os_release");
  os.map("BootTime", "boottime", 1e6);  // seconds -> microseconds

  glue::GroupMapping& fs = map.group("FileSystem");
  fs.map("HostName", "@hostname");
  fs.map("ClusterName", "@cluster");
  fs.map("Timestamp", "@timestamp");
  fs.map("Root", "");
  fs.map("Size", "disk_total");
  fs.map("AvailableSpace", "disk_free");
  fs.map("ReadOnly", "");

  glue::GroupMapping& nic = map.group("NetworkAdapter");
  nic.map("HostName", "@hostname");
  nic.map("ClusterName", "@cluster");
  nic.map("Timestamp", "@timestamp");
  nic.map("Name", "");
  nic.map("Speed", "");
  nic.map("InBytes", "bytes_in");
  nic.map("OutBytes", "bytes_out");

  return map;
}

}  // namespace gridrm::drivers
