#include "gridrm/drivers/driver_common.hpp"


#include <algorithm>
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;

void collectColumns(const sql::Expr& expr, std::set<std::string>& out) {
  if (expr.kind == sql::ExprKind::Column) out.insert(expr.name);
  for (const auto& child : expr.children) collectColumns(*child, out);
}

ParsedQuery ParsedQuery::parse(const std::string& sqlText,
                               const glue::Schema& schema) {
  ParsedQuery q;
  try {
    q.stmt_ = sql::parseSelect(sqlText);
  } catch (const sql::ParseError& e) {
    throw SqlError(ErrorCode::Syntax, e.what());
  }
  q.group_ = schema.findGroup(q.stmt_.table);
  if (q.group_ == nullptr) {
    throw SqlError(ErrorCode::NoSuchTable,
                   "'" + q.stmt_.table + "' is not a GLUE group");
  }

  std::set<std::string> referenced;
  bool star = false;
  for (const auto& item : q.stmt_.items) {
    if (item.isStar()) {
      star = true;
    } else {
      collectColumns(*item.expr, referenced);
    }
  }
  if (q.stmt_.where) collectColumns(*q.stmt_.where, referenced);
  for (const auto& key : q.stmt_.orderBy) collectColumns(*key.expr, referenced);

  for (const auto& attr : q.group_->attributes()) {
    const bool wanted =
        star || std::any_of(referenced.begin(), referenced.end(),
                            [&](const std::string& name) {
                              return util::iequals(name, attr.name);
                            });
    if (wanted) q.needed_.push_back(attr.name);
  }
  // Any referenced column that is not a group attribute is an error the
  // driver should surface before contacting the source.
  for (const auto& name : referenced) {
    if (q.group_->find(name) == nullptr) {
      throw SqlError(ErrorCode::NoSuchColumn,
                     "group " + q.group_->name() + " has no attribute '" +
                         name + "'");
    }
  }
  return q;
}

bool ParsedQuery::needs(const std::string& attribute) const {
  for (const auto& name : needed_) {
    if (util::iequals(name, attribute)) return true;
  }
  return false;
}

GlueRowBuilder::GlueRowBuilder(const glue::GroupDef& group) : group_(group) {}

GlueRowBuilder& GlueRowBuilder::beginRow() {
  rows_.emplace_back(group_.size());
  return *this;
}

GlueRowBuilder& GlueRowBuilder::set(const std::string& attribute,
                                    util::Value value) {
  if (rows_.empty()) beginRow();
  if (auto idx = group_.indexOf(attribute)) {
    rows_.back()[*idx] = std::move(value);
  }
  return *this;
}

std::vector<dbc::ColumnInfo> GlueRowBuilder::columns() const {
  std::vector<dbc::ColumnInfo> out;
  out.reserve(group_.size());
  for (const auto& attr : group_.attributes()) {
    out.push_back(
        dbc::ColumnInfo{attr.name, attr.type, attr.unit, group_.name()});
  }
  return out;
}

std::vector<std::vector<util::Value>> GlueRowBuilder::takeRows() {
  return std::move(rows_);
}

std::unique_ptr<dbc::VectorResultSet> applyClauses(
    const sql::SelectStatement& stmt,
    const std::vector<dbc::ColumnInfo>& columns,
    const std::vector<std::vector<util::Value>>& rows) {
  return store::executeSelect(stmt, columns, rows);
}

std::shared_ptr<const glue::DriverSchemaMap> requireDriverMap(
    const DriverContext& ctx, const std::string& driverName) {
  auto map = ctx.schemaManager->driverMap(driverName);
  if (!map) {
    throw SqlError(ErrorCode::Translation,
                   "no schema map registered for driver '" + driverName + "'");
  }
  return map;
}

util::Value convertScaled(const util::Value& v, double scale,
                          util::ValueType target) {
  using util::Value;
  using util::ValueType;
  if (v.isNull()) return Value::null();
  switch (target) {
    case ValueType::Int: {
      if (!v.isNumeric() && v.type() != ValueType::String) return Value::null();
      const double scaled = v.toReal() * scale;
      if (v.type() == ValueType::String && !util::Value::parse(v.asString()).isNumeric()) {
        return Value::null();
      }
      return Value(static_cast<std::int64_t>(scaled));
    }
    case ValueType::Real: {
      if (v.type() == ValueType::String &&
          !util::Value::parse(v.asString()).isNumeric()) {
        return Value::null();
      }
      return Value(v.toReal() * scale);
    }
    case ValueType::Bool:
      return Value(v.toBool());
    case ValueType::String:
      return Value(v.toString());
    case ValueType::Null:
      return Value::null();
  }
  return Value::null();
}

void rethrowNetError(const net::NetError& e, const util::Url& url) {
  throw SqlError(e.kind() == net::NetErrorKind::Timeout
                     ? ErrorCode::Timeout
                     : ErrorCode::ConnectionFailed,
                 url.text() + ": " + e.what());
}

}  // namespace gridrm::drivers
