#include "gridrm/drivers/defaults.hpp"

#include "gridrm/drivers/ganglia_driver.hpp"
#include "gridrm/drivers/mds_driver.hpp"
#include "gridrm/drivers/netlogger_driver.hpp"
#include "gridrm/drivers/nws_driver.hpp"
#include "gridrm/drivers/scms_driver.hpp"
#include "gridrm/drivers/snmp_driver.hpp"
#include "gridrm/drivers/sqlsrc_driver.hpp"

namespace gridrm::drivers {

void registerDefaultDrivers(dbc::DriverRegistry& registry,
                            const DriverContext& ctx) {
  ctx.schemaManager->registerDriverMap(SnmpDriver::defaultSchemaMap());
  ctx.schemaManager->registerDriverMap(GangliaDriver::defaultSchemaMap());
  ctx.schemaManager->registerDriverMap(NwsDriver::defaultSchemaMap());
  ctx.schemaManager->registerDriverMap(NetLoggerDriver::defaultSchemaMap());
  ctx.schemaManager->registerDriverMap(ScmsDriver::defaultSchemaMap());
  ctx.schemaManager->registerDriverMap(SqlSourceDriver::defaultSchemaMap());
  ctx.schemaManager->registerDriverMap(MdsDriver::defaultSchemaMap());

  registry.registerDriver(std::make_shared<SnmpDriver>(ctx));
  registry.registerDriver(std::make_shared<GangliaDriver>(ctx));
  registry.registerDriver(std::make_shared<NwsDriver>(ctx));
  registry.registerDriver(std::make_shared<NetLoggerDriver>(ctx));
  registry.registerDriver(std::make_shared<ScmsDriver>(ctx));
  registry.registerDriver(std::make_shared<SqlSourceDriver>(ctx));
  registry.registerDriver(std::make_shared<MdsDriver>(ctx));
}

}  // namespace gridrm::drivers
