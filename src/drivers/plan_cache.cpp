#include "gridrm/drivers/plan_cache.hpp"

#include "gridrm/sql/parser.hpp"

namespace gridrm::drivers {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

template <typename T>
std::shared_ptr<const T> PlanCache::LruMap<T>::get(const std::string& key) {
  auto it = entries.find(key);
  if (it == entries.end()) return nullptr;
  lru.splice(lru.begin(), lru, it->second.lruIt);  // mark most recent
  return it->second.plan;
}

template <typename T>
void PlanCache::LruMap<T>::put(const std::string& key,
                               std::shared_ptr<const T> plan,
                               std::size_t capacity,
                               std::uint64_t& evictions) {
  auto it = entries.find(key);
  if (it != entries.end()) {  // lost a race with another parser: refresh
    it->second.plan = std::move(plan);
    lru.splice(lru.begin(), lru, it->second.lruIt);
    return;
  }
  lru.push_front(key);
  entries[key] = Node{std::move(plan), lru.begin()};
  while (entries.size() > capacity && !lru.empty()) {
    entries.erase(lru.back());
    lru.pop_back();
    ++evictions;
  }
}

std::shared_ptr<const ParsedQuery> PlanCache::parse(
    const std::string& sql, const glue::SchemaManager& schemas) {
  const std::uint64_t generation = schemas.generation();
  {
    std::scoped_lock lock(mu_);
    if (generation != boundGeneration_) {
      // Schema reloaded: every bound plan holds GroupDef pointers into
      // the previous Schema, and every federated fragment was derived
      // from a binding against it — both must go.
      bound_.clear();
      federated_.clear();
      boundGeneration_ = generation;
      ++stats_.invalidations;
    }
    if (auto plan = bound_.get(sql)) {
      ++stats_.hits;
      return plan;
    }
    ++stats_.misses;
  }
  // Parse outside the lock: concurrent misses on different SQL texts
  // must not serialise on the cache mutex. A duplicate parse on the
  // same text is a benign race; put() keeps one winner.
  auto plan = std::make_shared<const ParsedQuery>(
      ParsedQuery::parse(sql, schemas.schema()));
  std::scoped_lock lock(mu_);
  if (generation == boundGeneration_) {
    bound_.put(sql, plan, capacity_, stats_.evictions);
  }
  return plan;
}

std::shared_ptr<const sql::SelectStatement> PlanCache::statement(
    const std::string& sql) {
  {
    std::scoped_lock lock(mu_);
    if (auto plan = statements_.get(sql)) {
      ++stats_.statementHits;
      return plan;
    }
    ++stats_.statementMisses;
  }
  std::shared_ptr<const sql::SelectStatement> plan;
  try {
    plan = std::make_shared<const sql::SelectStatement>(sql::parseSelect(sql));
  } catch (const sql::ParseError& e) {
    throw dbc::SqlError(dbc::ErrorCode::Syntax, e.what());
  }
  std::scoped_lock lock(mu_);
  statements_.put(sql, plan, capacity_, stats_.evictions);
  return plan;
}

std::shared_ptr<const store::FederatedPlan> PlanCache::federated(
    const std::string& sql, const glue::SchemaManager& schemas) {
  // Bind first: validates the SQL against the current schema (and its
  // generation) with exactly parse()'s error surface, and flushes
  // federated_ alongside bound_ when the generation moved.
  auto parsed = parse(sql, schemas);
  const std::uint64_t generation = schemas.generation();
  {
    std::scoped_lock lock(mu_);
    if (generation == boundGeneration_) {
      if (auto plan = federated_.get(sql)) {
        ++stats_.federatedHits;
        return plan;
      }
    }
    ++stats_.federatedMisses;
  }
  auto plan = store::planFederated(parsed->statement());
  std::scoped_lock lock(mu_);
  if (generation == boundGeneration_) {
    federated_.put(sql, plan, capacity_, stats_.evictions);
  }
  return plan;
}

void PlanCache::clear() {
  std::scoped_lock lock(mu_);
  bound_.clear();
  statements_.clear();
  federated_.clear();
}

PlanCacheStats PlanCache::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::scoped_lock lock(mu_);
  return bound_.entries.size() + statements_.entries.size() +
         federated_.entries.size();
}

std::shared_ptr<const ParsedQuery> parseQuery(const std::string& sql,
                                              const DriverContext& ctx) {
  if (ctx.planCache != nullptr && ctx.schemaManager != nullptr) {
    return ctx.planCache->parse(sql, *ctx.schemaManager);
  }
  const glue::Schema& schema = ctx.schemaManager != nullptr
                                   ? ctx.schemaManager->schema()
                                   : glue::Schema::builtin();
  return std::make_shared<const ParsedQuery>(ParsedQuery::parse(sql, schema));
}

}  // namespace gridrm::drivers
