#include "gridrm/drivers/sqlsrc_driver.hpp"

#include "gridrm/agents/sqlsrc_agent.hpp"
#include "gridrm/dbc/result_io.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;

namespace {

class SqlSourceConnection final : public UrlConnection {
 public:
  SqlSourceConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_{url_.host(),
               url_.port() == 0 ? agents::sqlsrc::kSqlPort : url_.port()},
        client_{"gateway", 0} {
    // Probe with a trivial query to validate reachability and dialect.
    (void)execute("SELECT HostName FROM Host LIMIT 1");
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      (void)execute("SELECT HostName FROM Host LIMIT 1");
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }

  std::unique_ptr<dbc::VectorResultSet> execute(const std::string& sql) {
    std::string response;
    try {
      response = ctx_.network->request(client_, agent_, sql);
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
    if (util::startsWith(response, "ERR ")) {
      throw SqlError(ErrorCode::Generic,
                     url_.text() + ": " + response.substr(4));
    }
    return dbc::deserializeResultSet(response);
  }

 private:
  net::Address agent_;
  net::Address client_;
};

class SqlSourceStatement final : public dbc::BaseStatement {
 public:
  explicit SqlSourceStatement(SqlSourceConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    return conn_.execute(sql);
  }

 private:
  SqlSourceConnection& conn_;
};

std::unique_ptr<dbc::Statement> SqlSourceConnection::createStatement() {
  ensureOpen();
  return std::make_unique<SqlSourceStatement>(*this);
}

}  // namespace

bool SqlSourceDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "sql") return true;
  return url.subprotocol().empty() && url.port() == agents::sqlsrc::kSqlPort;
}

std::unique_ptr<dbc::Connection> SqlSourceDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<SqlSourceConnection>(url, ctx_);
}

glue::DriverSchemaMap SqlSourceDriver::defaultSchemaMap() {
  glue::DriverSchemaMap map("sql");
  for (const char* groupName :
       {"Host", "Processor", "Memory", "OperatingSystem", "FileSystem",
        "NetworkAdapter", "ComputeElement"}) {
    glue::GroupMapping& g = map.group(groupName);
    const glue::GroupDef* def = glue::Schema::builtin().findGroup(groupName);
    for (const auto& attr : def->attributes()) {
      g.map(attr.name, attr.name);  // identity mapping
    }
  }
  return map;
}

}  // namespace gridrm::drivers
