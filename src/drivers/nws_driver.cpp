#include "gridrm/drivers/nws_driver.hpp"

#include <map>

#include "gridrm/agents/nws_agent.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

struct Forecast {
  double measurement = 0.0;
  double forecast = 0.0;
  double mse = 0.0;
};

using ForecastMap = std::map<std::string, Forecast>;  // resource -> forecast

Forecast parseForecast(const std::string& text, const util::Url& url) {
  Forecast f;
  bool sawForecast = false;
  for (const auto& line : util::splitNonEmpty(text, '\n')) {
    auto words = util::splitNonEmpty(line, ' ');
    if (words.size() < 2) continue;
    if (words[0] == "MEASUREMENT") {
      f.measurement = util::Value::parse(words[1]).toReal();
    } else if (words[0] == "FORECAST") {
      f.forecast = util::Value::parse(words[1]).toReal();
      sawForecast = true;
    } else if (words[0] == "MSE") {
      f.mse = util::Value::parse(words[1]).toReal();
    } else if (words[0] == "ERROR") {
      throw SqlError(ErrorCode::Translation,
                     url.text() + ": NWS error: " + line);
    }
  }
  if (!sawForecast) {
    throw SqlError(ErrorCode::Translation,
                   url.text() + ": malformed NWS forecast response");
  }
  return f;
}

class NwsConnection final : public UrlConnection {
 public:
  NwsConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_{url_.host(),
               url_.port() == 0 ? agents::nws::kNwsPort : url_.port()},
        client_{"gateway", 0},
        cache_(*ctx_.clock,
               util::Value::parse(url_.param("cachems", "10000")).toInt() *
                   util::kMillisecond) {
    // requireDriverMap validates registration even though all mapping
    // logic for NWS is positional (one GLUE group).
    (void)requireDriverMap(ctx_, "nws");
    if (listResources().empty()) {
      throw SqlError(ErrorCode::ConnectionFailed,
                     url_.text() + ": sensor lists no resources");
    }
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      return !listResources().empty();
    } catch (const std::exception&) {
      return false;
    }
  }

  std::vector<std::string> listResources() {
    return util::splitNonEmpty(roundTrip("LIST"), '\n');
  }

  const ForecastMap& forecasts() {
    if (const ForecastMap* hit = cache_.get()) return *hit;
    ForecastMap fresh;
    for (const auto& resource : listResources()) {
      fresh[resource] = parseForecast(roundTrip("FORECAST " + resource), url_);
    }
    current_ = std::move(fresh);
    cache_.put(current_);
    return current_;
  }

  const std::string& host() const noexcept { return url_.host(); }
  DriverContext& context() noexcept { return ctx_; }

 private:
  std::string roundTrip(const std::string& request) {
    try {
      return ctx_.network->request(client_, agent_, request);
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
  }

  net::Address agent_;
  net::Address client_;
  ResponseCache<ForecastMap> cache_;
  ForecastMap current_;
};

class NwsStatement final : public dbc::BaseStatement {
 public:
  explicit NwsStatement(NwsConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    // Parse through the gateway's shared plan cache: repeated polls of
    // the same SQL reuse one SelectStatement + GLUE binding (E14).
    const std::shared_ptr<const ParsedQuery> plan =
        parseQuery(sql, conn_.context());
    const ParsedQuery& q = *plan;
    if (!util::iequals(q.group().name(), "NetworkForecast")) {
      throw SqlError(ErrorCode::NoSuchTable,
                     "NWS sources serve only the NetworkForecast group");
    }

    GlueRowBuilder builder(q.group());
    const std::int64_t now = conn_.context().clock->now();
    for (const auto& [resource, f] : conn_.forecasts()) {
      builder.beginRow()
          .set("HostName", Value(conn_.host()))
          .set("Timestamp", Value(now))
          .set("Resource", Value(resource))
          .set("Measurement", Value(f.measurement))
          .set("Forecast", Value(f.forecast))
          .set("ForecastError", Value(f.mse));
    }
    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  NwsConnection& conn_;
};

std::unique_ptr<dbc::Statement> NwsConnection::createStatement() {
  ensureOpen();
  return std::make_unique<NwsStatement>(*this);
}

}  // namespace

bool NwsDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "nws") return true;
  return url.subprotocol().empty() && url.port() == agents::nws::kNwsPort;
}

std::unique_ptr<dbc::Connection> NwsDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<NwsConnection>(url, ctx_);
}

glue::DriverSchemaMap NwsDriver::defaultSchemaMap() {
  glue::DriverSchemaMap map("nws");
  glue::GroupMapping& g = map.group("NetworkForecast");
  g.map("HostName", "@hostname");
  g.map("Timestamp", "@timestamp");
  g.map("Resource", "RESOURCE");
  g.map("Measurement", "MEASUREMENT");
  g.map("Forecast", "FORECAST");
  g.map("ForecastError", "MSE");
  return map;
}

}  // namespace gridrm::drivers
