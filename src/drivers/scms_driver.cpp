#include "gridrm/drivers/scms_driver.hpp"

#include <map>

#include "gridrm/agents/scms_agent.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/util/strings.hpp"

namespace gridrm::drivers {

using dbc::ErrorCode;
using dbc::SqlError;
using util::Value;

namespace {

std::map<std::string, std::string> parseStat(const std::string& text) {
  std::map<std::string, std::string> out;
  for (const auto& line : util::splitNonEmpty(text, '\n')) {
    std::size_t sep = line.find(':');
    if (sep == std::string::npos) continue;
    out[std::string(util::trim(line.substr(0, sep)))] =
        std::string(util::trim(line.substr(sep + 1)));
  }
  return out;
}

class ScmsConnection final : public UrlConnection {
 public:
  ScmsConnection(util::Url url, DriverContext ctx)
      : UrlConnection(std::move(url), ctx),
        agent_{url_.host(),
               url_.port() == 0 ? agents::scms::kScmsPort : url_.port()},
        client_{"gateway", 0},
        schemaMap_(requireDriverMap(ctx_, "scms")) {
    if (nodes().empty()) {
      throw SqlError(ErrorCode::ConnectionFailed,
                     url_.text() + ": SCMS master lists no nodes");
    }
  }

  std::unique_ptr<dbc::Statement> createStatement() override;

  bool isValid() override {
    if (closed_) return false;
    try {
      return !nodes().empty();
    } catch (const std::exception&) {
      return false;
    }
  }

  std::vector<std::string> nodes() {
    const std::string text = roundTrip("NODES");
    if (util::startsWith(text, "ERROR")) return {};
    return util::splitNonEmpty(text, '\n');
  }

  std::string roundTrip(const std::string& request) {
    try {
      return ctx_.network->request(client_, agent_, request);
    } catch (const net::NetError& e) {
      rethrowNetError(e, url_);
    }
  }

  const glue::DriverSchemaMap& schemaMap() const noexcept {
    return *schemaMap_;
  }
  DriverContext& context() noexcept { return ctx_; }

 private:
  net::Address agent_;
  net::Address client_;
  std::shared_ptr<const glue::DriverSchemaMap> schemaMap_;
};

class ScmsStatement final : public dbc::BaseStatement {
 public:
  explicit ScmsStatement(ScmsConnection& conn) : conn_(conn) {}

  std::unique_ptr<dbc::ResultSet> executeQuery(const std::string& sql) override {
    // Parse through the gateway's shared plan cache: repeated polls of
    // the same SQL reuse one SelectStatement + GLUE binding (E14).
    const std::shared_ptr<const ParsedQuery> plan =
        parseQuery(sql, conn_.context());
    const ParsedQuery& q = *plan;
    const glue::GroupMapping* mapping =
        conn_.schemaMap().findGroup(q.group().name());
    if (mapping == nullptr) {
      throw SqlError(ErrorCode::NoSuchTable,
                     "SCMS source does not serve group " + q.group().name());
    }

    GlueRowBuilder builder(q.group());
    for (const auto& node : conn_.nodes()) {
      const auto stat = parseStat(conn_.roundTrip("STAT " + node));
      builder.beginRow();
      for (const auto& attrName : q.neededAttributes()) {
        const glue::AttributeDef* attr = q.group().find(attrName);
        auto m = mapping->find(attrName);
        Value raw;
        if (m) {
          if (m->native == "@timestamp") {
            raw = Value(conn_.context().clock->now());
          } else if (!m->native.empty()) {
            auto it = stat.find(m->native);
            if (it != stat.end()) raw = util::Value::parse(it->second);
          }
          builder.set(attr->name, convertScaled(raw, m->scale, attr->type));
        }
      }
    }

    auto columns = builder.columns();
    return applyClauses(q.statement(), columns, builder.takeRows());
  }

 private:
  ScmsConnection& conn_;
};

std::unique_ptr<dbc::Statement> ScmsConnection::createStatement() {
  ensureOpen();
  return std::make_unique<ScmsStatement>(*this);
}

}  // namespace

bool ScmsDriver::acceptsUrl(const util::Url& url) const {
  if (url.subprotocol() == "scms") return true;
  return url.subprotocol().empty() && url.port() == agents::scms::kScmsPort;
}

std::unique_ptr<dbc::Connection> ScmsDriver::connect(
    const util::Url& url, const util::Config& /*props*/) {
  return std::make_unique<ScmsConnection>(url, ctx_);
}

glue::DriverSchemaMap ScmsDriver::defaultSchemaMap() {
  glue::DriverSchemaMap map("scms");

  glue::GroupMapping& host = map.group("Host");
  host.map("HostName", "node");
  host.map("ClusterName", "cluster");
  host.map("Timestamp", "@timestamp");
  host.map("UpTime", "uptime");
  host.map("ProcessCount", "nprocs");
  host.map("OSName", "os");
  host.map("OSVersion", "");
  host.map("Architecture", "arch");

  glue::GroupMapping& cpu = map.group("Processor");
  cpu.map("HostName", "node");
  cpu.map("ClusterName", "cluster");
  cpu.map("Timestamp", "@timestamp");
  cpu.map("CPUCount", "ncpus");
  cpu.map("ClockSpeed", "cpu_mhz");
  cpu.map("Model", "");
  cpu.map("Load1", "load1");
  cpu.map("Load5", "load5");
  cpu.map("Load15", "load15");
  cpu.map("UserPct", "cpu_user");
  cpu.map("SystemPct", "cpu_sys");
  cpu.map("IdlePct", "cpu_idle");

  glue::GroupMapping& mem = map.group("Memory");
  mem.map("HostName", "node");
  mem.map("ClusterName", "cluster");
  mem.map("Timestamp", "@timestamp");
  mem.map("RAMSize", "mem_total_mb");
  mem.map("RAMAvailable", "mem_free_mb");
  mem.map("VirtualSize", "");
  mem.map("VirtualAvailable", "swap_free_mb");

  glue::GroupMapping& fs = map.group("FileSystem");
  fs.map("HostName", "node");
  fs.map("ClusterName", "cluster");
  fs.map("Timestamp", "@timestamp");
  fs.map("Root", "");
  fs.map("Size", "disk_total_mb");
  fs.map("AvailableSpace", "disk_free_mb");
  fs.map("ReadOnly", "");

  return map;
}

}  // namespace gridrm::drivers
