// ContinuousQueryEngine: the Gateway-owned registry of streaming SQL
// subscriptions.
//
// Producers (the SitePoller's refresh loop, the Event Manager's
// dispatcher, the Global layer's relay) push row batches in via
// onRows()/injectDelta(); the engine evaluates each registered query's
// WHERE clause and projection incrementally against the batch (reusing
// store::executeSelect, i.e. the same sql::eval machinery as one-shot
// queries) and enqueues the matching rows as a StreamDelta on that
// subscription's bounded queue.
//
// Two consumption models:
//  * push - subscribe with a DeltaConsumer: queued deltas are drained
//    to the callback on the producing thread right after enqueue.
//  * pull - subscribe without a consumer and call poll(id).
// Either way the bounded queue and its overflow policy sit between
// production and consumption, so a slow consumer can never wedge the
// harvesting loop unless it explicitly asked to (OverflowPolicy::Block).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/sql/ast.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/stream/continuous_query.hpp"

namespace gridrm::stream {

class ContinuousQueryEngine {
 public:
  using DeltaConsumer = std::function<void(const StreamDelta&)>;
  /// Hands a queued-delta drain off the producing thread (the Gateway
  /// submits it to its scheduler's Background lane). Returns false when
  /// the executor refused the work — the engine then drains inline, so
  /// delivery degrades to the producing thread instead of stalling.
  using Dispatcher = std::function<bool(std::function<void()>)>;

  /// `history` may be null (no replay-on-subscribe support).
  ContinuousQueryEngine(util::Clock& clock, StreamOptions defaults = {},
                        store::Database* history = nullptr);
  ~ContinuousQueryEngine();

  ContinuousQueryEngine(const ContinuousQueryEngine&) = delete;
  ContinuousQueryEngine& operator=(const ContinuousQueryEngine&) = delete;

  /// Route consumer drains through an external executor instead of the
  /// producing thread (a poller or event dispatcher no longer pays for
  /// slow consumers). Null restores inline delivery. The owner must
  /// clear or outlive the dispatcher's executor.
  void setDispatcher(Dispatcher dispatcher);

  /// Register a continuous query. `sourceUrl` restricts matching to one
  /// data source (exact URL or bare host; "" or "*" = every source).
  /// `consumer` may be null for pull-mode consumption via poll().
  /// Throws dbc::SqlError for malformed SQL and for aggregate/GROUP BY
  /// queries (no incremental aggregation yet).
  std::size_t subscribe(const std::string& sourceUrl, const std::string& sql,
                        DeltaConsumer consumer = nullptr,
                        std::optional<StreamOptions> options = std::nullopt);

  /// Register a passive subscription: never matched against onRows
  /// batches, fed exclusively through injectDelta. The Global layer
  /// uses this as the local endpoint of a relayed remote subscription.
  std::size_t subscribePassive(const std::string& label,
                               DeltaConsumer consumer = nullptr,
                               std::optional<StreamOptions> options =
                                   std::nullopt);

  /// Returns false when the id was not an active subscription.
  bool unsubscribe(std::size_t id);
  bool isActive(std::size_t id) const;
  std::size_t activeCount() const;

  /// Ingest a batch of rows for (sourceUrl, glue table). Every matching
  /// subscription's predicate/projection runs over the batch; matching
  /// rows are queued (and pushed, for callback subscriptions).
  void onRows(const std::string& sourceUrl, const std::string& table,
              const dbc::VectorResultSet& rows);
  void onRows(const std::string& sourceUrl, const std::string& table,
              const dbc::ResultSetMetaData& columns,
              const std::vector<std::vector<util::Value>>& rows);

  /// Queue an already-evaluated delta on one subscription (bypasses
  /// matching; used by the Global layer to deliver relayed deltas).
  /// Returns false when the subscription is unknown.
  bool injectDelta(std::size_t id, StreamDelta delta);

  /// Pull-mode consumption: pop up to `maxDeltas` queued deltas.
  std::vector<StreamDelta> poll(std::size_t id, std::size_t maxDeltas = 0);

  /// Number of deltas currently queued on a subscription (0 if unknown).
  std::size_t queueDepth(std::size_t id) const;

  StreamStats stats() const;

 private:
  struct Subscription {
    std::size_t id = 0;
    std::string sourceUrl;   // "" or "*" = any source
    std::string sourceHost;  // parsed host when sourceUrl is a URL
    std::string sqlText;
    sql::SelectStatement statement;  // unused for passive subscriptions
    bool passive = false;
    DeltaConsumer consumer;
    StreamOptions options;
    std::deque<StreamDelta> queue;
    std::condition_variable notFull;  // Block-policy producers wait here
    std::uint64_t nextSequence = 1;
    bool draining = false;  // a thread is delivering to the consumer
  };

  bool matches(const Subscription& sub, const std::string& sourceUrl,
               const std::string& table) const;
  /// Queue `delta` honouring the overflow policy. Caller holds `mu_`;
  /// the lock may be released while a Block-policy producer waits.
  /// Returns false when the subscription vanished while blocking.
  bool enqueueLocked(std::unique_lock<std::mutex>& lock, Subscription& sub,
                     StreamDelta delta);
  /// Drain the queue of a callback subscription, invoking the consumer
  /// outside the lock.
  void drainConsumer(std::size_t id);
  /// Schedule a drain through the dispatcher, falling back to an inline
  /// drain when no dispatcher is set or it refuses the task.
  void dispatchDrain(std::size_t id);
  void replayHistory(Subscription& sub);

  util::Clock& clock_;
  StreamOptions defaults_;
  store::Database* history_;
  Dispatcher dispatcher_;  // guarded by mu_

  mutable std::mutex mu_;
  std::map<std::size_t, std::unique_ptr<Subscription>> subscriptions_;
  std::size_t nextId_ = 1;
  bool shutdown_ = false;
  StreamStats stats_;
};

}  // namespace gridrm::stream
