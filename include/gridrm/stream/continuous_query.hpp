// Continuous-query (streaming SQL) primitives.
//
// R-GMA showed that continuous SQL queries are the natural GMA
// producer/consumer primitive: a consumer registers
//   SELECT ... FROM <glue-table> WHERE ...
// once, and the producer keeps pushing matching tuples as resource
// state changes. GridRM's Gateway gains that capability here: rows
// harvested by the SitePoller and events translated by the Event
// Manager are evaluated incrementally against every registered query,
// and matching rows are delivered as StreamDelta batches through
// bounded per-subscription queues with an explicit overflow policy.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/util/clock.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::stream {

/// What to do when a subscription's delta queue is full:
///  * DropOldest - shed the oldest queued delta (bounded staleness; the
///    producer never blocks). The push-based default.
///  * Block - the producing thread waits for the consumer to drain
///    (lossless, but a slow consumer back-pressures the poller).
///  * CancelSlowConsumer - terminate the subscription; the consumer is
///    expected to re-subscribe (R-GMA's "slow consumer" semantics).
enum class OverflowPolicy : std::uint8_t {
  DropOldest,
  Block,
  CancelSlowConsumer,
};

const char* overflowPolicyName(OverflowPolicy p) noexcept;
/// Parse "dropoldest" | "block" | "cancel"; nullopt on anything else.
std::optional<OverflowPolicy> overflowPolicyFromName(const std::string& name);

/// Per-subscription tuning. Engine-level defaults come from
/// `stream.*` gateway configuration keys (GatewayOptions::fromConfig).
struct StreamOptions {
  /// Maximum queued deltas per subscription.
  std::size_t queueCapacity = 256;
  OverflowPolicy overflow = OverflowPolicy::DropOldest;
  /// On subscribe, replay up to this many of the newest matching rows
  /// from the gateway's historical database (0 = no replay).
  std::size_t replayRows = 0;
};

/// One incremental batch of rows produced by a continuous query.
struct StreamDelta {
  /// Per-subscription delta number, starting at 1 (gaps reveal drops).
  std::uint64_t sequence = 0;
  /// Data-source URL the rows came from ("history" for replayed rows).
  std::string sourceUrl;
  /// The GLUE group (FROM table) the subscription targets.
  std::string table;
  util::TimePoint timestamp = 0;
  dbc::ResultSetMetaData columns;
  std::vector<std::vector<util::Value>> rows;
};

/// Counter block mirroring EventManagerStats.
struct StreamStats {
  std::uint64_t subscriptions = 0;    // ever registered
  std::uint64_t active = 0;           // currently registered
  std::uint64_t batchesIngested = 0;  // onRows calls accepted
  std::uint64_t rowsEvaluated = 0;    // rows run through predicates
  std::uint64_t deltasQueued = 0;
  std::uint64_t rowsQueued = 0;
  std::uint64_t deltasDelivered = 0;  // consumer callbacks + poll() pops
  std::uint64_t rowsDelivered = 0;
  std::uint64_t deltasDropped = 0;    // DropOldest evictions
  std::uint64_t rowsDropped = 0;
  std::uint64_t cancelledSlow = 0;    // CancelSlowConsumer terminations
  std::uint64_t rowsReplayed = 0;     // historical rows replayed
  std::uint64_t evalErrors = 0;       // batches a query failed against
};

}  // namespace gridrm::stream
