// GridRM driver development API (paper section 3.2.1: "a class to
// parse the SQL query strings, this is supplied as part of a GridRM
// driver development API").
//
// Shared by every data-source driver:
//  * ParsedQuery       - the SQL statement plus the attribute set the
//                        driver must actually fetch (projection + WHERE +
//                        ORDER BY columns), so fine-grained drivers can
//                        issue minimal native requests;
//  * GlueRowBuilder    - assembles GLUE-schema rows, inserting NULL for
//                        unavailable attributes (section 3.2.3);
//  * applyClauses()    - applies WHERE / projection / ORDER BY / LIMIT to
//                        fully fetched GLUE rows (shared relational tail);
//  * DriverContext     - the gateway facilities handed to drivers
//                        (network, clock, schema manager);
//  * ResponseCache     - per-connection TTL cache for coarse-grained
//                        sources (section 3.3: "implementations should
//                        address these issues by using caching policies
//                        within the plug-in").
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gridrm/dbc/driver.hpp"
#include "gridrm/dbc/result_set.hpp"
#include "gridrm/glue/schema_manager.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/sql/ast.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::drivers {

class PlanCache;

/// Facilities the gateway provides to driver plug-ins.
struct DriverContext {
  net::Network* network = nullptr;
  util::Clock* clock = nullptr;
  glue::SchemaManager* schemaManager = nullptr;
  /// Shared parsed-plan cache (see plan_cache.hpp); null = parse fresh.
  PlanCache* planCache = nullptr;
};

class ParsedQuery {
 public:
  /// Parse and validate a SELECT against the GLUE schema. Throws
  /// dbc::SqlError(Syntax) on bad SQL, (NoSuchTable) when the group is
  /// unknown to the schema.
  static ParsedQuery parse(const std::string& sqlText,
                           const glue::Schema& schema);

  const sql::SelectStatement& statement() const noexcept { return stmt_; }
  const glue::GroupDef& group() const noexcept { return *group_; }
  /// GLUE attribute names (original casing) the driver must fetch:
  /// everything when the query selects '*', otherwise the union of
  /// projected, filtered and ordering columns.
  const std::vector<std::string>& neededAttributes() const noexcept {
    return needed_;
  }
  bool needs(const std::string& attribute) const;

 private:
  sql::SelectStatement stmt_;
  const glue::GroupDef* group_ = nullptr;
  std::vector<std::string> needed_;
};

/// Collect every column name referenced by an expression tree.
void collectColumns(const sql::Expr& expr, std::set<std::string>& out);

/// Build rows shaped exactly like a GLUE group. Attributes never set
/// stay NULL, which is the paper-prescribed behaviour for data a source
/// cannot provide.
class GlueRowBuilder {
 public:
  explicit GlueRowBuilder(const glue::GroupDef& group);

  /// Start a new row (all NULLs).
  GlueRowBuilder& beginRow();
  /// Set an attribute in the current row; unknown names are ignored
  /// (the translation simply has nowhere to put the value).
  GlueRowBuilder& set(const std::string& attribute, util::Value value);
  /// Column descriptors matching the group definition.
  std::vector<dbc::ColumnInfo> columns() const;
  std::vector<std::vector<util::Value>> takeRows();

 private:
  const glue::GroupDef& group_;
  std::vector<std::vector<util::Value>> rows_;
};

/// Apply the relational tail of a query (WHERE / projection / ORDER BY /
/// LIMIT) to fetched GLUE rows.
std::unique_ptr<dbc::VectorResultSet> applyClauses(
    const sql::SelectStatement& stmt,
    const std::vector<dbc::ColumnInfo>& columns,
    const std::vector<std::vector<util::Value>>& rows);

/// TTL cache of one parsed native response (coarse-grained drivers).
template <typename T>
class ResponseCache {
 public:
  explicit ResponseCache(util::Clock& clock, util::Duration ttl)
      : clock_(clock), ttl_(ttl) {}

  /// nullptr when empty or expired.
  const T* get() const {
    if (!value_) return nullptr;
    if (ttl_ <= 0) return nullptr;  // caching disabled
    if (clock_.now() - storedAt_ > ttl_) return nullptr;
    return &*value_;
  }
  void put(T value) {
    value_ = std::move(value);
    storedAt_ = clock_.now();
  }
  void invalidate() { value_.reset(); }
  util::Duration ttl() const noexcept { return ttl_; }

 private:
  util::Clock& clock_;
  util::Duration ttl_;
  std::optional<T> value_;
  util::TimePoint storedAt_ = 0;
};

/// Shared skeleton: a connection bound to a URL that creates statements
/// via a factory lambda and tracks closed state.
class UrlConnection : public dbc::Connection {
 public:
  UrlConnection(util::Url url, DriverContext ctx)
      : url_(std::move(url)), ctx_(ctx) {}

  bool isValid() override { return !closed_; }
  void close() override { closed_ = true; }
  bool isClosed() const override { return closed_; }
  const util::Url& url() const override { return url_; }

 protected:
  void ensureOpen() const {
    if (closed_) {
      throw dbc::SqlError(dbc::ErrorCode::ConnectionClosed,
                          "connection to " + url_.text() + " is closed");
    }
  }

  util::Url url_;
  DriverContext ctx_;
  bool closed_ = false;
};

/// Resolve the driver's schema map or fail with a clear error; used at
/// connect time (Fig. 5: "Schema is cached when the connection is
/// created").
std::shared_ptr<const glue::DriverSchemaMap> requireDriverMap(
    const DriverContext& ctx, const std::string& driverName);

/// Map a NetError onto the corresponding SqlError.
[[noreturn]] void rethrowNetError(const net::NetError& e,
                                  const util::Url& url);

/// Unit/type conversion for translated values: multiply numerics by
/// `scale`, then coerce to the GLUE attribute type. NULL stays NULL;
/// untranslatable values become NULL (section 3.2.3).
util::Value convertScaled(const util::Value& v, double scale,
                          util::ValueType target);

}  // namespace gridrm::drivers
