// JDBC-SNMP driver (paper Fig. 3): fine-grained -- each query turns
// into one SNMP GET PDU carrying exactly the OIDs the GLUE attributes
// require, so "generally little or no parsing [is] required to read
// the native data value" (section 3.3).
//
// URL forms: jdbc:snmp://host[:161]/...  or  jdbc:://host:161/...
// URL params: community=<string> (default "public").
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class SnmpDriver final : public dbc::Driver {
 public:
  explicit SnmpDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "snmp"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  /// The GLUE mapping this driver ships with (OIDs per attribute);
  /// registered with the SchemaManager by registerDefaultDrivers().
  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
