// JDBC-NWS driver: serves the NetworkForecast GLUE group from a Network
// Weather Service sensor. Coarse-grained text responses (paper section
// 3.3 groups NWS with Ganglia), so the parsed forecasts are cached in
// the plug-in.
//
// URL forms: jdbc:nws://host[:8060]/...  or  jdbc:://host:8060/...
// URL params: cachems=<ms> (default 10000; 0 disables).
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class NwsDriver final : public dbc::Driver {
 public:
  explicit NwsDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "nws"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
