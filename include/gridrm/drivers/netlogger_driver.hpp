// JDBC-NetLogger driver: fine-grained -- each GLUE attribute maps to a
// ULM event stream and the driver tails exactly the events it needs,
// parsing single "NL.EVNT=... VAL=..." lines (paper section 3.3: "fine
// grained native requests for data are possible").
//
// URL forms: jdbc:netlogger://host[:14830]/...
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class NetLoggerDriver final : public dbc::Driver {
 public:
  explicit NetLoggerDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "netlogger"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
