// Registration of the default driver set (paper section 3.2.2: "Upon
// start-up, the GridRM Gateway registers a number of drivers that come
// as default with the site") together with each driver's GLUE schema
// map.
#pragma once

#include "gridrm/dbc/driver_registry.hpp"
#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

/// Register snmp, ganglia, nws, netlogger, scms and sql drivers with
/// `registry` and their schema maps with ctx.schemaManager.
void registerDefaultDrivers(dbc::DriverRegistry& registry,
                            const DriverContext& ctx);

}  // namespace gridrm::drivers
