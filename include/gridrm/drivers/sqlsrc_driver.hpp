// JDBC-SQL driver for GLUE-native relational sources: SQL in, rows out
// (paper section 3.2.3: sources that "already adhere to GLUE, in which
// case little or no further processing would be required"). The
// near-trivial size of this driver versus the others is itself a
// datapoint the paper's design argues for.
//
// URL forms: jdbc:sql://host[:4000]/...
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class SqlSourceDriver final : public dbc::Driver {
 public:
  explicit SqlSourceDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "sql"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  /// GLUE-native: the "map" is the identity on every group it serves.
  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
