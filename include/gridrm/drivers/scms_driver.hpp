// JDBC-SCMS driver: fine-grained "key: value" text per node; the driver
// enumerates cluster nodes (NODES) and STATs each one, producing one
// GLUE row per host.
//
// URL forms: jdbc:scms://master[:18800]/...
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class ScmsDriver final : public dbc::Driver {
 public:
  explicit ScmsDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "scms"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
