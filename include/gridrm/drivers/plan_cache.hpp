// PlanCache: the gateway-wide cache of parsed query plans (E14).
//
// Every driver re-lexed, re-parsed and re-bound the SQL text against
// the GLUE schema on every executeQuery — per poll, per hedge attempt,
// per coalesced client. The plan cache makes that work once per
// distinct SQL text:
//
//  * bound plans — ParsedQuery (SelectStatement + GLUE group binding +
//    needed-attribute set), keyed by SQL text and validated against the
//    SchemaManager's schema generation: a schema reload invalidates
//    every bound plan at once (they hold GroupDef pointers into the old
//    Schema);
//  * statements — schema-independent SelectStatement parses for callers
//    that need only the statement shape (the RequestManager's FGSL
//    group check, the SitePoller's stream-sink table name).
//
// Plans are immutable once published (shared_ptr<const ...>), so any
// number of threads can execute the same plan concurrently. Parse
// errors are not cached: bad SQL stays cheap to reject and never
// poisons the cache.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gridrm/drivers/driver_common.hpp"
#include "gridrm/sql/ast.hpp"
#include "gridrm/store/federated_planner.hpp"

namespace gridrm::drivers {

struct PlanCacheStats {
  std::uint64_t hits = 0;          // bound-plan hits
  std::uint64_t misses = 0;        // bound-plan misses (fresh parse+bind)
  std::uint64_t statementHits = 0;
  std::uint64_t statementMisses = 0;
  std::uint64_t federatedHits = 0;
  std::uint64_t federatedMisses = 0;
  std::uint64_t evictions = 0;     // capacity evictions (all kinds)
  std::uint64_t invalidations = 0; // schema-generation flushes
};

class PlanCache {
 public:
  /// `capacity` bounds each of the two plan maps (LRU beyond it).
  explicit PlanCache(std::size_t capacity = 256);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Parse + GLUE-bind through the cache. Throws exactly what
  /// ParsedQuery::parse throws (Syntax / NoSuchTable / NoSuchColumn).
  /// The plan is valid for the schema generation current at call time;
  /// a later setSchema() on the manager evicts it.
  std::shared_ptr<const ParsedQuery> parse(const std::string& sql,
                                           const glue::SchemaManager& schemas);

  /// Statement-only parse (no schema binding; never invalidated by
  /// schema reloads). Throws dbc::SqlError(Syntax) on bad SQL.
  std::shared_ptr<const sql::SelectStatement> statement(
      const std::string& sql);

  /// Federated decomposition through the cache: parse + GLUE-bind (so
  /// Syntax / NoSuchTable surface exactly like parse()), then derive
  /// the fragment/merge plan. Fragment plans are tied to the schema
  /// generation like bound plans: a setSchema() on any participating
  /// site flushes them, so stale fragments can never be dispatched
  /// against a reloaded schema.
  std::shared_ptr<const store::FederatedPlan> federated(
      const std::string& sql, const glue::SchemaManager& schemas);

  void clear();
  PlanCacheStats stats() const;
  std::size_t size() const;

 private:
  template <typename T>
  struct LruMap {
    struct Node {
      std::shared_ptr<const T> plan;
      std::list<std::string>::iterator lruIt;
    };
    std::map<std::string, Node> entries;
    std::list<std::string> lru;  // front = most recent

    std::shared_ptr<const T> get(const std::string& key);
    void put(const std::string& key, std::shared_ptr<const T> plan,
             std::size_t capacity, std::uint64_t& evictions);
    void clear() {
      entries.clear();
      lru.clear();
    }
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  LruMap<ParsedQuery> bound_;
  LruMap<sql::SelectStatement> statements_;
  LruMap<store::FederatedPlan> federated_;
  /// Schema generation the bound plans were built against.
  std::uint64_t boundGeneration_ = 0;
  PlanCacheStats stats_;
};

/// Parse `sql` through the context's shared PlanCache when the gateway
/// provided one, else fall back to a fresh ParsedQuery::parse against
/// the context's schema (the builtin GLUE subset when the context has
/// no SchemaManager). This is the entry point every driver uses.
std::shared_ptr<const ParsedQuery> parseQuery(const std::string& sql,
                                              const DriverContext& ctx);

}  // namespace gridrm::drivers
