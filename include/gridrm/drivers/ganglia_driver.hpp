// JDBC-Ganglia driver (paper Fig. 3): coarse-grained -- every native
// request returns the whole cluster as XML, so the driver parses a
// large document and caches the parsed snapshot inside the plug-in
// (section 3.3's prescribed mitigation).
//
// URL forms: jdbc:ganglia://head[:8649]/...  or  jdbc:://head:8649/...
// URL params: cachems=<ms> response-cache TTL (default 15000; 0 disables).
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class GangliaDriver final : public dbc::Driver {
 public:
  explicit GangliaDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "ganglia"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
