// JDBC-MDS driver: serves GLUE groups from an LDAP-flavoured MDS/GRIS
// information service (the GLUE-LDAP implementation path the paper's
// section 3.1.4 cites). Coarse-ish: one subtree SEARCH returns every
// host entry; the parsed entries are cached in the plug-in like the
// other coarse drivers.
//
// URL forms: jdbc:mds://gris[:2135]/...
// URL params: cachems=<ms> (default 15000; 0 disables).
#pragma once

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

class MdsDriver final : public dbc::Driver {
 public:
  explicit MdsDriver(DriverContext ctx) : ctx_(ctx) {}

  std::string name() const override { return "mds"; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  static glue::DriverSchemaMap defaultSchemaMap();

 private:
  DriverContext ctx_;
};

}  // namespace gridrm::drivers
