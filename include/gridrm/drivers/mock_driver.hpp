// MockDriver: a configurable in-process driver used by unit tests and
// by the failure-policy experiment (E8). It serves canned GLUE rows
// without touching the network and can be scripted to fail at
// acceptsUrl / connect / query time.
#pragma once

#include <atomic>
#include <memory>

#include "gridrm/drivers/driver_common.hpp"

namespace gridrm::drivers {

struct MockBehaviour {
  std::string name = "mock";
  /// Subprotocols this driver claims; empty-string entry means it also
  /// claims URLs with no subprotocol.
  std::vector<std::string> accepts = {"mock"};
  bool failConnect = false;
  /// When > 0, every Nth connect attempt fails (deterministic fault
  /// injection for the failure-policy experiment E8).
  std::size_t failConnectEveryN = 0;
  /// Fail the Nth query onward (SIZE_MAX = never fail).
  std::size_t failQueriesFrom = SIZE_MAX;
  /// Artificial connect latency charged to the clock.
  util::Duration connectLatencyUs = 0;
  /// Per-query artificial latency charged to the clock.
  util::Duration queryLatencyUs = 0;
  /// Scripted per-call latency: query call K (1-based) uses entry K-1;
  /// calls past the end of the schedule fall back to queryLatencyUs.
  std::vector<util::Duration> queryDelaySchedule;
  /// Scripted per-call failure: query call K (1-based) fails iff entry
  /// K-1 is true; calls past the end fall back to failQueriesFrom.
  std::vector<bool> failQuerySchedule;
  /// When true, a query's latency parks the calling thread until the
  /// injected clock actually reaches the wake-up time (or the driver's
  /// releaseBlockedQueries() is called) instead of charging sleepFor.
  /// Under SimClock this turns latency into a real hang that tests
  /// resolve by advancing the clock from another thread — the basis of
  /// the deterministic slow-source scenarios.
  bool blockOnDelay = false;
  /// Rows served for any query against the Processor group.
  double load1 = 0.5;
  std::string hostName = "mockhost";
};

class MockDriver final : public dbc::Driver {
 public:
  MockDriver(DriverContext ctx, MockBehaviour behaviour)
      : ctx_(ctx), behaviour_(std::move(behaviour)) {}

  std::string name() const override { return behaviour_.name; }
  bool acceptsUrl(const util::Url& url) const override;
  std::unique_ptr<dbc::Connection> connect(const util::Url& url,
                                           const util::Config& props) override;

  // Counters observable by tests.
  std::size_t connectCalls() const noexcept { return connectCalls_; }
  std::size_t queryCalls() const noexcept { return queryCalls_; }
  std::size_t acceptProbes() const noexcept { return acceptProbes_; }

  MockBehaviour& behaviour() noexcept { return behaviour_; }

  /// Unpark every query currently blocked in blockOnDelay (teardown
  /// escape hatch so worker pools can join).
  void releaseBlockedQueries() noexcept { released_.store(true); }
  /// Re-arm blocking after releaseBlockedQueries().
  void resetRelease() noexcept { released_.store(false); }

  // Internal hooks for the statement implementation.
  std::size_t noteQuery() noexcept { return ++queryCalls_; }
  DriverContext& context() noexcept { return ctx_; }
  /// Park the calling thread until the clock reaches `wakeAt`, the
  /// driver is released, or a hard real-time cap expires.
  void blockUntil(util::Clock& clock, util::TimePoint wakeAt) const;

 private:
  DriverContext ctx_;
  MockBehaviour behaviour_;
  mutable std::atomic<std::size_t> acceptProbes_{0};
  std::atomic<std::size_t> connectCalls_{0};
  std::atomic<std::size_t> queryCalls_{0};
  std::atomic<bool> released_{false};
};

}  // namespace gridrm::drivers
