// Simulated network substrate.
//
// The paper's gateways and agents talk over campus/wide-area IP. Here
// every endpoint (agent, gateway, directory) binds an Address on an
// in-process Network whose links have deterministic latency, jitter and
// loss models driven by a seeded RNG and the injected Clock. This keeps
// the protocol code paths (request/response framing, timeouts, traps as
// datagrams) while making every experiment reproducible.
//
// Per-endpoint request counters are the "resource intrusion" metric of
// experiment E4 (paper section 4: a gateway cache "limit[s] resource
// intrusion").
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "gridrm/util/clock.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::net {

struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string toString() const { return host + ":" + std::to_string(port); }
  static Address parse(const std::string& text);

  auto operator<=>(const Address&) const = default;
};

using Payload = std::string;

enum class NetErrorKind { Unreachable, Timeout };

class NetError : public std::runtime_error {
 public:
  NetError(NetErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  NetErrorKind kind() const noexcept { return kind_; }

 private:
  NetErrorKind kind_;
};

/// An endpoint's protocol handler. Handlers are invoked synchronously on
/// the caller's thread (the simulation collapses transport + service
/// time into the link model) and must be thread-safe if the endpoint can
/// be reached from multiple client threads.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual Payload handleRequest(const Address& from, const Payload& request) = 0;
  /// One-way messages (SNMP traps, event notifications). Default: ignore.
  virtual void handleDatagram(const Address& /*from*/, const Payload& /*body*/) {}
};

/// Symmetric link characteristics between two hosts.
struct LinkModel {
  util::Duration latencyUs = 200;  // one-way propagation + service
  util::Duration jitterUs = 0;     // uniform [0, jitterUs)
  double lossProbability = 0.0;    // per round-trip
};

struct EndpointStats {
  std::uint64_t requestsServed = 0;
  std::uint64_t datagramsReceived = 0;
  /// Datagrams addressed here that vanished (link loss, host down or
  /// nothing bound): attempted = datagramsReceived + datagramsDropped.
  std::uint64_t datagramsDropped = 0;
  std::uint64_t bytesIn = 0;
  std::uint64_t bytesOut = 0;
};

class Network {
 public:
  explicit Network(util::Clock& clock, std::uint64_t seed = 1)
      : clock_(clock), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `handler` (non-owning; must outlive the binding) to `addr`.
  void bind(const Address& addr, RequestHandler* handler);
  void unbind(const Address& addr);
  bool isBound(const Address& addr) const;

  void setDefaultLink(const LinkModel& link);
  /// Symmetric per-host-pair override.
  void setLink(const std::string& hostA, const std::string& hostB,
               const LinkModel& link);
  /// Mark a host unreachable (failure injection); datagrams to it vanish,
  /// requests throw NetError(Unreachable).
  void setHostDown(const std::string& host, bool down);

  /// Synchronous request/response. Charges one round trip of link
  /// latency to the Clock. Throws NetError on loss (Timeout, after
  /// charging `timeoutUs`) or when the destination is unbound/down.
  Payload request(const Address& from, const Address& to, const Payload& body,
                  util::Duration timeoutUs = 500 * util::kMillisecond);

  /// Fire-and-forget datagram; silently dropped on loss or dead host.
  void datagram(const Address& from, const Address& to, const Payload& body);

  EndpointStats stats(const Address& addr) const;
  void resetStats();
  std::uint64_t totalRequests() const;
  /// Datagrams attempted network-wide (delivered + dropped).
  std::uint64_t totalDatagrams() const;

  /// The clock every endpoint on this network shares (lets protocol
  /// helpers like DirectoryClient back off in simulated time).
  util::Clock& clock() noexcept { return clock_; }

 private:
  LinkModel linkFor(const std::string& a, const std::string& b) const;
  util::Duration sampleLatency(const LinkModel& link);

  util::Clock& clock_;
  mutable std::mutex mu_;
  util::Rng rng_;
  std::map<Address, RequestHandler*> endpoints_;
  std::map<Address, EndpointStats> stats_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  std::map<std::string, bool> hostDown_;
  LinkModel defaultLink_;
  std::uint64_t totalRequests_ = 0;
  std::uint64_t totalDatagrams_ = 0;
};

}  // namespace gridrm::net
