// Simulated network substrate.
//
// The paper's gateways and agents talk over campus/wide-area IP. Here
// every endpoint (agent, gateway, directory) binds an Address on an
// in-process Network whose links have deterministic latency, jitter and
// loss models driven by a seeded RNG and the injected Clock. This keeps
// the protocol code paths (request/response framing, timeouts, traps as
// datagrams) while making every experiment reproducible.
//
// Per-endpoint request counters are the "resource intrusion" metric of
// experiment E4 (paper section 4: a gateway cache "limit[s] resource
// intrusion").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "gridrm/util/clock.hpp"
#include "gridrm/util/event_scheduler.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::net {

struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string toString() const { return host + ":" + std::to_string(port); }
  static Address parse(const std::string& text);

  auto operator<=>(const Address&) const = default;
};

using Payload = std::string;

enum class NetErrorKind { Unreachable, Timeout };

class NetError : public std::runtime_error {
 public:
  NetError(NetErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}
  NetErrorKind kind() const noexcept { return kind_; }

 private:
  NetErrorKind kind_;
};

/// An endpoint's protocol handler. Handlers are invoked synchronously on
/// the caller's thread (the simulation collapses transport + service
/// time into the link model) and must be thread-safe if the endpoint can
/// be reached from multiple client threads.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual Payload handleRequest(const Address& from, const Payload& request) = 0;
  /// One-way messages (SNMP traps, event notifications). Default: ignore.
  virtual void handleDatagram(const Address& /*from*/, const Payload& /*body*/) {}
};

/// Symmetric link characteristics between two hosts.
struct LinkModel {
  util::Duration latencyUs = 200;  // one-way propagation + service
  util::Duration jitterUs = 0;     // uniform [0, jitterUs)
  double lossProbability = 0.0;    // per round-trip
};

struct EndpointStats {
  std::uint64_t requestsServed = 0;
  /// Requests addressed here that failed to complete (lost round trip,
  /// host down, or nothing bound): the endpoint-side view a replicated
  /// client's failover counters are checked against.
  std::uint64_t requestsFailed = 0;
  std::uint64_t datagramsReceived = 0;
  /// Datagrams addressed here that vanished (link loss, host down or
  /// nothing bound): attempted = datagramsReceived + datagramsDropped.
  std::uint64_t datagramsDropped = 0;
  std::uint64_t bytesIn = 0;
  std::uint64_t bytesOut = 0;
};

/// Completion of an asynchronous request: either a response payload or
/// a NetError-shaped failure, delivered at the simulated instant the
/// answer (or timeout) would have arrived.
struct AsyncOutcome {
  Payload response;
  std::optional<NetErrorKind> error;
  std::string message;

  bool ok() const noexcept { return !error.has_value(); }
};

using ResponseCallback = std::function<void(const AsyncOutcome&)>;

class Network {
 public:
  explicit Network(util::Clock& clock, std::uint64_t seed = 1)
      : clock_(clock), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Bind `handler` (non-owning; must outlive the binding) to `addr`.
  void bind(const Address& addr, RequestHandler* handler);
  void unbind(const Address& addr);
  bool isBound(const Address& addr) const;

  void setDefaultLink(const LinkModel& link);
  /// Symmetric per-host-pair override.
  void setLink(const std::string& hostA, const std::string& hostB,
               const LinkModel& link);
  /// Mark a host unreachable (failure injection); datagrams to it vanish,
  /// requests throw NetError(Unreachable).
  void setHostDown(const std::string& host, bool down);

  /// Attach a discrete-event scheduler (the sim EventLoop): latency,
  /// jitter and loss stop being charged synchronously and become
  /// scheduled delivery events instead — requestAsync completes at the
  /// simulated arrival instant, datagrams deliver one one-way latency
  /// after the send, and the synchronous request() wrapper accumulates
  /// its round trip into a drainable per-process charge instead of
  /// advancing the clock (the loop is the only time writer). Pass
  /// nullptr to detach and restore the legacy synchronous behavior.
  void attachScheduler(util::EventScheduler* scheduler) noexcept {
    scheduler_.store(scheduler, std::memory_order_release);
  }
  bool eventDriven() const noexcept {
    return scheduler_.load(std::memory_order_acquire) != nullptr;
  }

  /// Synchronous request/response. Charges one round trip of link
  /// latency to the Clock (or to the async-mode latency charge, see
  /// attachScheduler). Throws NetError on loss (Timeout, after
  /// charging `timeoutUs`) or when the destination is unbound/down.
  /// With a scheduler attached this is a thin wrapper over the same
  /// link model as requestAsync, kept so threaded/live call sites
  /// (drivers, gateways) keep working unchanged.
  Payload request(const Address& from, const Address& to, const Payload& body,
                  util::Duration timeoutUs = 500 * util::kMillisecond);

  /// Asynchronous request/response on the attached scheduler: the
  /// request arrives at the destination after one one-way latency
  /// (where the handler runs, re-checking reachability so faults
  /// injected mid-flight count), the response arrives one more one-way
  /// later, and `onComplete` fires at that instant — or at
  /// now+timeoutUs with a Timeout outcome when the round trip is lost
  /// or the destination host is down. An unbound port completes with
  /// Unreachable after the first one-way trip (connection refused).
  /// Without a scheduler attached this degrades to the synchronous
  /// path and invokes `onComplete` before returning.
  void requestAsync(const Address& from, const Address& to,
                    const Payload& body, ResponseCallback onComplete,
                    util::Duration timeoutUs = 500 * util::kMillisecond);

  /// Fire-and-forget datagram; silently dropped on loss or dead host.
  /// With a scheduler attached, delivery happens one one-way latency
  /// later as a scheduled event.
  void datagram(const Address& from, const Address& to, const Payload& body);

  /// Total simulated latency charged by synchronous request() calls in
  /// async mode since the last drain, process-wide across every thread
  /// (a gateway answering one simulated client may fan out across its
  /// worker pool). Returns the accumulated charge and resets it to
  /// zero; the perf-study harness drains it around each simulated
  /// operation to price that operation's network time.
  static util::Duration drainChargedLatency() noexcept {
    return chargedLatency_.exchange(0, std::memory_order_acq_rel);
  }

  EndpointStats stats(const Address& addr) const;
  void resetStats();
  std::uint64_t totalRequests() const;
  /// Datagrams attempted network-wide (delivered + dropped).
  std::uint64_t totalDatagrams() const;

  /// The clock every endpoint on this network shares (lets protocol
  /// helpers like DirectoryClient back off in simulated time).
  util::Clock& clock() noexcept { return clock_; }

 private:
  /// In-flight async request state (guards the completion/timeout race;
  /// touched only from the scheduler's single driving thread).
  struct PendingRequest {
    ResponseCallback onComplete;
    util::EventId timeoutId = 0;
    bool done = false;
  };

  LinkModel linkFor(const std::string& a, const std::string& b) const;
  util::Duration sampleLatency(const LinkModel& link);
  /// Charge `us` of simulated time: sleep the clock (sync mode) or
  /// accumulate into the drainable charge (async mode).
  void chargeOrSleep(util::Duration us);

  util::Clock& clock_;
  std::atomic<util::EventScheduler*> scheduler_{nullptr};
  static std::atomic<util::Duration> chargedLatency_;
  mutable std::mutex mu_;
  util::Rng rng_;
  std::map<Address, RequestHandler*> endpoints_;
  std::map<Address, EndpointStats> stats_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  std::map<std::string, bool> hostDown_;
  LinkModel defaultLink_;
  std::uint64_t totalRequests_ = 0;
  std::uint64_t totalDatagrams_ = 0;
};

}  // namespace gridrm::net
