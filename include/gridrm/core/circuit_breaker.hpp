// Slow-source isolation: per-data-source circuit breakers and latency
// tracking for the query path.
//
// The paper's failure policies (section 3.1.3: retry-n, try-next,
// report) recover from sources that fail *fast*; nothing in the local
// layer bounds a source that is merely *slow*. The breaker makes
// per-source responsiveness first-class gateway state: a source that
// keeps failing or timing out is "opened" and skipped cheaply (reported
// as degraded) instead of being hammered, then probed again after a
// cooldown on the injected Clock so recovery is automatic and
// deterministic under simulation.
//
// State machine (per source URL):
//
//   Closed ──(failureThreshold consecutive failures/timeouts)──> Open
//   Open ──(cooldown elapsed; next request becomes the probe)──> HalfOpen
//   HalfOpen ──(probe succeeds)──> Closed
//   HalfOpen ──(probe fails)────> Open (cooldown restarts)
//
// Alongside the breaker each source carries a latency EWMA plus a
// deviation EWMA; p95 is estimated as ewma + 3*deviation and drives
// the auto-hedging delay in the RequestManager.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/util/clock.hpp"

namespace gridrm::core {

struct CircuitBreakerOptions {
  /// Consecutive failures/timeouts that trip the breaker; 0 disables
  /// breakers entirely (every request is allowed, nothing is recorded
  /// as state transitions, but latency is still tracked).
  std::size_t failureThreshold = 0;
  /// How long an open breaker rejects requests before the next request
  /// is let through as a half-open probe.
  util::Duration cooldown = 30 * util::kSecond;
  /// Smoothing factor for the latency/deviation EWMAs (0 < alpha <= 1).
  double latencyAlpha = 0.2;
};

enum class BreakerState : std::uint8_t { Closed, Open, HalfOpen };

const char* breakerStateName(BreakerState state) noexcept;

/// Introspection record for one source (gateway ACIL `sourceHealth`).
struct SourceHealthSnapshot {
  std::string url;
  BreakerState state = BreakerState::Closed;
  std::size_t consecutiveFailures = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;   // includes deadline misses
  std::uint64_t opens = 0;      // times the breaker tripped
  std::uint64_t skips = 0;      // requests rejected while open
  util::Duration ewmaLatency = 0;  // µs; 0 = no completed request yet
  util::Duration p95Latency = 0;   // ewma + 3*deviation estimate
};

/// One source's breaker state machine plus latency statistics.
/// Thread-safe; time comes from the injected Clock so the cooldown is
/// deterministic under SimClock.
class CircuitBreaker {
 public:
  CircuitBreaker(CircuitBreakerOptions options, util::Clock& clock)
      : options_(options), clock_(clock) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Gate a request. Closed: always true. Open: false until the
  /// cooldown elapses, after which the first caller transitions the
  /// breaker to HalfOpen and claims the probe. HalfOpen: false while a
  /// probe is in flight (a probe older than one cooldown is presumed
  /// lost and its slot is re-claimed).
  bool allowRequest();

  /// Pure read: would allowRequest() currently reject? Lets pollers
  /// skip open sources without accidentally claiming the probe slot.
  bool wouldReject() const;

  /// Record a completed request. `latency` feeds the EWMAs.
  void recordSuccess(util::Duration latency);
  /// Record a connection-class failure or deadline miss.
  void recordFailure();

  BreakerState state() const;
  /// Estimated hedge delay: p95 latency, floored at `floor`; 0 when no
  /// request has completed yet (no basis for hedging).
  util::Duration hedgeDelay(util::Duration floor) const;

  SourceHealthSnapshot snapshot() const;  // url left empty

 private:
  CircuitBreakerOptions options_;
  util::Clock& clock_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::Closed;
  std::size_t consecutiveFailures_ = 0;
  util::TimePoint openedAt_ = 0;
  bool probeInFlight_ = false;
  util::TimePoint probeStartedAt_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t opens_ = 0;
  std::uint64_t skips_ = 0;
  double ewmaLatency_ = 0.0;    // µs
  double ewmaDeviation_ = 0.0;  // mean absolute deviation, µs
  bool haveLatency_ = false;
};

/// The per-source-URL breaker map the RequestManager owns and the
/// SitePoller consults. Breakers are created on first sight of a URL
/// and live for the registry's lifetime.
class SourceHealthRegistry {
 public:
  SourceHealthRegistry(util::Clock& clock, CircuitBreakerOptions options)
      : clock_(clock), options_(options) {}

  SourceHealthRegistry(const SourceHealthRegistry&) = delete;
  SourceHealthRegistry& operator=(const SourceHealthRegistry&) = delete;

  const CircuitBreakerOptions& options() const noexcept { return options_; }
  bool enabled() const noexcept { return options_.failureThreshold > 0; }

  /// Gate a request to `url` (see CircuitBreaker::allowRequest).
  bool allowRequest(const std::string& url);
  /// Pure read: is `url` currently rejected (open / probe in flight)?
  bool wouldReject(const std::string& url) const;

  void recordSuccess(const std::string& url, util::Duration latency);
  void recordFailure(const std::string& url);

  BreakerState state(const std::string& url) const;
  /// EWMA-derived hedge delay for `url`; 0 = no data yet.
  util::Duration suggestedHedgeDelay(const std::string& url,
                                     util::Duration floor) const;

  /// Snapshot every known source, sorted by URL.
  std::vector<SourceHealthSnapshot> snapshot() const;

 private:
  CircuitBreaker& breakerFor(const std::string& url);
  const CircuitBreaker* findBreaker(const std::string& url) const;

  util::Clock& clock_;
  CircuitBreakerOptions options_;
  mutable std::mutex mu_;  // guards the map, not the breakers
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace gridrm::core
