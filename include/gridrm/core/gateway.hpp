// The GridRM Gateway (paper Figs. 2 and 3): the per-site access point
// that wires together the Abstract Client Interface Layer, the two
// security layers, request handling, connection pooling, driver
// management, schema services, eventing, caching and the internal
// historical database.
//
// The public methods form the ACIL: clients open a session, then submit
// SQL, subscribe to events or administer drivers through their token.
// Every entry point enforces the Coarse Grained Security Layer; the
// query path additionally passes the Fine Grained Security Layer inside
// the RequestManager.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gridrm/core/cache_controller.hpp"
#include "gridrm/core/connection_manager.hpp"
#include "gridrm/core/driver_manager.hpp"
#include "gridrm/core/event_manager.hpp"
#include "gridrm/core/request_manager.hpp"
#include "gridrm/core/scheduler.hpp"
#include "gridrm/core/security.hpp"
#include "gridrm/core/session_manager.hpp"
#include "gridrm/drivers/driver_common.hpp"
#include "gridrm/drivers/plan_cache.hpp"
#include "gridrm/glue/schema_manager.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/sql/vec/engine.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/store/tsdb/tsdb.hpp"
#include "gridrm/stream/continuous_query_engine.hpp"

namespace gridrm::core {

struct GatewayOptions {
  std::string name = "gateway";
  /// Network host this gateway's endpoints (event sink, global-layer
  /// servlet) bind on.
  std::string host = "gateway.local";
  util::Duration cacheTtl = 5 * util::kSecond;
  std::size_t cacheMaxEntries = 4096;
  /// Result-cache lock shards (E14): concurrent clients on different
  /// keys never contend on one global mutex.
  std::size_t cacheShards = 16;
  std::size_t poolMaxIdlePerSource = 4;
  /// Probe pooled connections (isValid) before reuse. Safe default; for
  /// fine-grained sources the probe costs a full round trip, doubling
  /// per-query latency (see bench_gateway_overhead), so latency-critical
  /// deployments may prefer lazy validation (poisoned-on-failure).
  bool validatePooledConnections = true;
  std::size_t queryWorkers = 4;
  /// Workers in the gateway-wide priority scheduler (fan-out attempts,
  /// site polls, stream delta dispatch, global relay). 0 = inherit
  /// queryWorkers.
  std::size_t schedulerWorkers = 0;
  /// Admission bound per scheduler lane: beyond this depth, Background
  /// work defers to the next tick and Interactive work fails fast with
  /// ErrorCode::Overloaded.
  std::size_t schedulerMaxQueueDepth = 512;
  /// Percentage of contended dispatch slots granted to Background work
  /// (anti-starvation weight; 0 = strict priority).
  std::size_t schedulerBackgroundShare = 25;
  /// Default per-source deadline for real-time queries; 0 = unbounded.
  util::Duration queryDeadline = 0;
  /// Default hedge delay; 0 = off, kHedgeAuto = per-source EWMA p95.
  util::Duration queryHedgeDelay = 0;
  /// Coalesce concurrent identical cache misses into one source request.
  bool coalesceQueries = true;
  /// Parsed-plan cache entries per plan kind (0 still keeps one entry).
  std::size_t planCacheCapacity = 256;
  /// Per-source circuit breakers (failureThreshold 0 = disabled).
  CircuitBreakerOptions breaker;
  bool registerDefaultDrivers = true;
  FailurePolicy failurePolicy;
  EventManagerOptions eventOptions;
  /// Defaults for continuous-query subscriptions (the stream subsystem).
  stream::StreamOptions streamOptions;
  util::Duration sessionIdleTimeout = 30 * 60 * util::kSecond;
  /// Columnar historical store (tsdb.* keys). When enabled, history
  /// tables recorded by polls/queries live in compressed time-partitioned
  /// segments with tiered rollups instead of the row store.
  store::tsdb::TsdbOptions tsdb;
  /// Retention window for history/event tables applied by
  /// enforceRetention(); 0 = keep everything (caller-managed).
  util::Duration storeRetention = 0;

  /// Build options from a parsed policy file (the "Gateway Policy and
  /// Schemas" store of Fig. 2). Recognised keys (all optional):
  ///   gateway.name, gateway.host,
  ///   cache.ttl_ms, cache.max_entries, cache.shards,
  ///   pool.max_idle, pool.validate,
  ///   query.workers, query.deadline_ms, query.hedge_delay_ms ("auto"
  ///   derives the delay from each source's latency EWMA),
  ///   query.coalesce (single-flight identical cache misses),
  ///   scheduler.workers (defaults to query.workers),
  ///   scheduler.max_queue_depth, scheduler.background_share,
  ///   plan_cache.capacity,
  ///   breaker.failure_threshold, breaker.cooldown_ms,
  ///   drivers.register_defaults,
  ///   events.buffer_capacity, events.drop_newest, events.record_history,
  ///   stream.queue_capacity (deltas buffered per subscription),
  ///   stream.overflow (dropoldest|block|cancel),
  ///   stream.replay_rows (historical rows replayed on subscribe),
  ///   failure.action (report|retry|trynext|dynamic), failure.retries,
  ///   session.idle_timeout_s,
  ///   store.retention_ms (history retention for enforceRetention),
  ///   tsdb.* (see store::tsdb::TsdbOptions::fromConfig)
  static GatewayOptions fromConfig(const util::Config& config);
};

/// Port the gateway's event sink (trap receiver) binds on.
inline constexpr std::uint16_t kGatewayEventPort = 162;

class Gateway {
 public:
  Gateway(net::Network& network, util::Clock& clock, GatewayOptions options);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  const std::string& name() const noexcept { return options_.name; }
  const GatewayOptions& options() const noexcept { return options_; }
  net::Address eventAddress() const {
    return {options_.host, kGatewayEventPort};
  }

  // --- ACIL: sessions -------------------------------------------------
  std::string openSession(Principal principal);
  void closeSession(const std::string& token);

  // --- ACIL: queries --------------------------------------------------
  /// Real-time query against explicit data sources.
  QueryResult submitQuery(const std::string& token,
                          const std::vector<std::string>& urls,
                          const std::string& sql,
                          const QueryOptions& options = {});
  /// Real-time query against every data source registered at this
  /// gateway (Fig. 6's site view).
  QueryResult submitSiteQuery(const std::string& token, const std::string& sql,
                              const QueryOptions& options = {});
  std::unique_ptr<dbc::VectorResultSet> submitHistoricalQuery(
      const std::string& token, const std::string& sql);
  /// Introspect the slow-source isolation layer: per-source breaker
  /// state, failure counters and latency EWMAs.
  std::vector<SourceHealthSnapshot> sourceHealth(const std::string& token);
  /// Introspect the gateway-wide scheduler: per-lane queue depth, wait
  /// times, executed/cancelled/rejected counters.
  SchedulerStats schedulerStats(const std::string& token);
  /// Introspect the columnar historical store: ingest/seal counters,
  /// per-tier row counts, compression ratio and tier-hit counters.
  /// Returns zeros when the tsdb is disabled.
  store::tsdb::TsdbStats tsdbStats(const std::string& token);
  /// Introspect the vectorized SQL engine: statements executed
  /// vectorized, interpreter fallbacks, batches and rows processed.
  /// (Process-wide counters: every executeSelect in this process
  /// contributes.)
  sql::vec::VecEngineStats vecEngineStats(const std::string& token);

  // --- ACIL: events ---------------------------------------------------
  std::size_t subscribeEvents(const std::string& token,
                              const std::string& pattern,
                              EventManager::Listener listener);
  void unsubscribeEvents(const std::string& token, std::size_t id);

  // --- ACIL: continuous queries (streaming SQL) -----------------------
  /// Register a continuous query over one data source ("" or "*" = every
  /// source at this gateway). Rows harvested by pollers and events
  /// translated by the Event Manager (pseudo-table "Events") that match
  /// the query are pushed to `consumer` as StreamDelta batches; pass a
  /// null consumer to poll the subscription's queue instead (see
  /// streamEngine().poll).
  std::size_t subscribeQuery(const std::string& token, const std::string& url,
                             const std::string& sql,
                             stream::ContinuousQueryEngine::DeltaConsumer
                                 consumer = nullptr,
                             std::optional<stream::StreamOptions> options =
                                 std::nullopt);
  void unsubscribeQuery(const std::string& token, std::size_t id);
  stream::StreamStats streamStats() const { return streamEngine_.stats(); }

  // --- ACIL: driver administration (paper section 4 / Fig. 8) ---------
  void registerDriver(const std::string& token,
                      std::shared_ptr<dbc::Driver> driver);
  void registerDriver(const std::string& token,
                      std::shared_ptr<dbc::Driver> driver,
                      glue::DriverSchemaMap schemaMap);
  bool unregisterDriver(const std::string& token, const std::string& name);
  std::vector<std::string> listDrivers(const std::string& token) const;
  void setDriverPreference(const std::string& token, const std::string& url,
                           std::vector<std::string> driverNames);
  void setFailurePolicy(const std::string& token, const FailurePolicy& policy);

  // --- ACIL: data-source management (Fig. 6: add/remove sources) ------
  void addDataSource(const std::string& token, const std::string& url);
  void removeDataSource(const std::string& token, const std::string& url);
  std::vector<std::string> dataSources() const;

  /// Apply the configured retention policy (store.retention_ms) to the
  /// history/event tables and run tsdb tier maintenance (rollup bucket
  /// sealing + per-tier TTL eviction). Returns rows dropped.
  std::size_t enforceRetention();

  // --- component access (tests, benchmarks, the Global layer) ---------
  glue::SchemaManager& schemaManager() noexcept { return schemaManager_; }
  dbc::DriverRegistry& driverRegistry() noexcept { return registry_; }
  GridRmDriverManager& driverManager() noexcept { return driverManager_; }
  ConnectionManager& connectionManager() noexcept { return connections_; }
  CacheController& cache() noexcept { return cache_; }
  drivers::PlanCache& planCache() noexcept { return planCache_; }
  EventManager& eventManager() noexcept { return *eventManager_; }
  stream::ContinuousQueryEngine& streamEngine() noexcept {
    return streamEngine_;
  }
  RequestManager& requestManager() noexcept { return *requestManager_; }
  Scheduler& scheduler() noexcept { return *scheduler_; }
  SessionManager& sessionManager() noexcept { return sessions_; }
  store::Database& database() noexcept { return db_; }
  /// Null when tsdb.enabled = false.
  store::tsdb::TimeSeriesStore* timeSeriesStore() noexcept {
    return tsdb_.get();
  }
  CoarseSecurityLayer& coarseSecurity() noexcept { return cgsl_; }
  FineSecurityLayer& fineSecurity() noexcept { return fgsl_; }
  net::Network& network() noexcept { return network_; }
  util::Clock& clock() noexcept { return clock_; }
  drivers::DriverContext driverContext() noexcept;

  /// Resolve a session or throw SecurityDenied, enforcing `op` at the
  /// coarse layer. Public so the Global layer can authenticate relayed
  /// requests the same way local clients are.
  Principal authorize(const std::string& token, Operation op);

 private:
  net::Network& network_;
  util::Clock& clock_;
  GatewayOptions options_;

  glue::SchemaManager schemaManager_;
  /// Declared before db_ (so destroyed after it): the Database facade
  /// routes history-table traffic into this store.
  std::unique_ptr<store::tsdb::TimeSeriesStore> tsdb_;
  store::Database db_;
  dbc::DriverRegistry registry_;
  GridRmDriverManager driverManager_;
  ConnectionManager connections_;
  CacheController cache_;
  drivers::PlanCache planCache_;
  CoarseSecurityLayer cgsl_;
  FineSecurityLayer fgsl_;
  SessionManager sessions_;
  /// Declared before eventManager_: the dispatcher thread feeds the
  /// engine through a listener, so the engine must be destroyed after
  /// the Event Manager has joined it.
  stream::ContinuousQueryEngine streamEngine_;
  std::unique_ptr<EventManager> eventManager_;
  std::unique_ptr<RequestManager> requestManager_;
  /// Declared after every subsystem that submits to or runs on it:
  /// destroying the gateway joins the scheduler's workers first, while
  /// the engines and managers their queued tasks touch are still alive.
  std::unique_ptr<Scheduler> scheduler_;
  std::size_t streamEventListenerId_ = 0;

  mutable std::mutex sourcesMu_;
  std::set<std::string> dataSources_;
};

}  // namespace gridrm::core
