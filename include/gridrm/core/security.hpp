// GridRM's two security layers (paper Fig. 2, section 2: "Multi-level
// and granularity of security for data access").
//
//  * Coarse Grained Security Layer (CGSL): at the gateway's front door.
//    Decides whether a principal may perform an operation class at all
//    (real-time query, historical query, event subscription, driver
//    administration).
//  * Fine Grained Security Layer (FGSL): between the request path and
//    the Abstract Data Layer. Rule list matched per (principal role,
//    data-source host, GLUE group); first match wins.
#pragma once

#include <string>
#include <vector>

namespace gridrm::core {

struct Principal {
  std::string id;                   // client identity
  std::vector<std::string> roles;   // e.g. "admin", "monitor", "guest"

  bool hasRole(const std::string& role) const;

  static Principal admin() { return {"admin", {"admin"}}; }
  static Principal monitor(std::string id = "monitor") {
    return {std::move(id), {"monitor"}};
  }
};

enum class Operation {
  RealTimeQuery,
  HistoricalQuery,
  EventSubscribe,
  StreamSubscribe,  // continuous-query (streaming SQL) subscriptions
  DriverAdmin,
};

const char* operationName(Operation op) noexcept;

class CoarseSecurityLayer {
 public:
  CoarseSecurityLayer();

  /// Grant an operation to a role ("*" = any role).
  void allow(const std::string& role, Operation op);
  void revoke(const std::string& role, Operation op);
  bool check(const Principal& principal, Operation op) const;
  /// Throws dbc::SqlError(SecurityDenied) on failure.
  void require(const Principal& principal, Operation op) const;

  /// Default policy: admin everything; monitor queries + events;
  /// guest real-time queries only.
  static CoarseSecurityLayer defaults();

 private:
  struct Grant {
    std::string role;
    Operation op;
  };
  std::vector<Grant> grants_;
};

/// Glob match where '*' matches any run of characters.
bool globMatch(const std::string& pattern, const std::string& text);

class FineSecurityLayer {
 public:
  struct Rule {
    std::string rolePattern;    // "*" or role name
    std::string sourcePattern;  // glob over the source host ("siteA-*")
    std::string groupPattern;   // glob over the GLUE group ("Processor")
    bool allow = true;
  };

  explicit FineSecurityLayer(bool defaultAllow = true)
      : defaultAllow_(defaultAllow) {}

  void addRule(Rule rule) { rules_.push_back(std::move(rule)); }
  void clearRules() { rules_.clear(); }

  /// First matching rule decides; otherwise the default verdict.
  bool check(const Principal& principal, const std::string& sourceHost,
             const std::string& group) const;
  void require(const Principal& principal, const std::string& sourceHost,
               const std::string& group) const;

 private:
  bool defaultAllow_;
  std::vector<Rule> rules_;
};

}  // namespace gridrm::core
