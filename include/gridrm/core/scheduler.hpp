// The Gateway-wide task scheduler: one bounded worker pool shared by
// every execution path that used to run on its own thread or pool —
// RequestManager fan-out attempts, SitePoller polls, continuous-query
// delta dispatch and Global-layer relayed queries.
//
// Work is classed into weighted priority lanes (Interactive > Hedge >
// Background) so a burst of background polls can never starve a
// latency-critical client query — the query-vs-producer contention
// R-GMA reported after deployment. Queued work is cancellable through
// CancelTokens (a met deadline, a settled hedge race or an open breaker
// kills attempts before they waste a pooled connection), and admission
// is bounded: beyond `maxQueueDepth` per lane, submit() refuses and the
// caller sheds load (Background work defers to the next tick,
// Interactive work fails fast with ErrorCode::Overloaded).
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gridrm/util/clock.hpp"

namespace gridrm::core {

/// Priority lanes, highest first. Interactive carries client query
/// attempts, Hedge carries speculative duplicate attempts (they must
/// not outrank the primaries they race), Background carries site
/// polls, stream delta dispatch and global relay work.
enum class Lane : int { Interactive = 0, Hedge = 1, Background = 2 };

inline constexpr std::size_t kLaneCount = 3;

const char* laneName(Lane lane) noexcept;

/// Copyable cancellation handle shared between a task's submitter and
/// the scheduler. Cancelling is advisory for running tasks (they are
/// never interrupted) but definitive for queued ones: the scheduler
/// drops them at dispatch without running them.
class CancelToken {
 public:
  /// Default-constructed tokens are inert: never cancelled, cancel()
  /// is a no-op. Use make() for a live token.
  CancelToken() = default;

  static CancelToken make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  void cancel() const noexcept {
    if (flag_) flag_->store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }
  bool valid() const noexcept { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct SchedulerOptions {
  std::size_t workers = 4;
  /// Admission bound per lane: submit() returns false once a lane holds
  /// this many queued entries.
  std::size_t maxQueueDepth = 512;
  /// Percentage of contended dispatches granted to Background work when
  /// higher lanes also have runnable entries (anti-starvation weight).
  /// 0 = strict priority, 100 = Background wins every contended slot.
  std::size_t backgroundShare = 25;
};

struct LaneStats {
  std::uint64_t submitted = 0;  // accepted by submit()
  std::uint64_t executed = 0;
  std::uint64_t cancelled = 0;  // dropped before running
  std::uint64_t rejected = 0;   // admission refused (queue full/stopped)
  std::uint64_t queued = 0;     // current depth
  std::uint64_t maxQueued = 0;
  util::Duration totalWait = 0;  // enqueue -> dispatch, clock time
  util::Duration maxWait = 0;
};

struct SchedulerStats {
  std::array<LaneStats, kLaneCount> lanes;

  const LaneStats& lane(Lane l) const noexcept {
    return lanes[static_cast<std::size_t>(l)];
  }
};

class Scheduler {
 public:
  using Task = std::function<void()>;

  Scheduler(util::Clock& clock, SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue `task` on `lane`. Returns false (and drops the task)
  /// when the lane is at maxQueueDepth or the scheduler has stopped —
  /// never throws. `blocking` marks a task that may wait for *other*
  /// tasks of this scheduler (a poll or relayed query whose fan-out
  /// submits attempts back here): at most workers-1 blocking tasks run
  /// concurrently, so one worker always remains to drain the leaf work
  /// they wait on.
  bool submit(Lane lane, Task task, CancelToken token = {},
              bool blocking = false);

  /// Stop admission, drain queued Interactive and Hedge work, cancel
  /// queued Background work, and join the workers. Idempotent.
  void shutdown();
  bool stopped() const;

  /// Block until every queue is empty and no task is running.
  void waitIdle();
  bool idle() const;

  SchedulerStats stats() const;
  std::size_t workerCount() const noexcept { return threads_.size(); }
  const SchedulerOptions& options() const noexcept { return options_; }

 private:
  struct Entry {
    Task task;
    CancelToken token;
    bool blocking = false;
    util::TimePoint enqueuedAt = 0;
  };

  void workerLoop();
  /// Pick the next runnable entry honouring lane weights, the blocking
  /// cap and cancellation (cancelled entries are pruned and counted).
  /// Caller holds mu_.
  bool pickLocked(Entry& out, Lane& outLane);
  /// Pop the first runnable entry of one lane; prunes cancelled
  /// entries encountered on the way. Caller holds mu_.
  bool popEligibleLocked(Lane lane, Entry& out);
  /// True when the lane holds at least one runnable entry; prunes
  /// cancelled entries. Caller holds mu_.
  bool hasEligibleLocked(Lane lane);
  bool queuesEmptyLocked() const;

  std::deque<Entry>& queue(Lane lane) {
    return queues_[static_cast<std::size_t>(lane)];
  }
  LaneStats& laneStats(Lane lane) {
    return stats_.lanes[static_cast<std::size_t>(lane)];
  }

  util::Clock& clock_;
  SchedulerOptions options_;
  std::size_t blockingCap_ = 1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::array<std::deque<Entry>, kLaneCount> queues_;
  SchedulerStats stats_;
  std::size_t running_ = 0;
  std::size_t runningBlocking_ = 0;
  /// Anti-starvation credit in percent: accumulates backgroundShare on
  /// every contended dispatch; >= 100 buys Background one slot.
  std::size_t bgCredit_ = 0;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gridrm::core
