// The Request Manager (paper section 3.1.1): receives SQL from the
// Abstract Client Interface Layer, "coordinates queries across multiple
// data sources and consolidates results", executes real-time queries
// through the ConnectionManager, and serves historical queries from the
// gateway's internal database.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/core/cache_controller.hpp"
#include "gridrm/core/connection_manager.hpp"
#include "gridrm/core/security.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/util/thread_pool.hpp"

namespace gridrm::core {

struct QueryOptions {
  bool useCache = true;            // consult/populate the gateway cache
  util::Duration cacheTtl = -1;    // -1 = CacheController default
  bool recordHistory = false;      // append rows to History<Group>
  bool parallel = true;            // fan out across sources concurrently
};

struct SourceError {
  std::string url;
  std::string message;
};

struct QueryResult {
  std::unique_ptr<dbc::VectorResultSet> rows;
  std::vector<SourceError> failures;  // sources that errored
  std::size_t sourcesQueried = 0;
  std::size_t servedFromCache = 0;

  bool complete() const noexcept { return failures.empty(); }
};

struct RequestManagerStats {
  std::uint64_t queries = 0;         // client-level requests
  std::uint64_t sourceQueries = 0;   // per-source executions (incl. cached)
  std::uint64_t sourceErrors = 0;
  std::uint64_t historyQueries = 0;
  std::uint64_t rowsRecorded = 0;
};

class RequestManager {
 public:
  /// `historyDb` may be null (no historical support); `workers` sizes
  /// the fan-out pool for multi-source queries.
  RequestManager(ConnectionManager& connections, CacheController& cache,
                 const FineSecurityLayer& fgsl, store::Database* historyDb,
                 util::Clock& clock, std::size_t workers = 4);

  RequestManager(const RequestManager&) = delete;
  RequestManager& operator=(const RequestManager&) = delete;

  /// Execute `sql` against one data source.
  QueryResult queryOne(const Principal& principal, const std::string& url,
                       const std::string& sql, const QueryOptions& options = {});

  /// Execute `sql` against several sources and consolidate: rows are
  /// unioned under the GLUE group's columns plus a leading "Source"
  /// column carrying the data-source URL.
  QueryResult query(const Principal& principal,
                    const std::vector<std::string>& urls,
                    const std::string& sql, const QueryOptions& options = {});

  /// Execute a SELECT against the gateway's internal database (tables:
  /// History<Group>, EventHistory).
  std::unique_ptr<dbc::VectorResultSet> queryHistorical(
      const Principal& principal, const std::string& sql);

  /// Refresh the gateway cache entry for (url, sql) with already-fetched
  /// rows. Used by pollers that bypass cache lookup but must still leave
  /// a fresh "recent status" view for interactive clients (section 4).
  void refreshCache(const std::string& url, const std::string& sql,
                    const dbc::VectorResultSet& rows);

  /// Append already-fetched rows to History<Group>. Public so the Global
  /// layer can record remote results too (Fig. 9: the gateway's cached
  /// data covers "local resources, as well as any remote resource data,
  /// that was queried from the local gateway").
  void recordHistoryRows(const std::string& url, const std::string& group,
                         const dbc::VectorResultSet& rows) {
    recordHistory(url, group, rows);
  }

  RequestManagerStats stats() const;

  /// The name of the history table backing a GLUE group.
  static std::string historyTableName(const std::string& group) {
    return "History" + group;
  }

 private:
  /// One source, no consolidation column.
  std::unique_ptr<dbc::VectorResultSet> executeSource(
      const Principal& principal, const std::string& url,
      const std::string& sql, const QueryOptions& options, bool& fromCache);
  void recordHistory(const std::string& url, const std::string& group,
                     const dbc::VectorResultSet& rs);

  ConnectionManager& connections_;
  CacheController& cache_;
  const FineSecurityLayer& fgsl_;
  store::Database* historyDb_;
  util::Clock& clock_;
  util::ThreadPool pool_;
  mutable std::mutex mu_;
  RequestManagerStats stats_;
};

}  // namespace gridrm::core
