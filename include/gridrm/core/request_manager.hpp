// The Request Manager (paper section 3.1.1): receives SQL from the
// Abstract Client Interface Layer, "coordinates queries across multiple
// data sources and consolidates results", executes real-time queries
// through the ConnectionManager, and serves historical queries from the
// gateway's internal database.
//
// Hot read path (E14): cache hits are zero-copy SharedResultSet cursors
// over the cache's shared row storage, and concurrent identical cache
// misses are coalesced into one driver execution (single flight) — the
// leader contacts the source, followers wait and share its rows.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/core/cache_controller.hpp"
#include "gridrm/core/circuit_breaker.hpp"
#include "gridrm/core/connection_manager.hpp"
#include "gridrm/core/scheduler.hpp"
#include "gridrm/core/security.hpp"
#include "gridrm/store/database.hpp"

namespace gridrm::drivers {
class PlanCache;
}

namespace gridrm::core {

/// Sentinel for QueryOptions timing fields: use the gateway-configured
/// default (RequestManagerTuning).
inline constexpr util::Duration kInheritTiming = -1;
/// Sentinel for QueryOptions::hedgeDelay: derive the delay per source
/// from its latency EWMA (p95 estimate).
inline constexpr util::Duration kHedgeAuto = -2;

struct QueryOptions {
  bool useCache = true;            // consult/populate the gateway cache
  util::Duration cacheTtl = -1;    // -1 = CacheController default
  bool recordHistory = false;      // append rows to History<Group>
  bool parallel = true;            // fan out across sources concurrently
  /// Per-source completion budget: kInheritTiming = gateway default,
  /// 0 = unbounded, > 0 = µs after which stragglers are abandoned and
  /// reported as SourceError{url, "deadline exceeded"}.
  util::Duration deadline = kInheritTiming;
  /// Hedged requests: kInheritTiming = gateway default, 0 = off, > 0 =
  /// re-issue the query on a second pooled connection after this many
  /// µs and take whichever result lands first, kHedgeAuto = derive the
  /// delay from the source's latency EWMA.
  util::Duration hedgeDelay = kInheritTiming;
  /// Scheduler lane the fan-out attempts run on. Client queries stay on
  /// Interactive; pollers and the Global relay set Background so their
  /// source contacts yield to latency-critical work.
  Lane lane = Lane::Interactive;
};

/// Gateway-level defaults and isolation policy for the RequestManager
/// (`query.*` and `breaker.*` config keys).
struct RequestManagerTuning {
  util::Duration defaultDeadline = 0;    // 0 = no deadline
  util::Duration defaultHedgeDelay = 0;  // 0 = no hedging; kHedgeAuto ok
  /// Floor for EWMA-derived hedge delays (kHedgeAuto), so a source
  /// with µs-level history is not hedged pathologically early.
  util::Duration hedgeFloor = util::kMillisecond;
  /// Coalesce concurrent identical cache misses into one source request
  /// (`query.coalesce`). Only applies to cache-consulting queries;
  /// polls (useCache = false) always contact the source.
  bool coalesce = true;
  CircuitBreakerOptions breaker;  // failureThreshold 0 = disabled
};

struct SourceError {
  std::string url;
  std::string message;
  /// Machine-readable class of the failure, so callers can distinguish
  /// a shed request (Overloaded), an open breaker (Unavailable) or a
  /// missed deadline (Timeout) without parsing the message.
  dbc::ErrorCode code = dbc::ErrorCode::Generic;
};

struct QueryResult {
  /// A private cursor over shared row storage: cache hits and coalesced
  /// followers read the same underlying rows without copying them.
  std::unique_ptr<dbc::SharedResultSet> rows;
  std::vector<SourceError> failures;  // sources that errored
  std::size_t sourcesQueried = 0;
  std::size_t servedFromCache = 0;
  /// Sources whose rows are expired cached copies served in degraded
  /// mode because the owning gateway was unreachable (Global layer).
  std::vector<std::string> staleSources;

  bool complete() const noexcept { return failures.empty(); }
};

struct RequestManagerStats {
  std::uint64_t queries = 0;         // client-level requests
  std::uint64_t sourceQueries = 0;   // per-source executions (incl. cached)
  std::uint64_t sourceErrors = 0;
  std::uint64_t historyQueries = 0;
  std::uint64_t rowsRecorded = 0;
  std::uint64_t deadlineMisses = 0;  // sources abandoned past the deadline
  std::uint64_t hedgedRequests = 0;  // second attempts issued
  std::uint64_t hedgeWins = 0;       // hedge attempt delivered the result
  std::uint64_t breakerSkips = 0;    // sources skipped: circuit open
  std::uint64_t coalescedQueries = 0;  // misses served by another in flight
  std::uint64_t overloadRejections = 0;  // attempts shed: scheduler full
};

class RequestManager {
 public:
  /// `historyDb` may be null (no historical support); `workers` sizes
  /// a privately owned Scheduler for the fan-out of multi-source
  /// queries; `tuning` carries the gateway's slow-source isolation
  /// policy.
  RequestManager(ConnectionManager& connections, CacheController& cache,
                 const FineSecurityLayer& fgsl, store::Database* historyDb,
                 util::Clock& clock, std::size_t workers = 4,
                 RequestManagerTuning tuning = {});

  /// Share the Gateway-owned Scheduler instead of owning a pool: every
  /// fan-out attempt competes in the gateway-wide priority lanes. The
  /// scheduler must outlive this RequestManager.
  RequestManager(ConnectionManager& connections, CacheController& cache,
                 const FineSecurityLayer& fgsl, store::Database* historyDb,
                 util::Clock& clock, Scheduler& scheduler,
                 RequestManagerTuning tuning = {});

  RequestManager(const RequestManager&) = delete;
  RequestManager& operator=(const RequestManager&) = delete;

  /// Execute `sql` against one data source.
  QueryResult queryOne(const Principal& principal, const std::string& url,
                       const std::string& sql, const QueryOptions& options = {});

  /// Execute `sql` against several sources and consolidate: rows are
  /// unioned under the GLUE group's columns plus a leading "Source"
  /// column carrying the data-source URL.
  QueryResult query(const Principal& principal,
                    const std::vector<std::string>& urls,
                    const std::string& sql, const QueryOptions& options = {});

  /// Execute a SELECT against the gateway's internal database (tables:
  /// History<Group>, EventHistory).
  std::unique_ptr<dbc::VectorResultSet> queryHistorical(
      const Principal& principal, const std::string& sql);

  /// Refresh the gateway cache entry for (url, sql) with already-fetched
  /// rows. Used by pollers that bypass cache lookup but must still leave
  /// a fresh "recent status" view for interactive clients (section 4).
  /// The shared_ptr overload is zero-copy; the reference overload copies
  /// the rows once.
  void refreshCache(const std::string& url, const std::string& sql,
                    std::shared_ptr<const dbc::VectorResultSet> rows);
  void refreshCache(const std::string& url, const std::string& sql,
                    const dbc::VectorResultSet& rows);

  /// Append already-fetched rows to History<Group>. Public so the Global
  /// layer can record remote results too (Fig. 9: the gateway's cached
  /// data covers "local resources, as well as any remote resource data,
  /// that was queried from the local gateway").
  void recordHistoryRows(const std::string& url, const std::string& group,
                         const dbc::VectorResultSet& rows) {
    recordHistory(url, group, rows);
  }

  RequestManagerStats stats() const;

  /// Per-source breaker state + latency EWMAs (slow-source isolation).
  SourceHealthRegistry& sourceHealth() noexcept { return health_; }
  const SourceHealthRegistry& sourceHealth() const noexcept {
    return health_;
  }
  const RequestManagerTuning& tuning() const noexcept { return tuning_; }

  /// The scheduler fan-out attempts run on (gateway-shared or owned).
  /// Pollers submit their background work here too.
  Scheduler& scheduler() noexcept { return *scheduler_; }

  /// Optional shared parsed-plan cache; used for the per-query group
  /// (table) lookup here, and exported to pollers. Null = parse fresh.
  void setPlanCache(drivers::PlanCache* planCache) noexcept {
    planCache_ = planCache;
  }
  drivers::PlanCache* planCache() const noexcept { return planCache_; }

  /// The name of the history table backing a GLUE group.
  static std::string historyTableName(const std::string& group) {
    return "History" + group;
  }

 private:
  /// Shared result slot for one fanned-out source. Workers publish into
  /// the slot through a shared_ptr, so an attempt abandoned past the
  /// deadline can complete later without touching freed state.
  struct SourceSlot;
  struct FanOutState;
  /// One in-flight (url, sql) execution that concurrent identical cache
  /// misses coalesce onto.
  struct Inflight;

  /// One source, no consolidation column. `allowCoalesce` is false for
  /// hedge attempts: a hedge is a deliberate duplicate request and must
  /// not wait on the primary it is meant to outrun.
  std::shared_ptr<const dbc::VectorResultSet> executeSource(
      const Principal& principal, const std::string& url,
      const std::string& sql, const QueryOptions& options, bool& fromCache,
      bool& coalesced, bool allowCoalesce);
  /// The uncoalesced tail of executeSource: breaker gate, lease,
  /// driver execution, cache/history population.
  std::shared_ptr<const dbc::VectorResultSet> contactSource(
      const util::Url& url, const std::string& urlText,
      const std::string& sqlText, const QueryOptions& options,
      const std::string& group, const std::string& cacheKey);
  /// Publish the leader's outcome to followers and retire the flight.
  void settleFlight(const std::string& cacheKey,
                    const std::shared_ptr<Inflight>& flight,
                    std::shared_ptr<const dbc::VectorResultSet> rows,
                    std::string error, dbc::ErrorCode code);
  /// Group (table) name of a query, through the plan cache when bound.
  std::string queryGroup(const std::string& sqlText) const;
  void recordHistory(const std::string& url, const std::string& group,
                     const dbc::VectorResultSet& rs);

  util::Duration resolveDeadline(const QueryOptions& options) const;
  util::Duration resolveHedgeDelay(const QueryOptions& options) const;
  /// Feed one attempt's outcome to the breaker (connection-class
  /// failures and timeouts only).
  void recordAttemptHealth(const std::string& url, bool success,
                           dbc::ErrorCode code, util::Duration latency);
  void submitAttempt(const std::shared_ptr<FanOutState>& state,
                     const std::shared_ptr<SourceSlot>& slot, int attempt,
                     const Principal& principal, const std::string& sql,
                     const QueryOptions& options);
  /// Run every URL through the pooled, deadline/hedge-aware path and
  /// wait until all complete or the deadline passes.
  std::vector<std::shared_ptr<SourceSlot>> fanOut(
      const Principal& principal, const std::vector<std::string>& urls,
      const std::string& sql, const QueryOptions& options,
      util::Duration deadline, util::Duration hedgeDelay);

  ConnectionManager& connections_;
  CacheController& cache_;
  const FineSecurityLayer& fgsl_;
  store::Database* historyDb_;
  util::Clock& clock_;
  RequestManagerTuning tuning_;
  drivers::PlanCache* planCache_ = nullptr;
  SourceHealthRegistry health_;
  Scheduler* scheduler_;
  mutable std::mutex mu_;
  RequestManagerStats stats_;
  std::mutex inflightMu_;
  std::map<std::string, std::shared_ptr<Inflight>> inflight_;
  /// Backing store for the workers-count constructor. Declared last so
  /// its destructor joins the workers while every member their tasks
  /// touch (stats, inflight map, health registry) is still alive.
  std::unique_ptr<Scheduler> ownedScheduler_;
};

}  // namespace gridrm::core
