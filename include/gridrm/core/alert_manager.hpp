// Resource Alerts (the "Resource Alerts" module of paper Fig. 2, and
// the threshold behaviour of Fig. 3: "Threshold exceeded. <Event>
// transmitted").
//
// An alert rule pairs a data-source query with a per-row SQL condition.
// On each evaluation pass the rule's query runs through the Request
// Manager (so security, pooling, driver selection and caching all
// apply) and every violating row raises a GridRM event through the
// Event Manager. A hold-off interval suppresses repeat alerts for the
// same (rule, subject) while the condition persists, mirroring the
// edge-triggered traps of the native agents.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/core/event_manager.hpp"
#include "gridrm/core/request_manager.hpp"

namespace gridrm::core {

struct AlertRule {
  std::string name;       // unique; appears in the event type
  std::string url;        // data source to evaluate against
  std::string sql;        // row source, e.g. "SELECT * FROM Processor"
  std::string condition;  // per-row predicate, e.g. "Load1 > 2.0"
  Severity severity = Severity::Warning;
  /// Column identifying the alert subject (usually HostName); rows
  /// lacking it alert under subject "".
  std::string subjectColumn = "HostName";
  /// Minimum time between repeated alerts for the same subject.
  util::Duration holdOff = 60 * util::kSecond;
};

struct AlertManagerStats {
  std::uint64_t evaluations = 0;   // rule evaluation passes
  std::uint64_t rowsExamined = 0;
  std::uint64_t alertsRaised = 0;
  std::uint64_t suppressedByHoldOff = 0;
  std::uint64_t queryFailures = 0;
  std::uint64_t conditionErrors = 0;  // condition referenced bad columns
};

class AlertManager {
 public:
  AlertManager(RequestManager& requestManager, EventManager& eventManager,
               util::Clock& clock)
      : requestManager_(requestManager),
        eventManager_(eventManager),
        clock_(clock) {}

  AlertManager(const AlertManager&) = delete;
  AlertManager& operator=(const AlertManager&) = delete;

  /// Install or replace (by name) a rule. Throws dbc::SqlError(Syntax)
  /// when the rule's SQL or condition does not parse.
  void addRule(AlertRule rule);
  bool removeRule(const std::string& name);
  std::vector<AlertRule> rules() const;

  /// Evaluate every rule once as `principal`; returns alerts raised.
  /// Events have type "gateway.alert.<rule>" and carry the subject, the
  /// rule's condition and every column of the violating row as fields.
  std::size_t evaluate(const Principal& principal);
  /// Evaluate one rule by name.
  std::size_t evaluateRule(const Principal& principal,
                           const std::string& name);

  AlertManagerStats stats() const;

 private:
  struct CompiledRule {
    AlertRule rule;
    sql::SelectStatement query;
    sql::ExprPtr condition;
  };

  std::size_t evaluateCompiled(const Principal& principal,
                               const CompiledRule& compiled);

  RequestManager& requestManager_;
  EventManager& eventManager_;
  util::Clock& clock_;
  mutable std::mutex mu_;
  std::vector<CompiledRule> rules_;
  /// (rule name, subject) -> last alert time, for hold-off.
  std::map<std::pair<std::string, std::string>, util::TimePoint> lastFired_;
  AlertManagerStats stats_;
};

}  // namespace gridrm::core
