// SitePoller: the periodic harvesting loop behind Fig. 1's
// "Monitoring / Real-time / Historical" client and Fig. 9's cached
// tree view. Each task polls one (source, query) pair on its own
// interval through the Request Manager with history recording on, so
// the gateway accumulates time series and keeps its result cache warm
// for interactive clients.
//
// The poller is tick-driven rather than threaded: the owner calls
// tick() as simulated (or wall) time advances, which keeps tests and
// benchmarks deterministic. `runFor` is a convenience loop for
// SimClock-driven scenarios. An optional alert manager is evaluated
// after each tick that polled something.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/core/alert_manager.hpp"
#include "gridrm/core/request_manager.hpp"
#include "gridrm/stream/continuous_query_engine.hpp"
#include "gridrm/util/event_scheduler.hpp"

namespace gridrm::core {

struct PollTask {
  std::string url;
  std::string sql;
  util::Duration interval = 30 * util::kSecond;
  bool recordHistory = true;
  bool refreshCache = true;  // populate the gateway cache for other users
};

struct SitePollerStats {
  std::uint64_t ticks = 0;
  std::uint64_t polls = 0;       // task executions
  std::uint64_t pollFailures = 0;
  std::uint64_t alertsRaised = 0;
  std::uint64_t rowsStreamed = 0;  // rows handed to the stream engine
  std::uint64_t pollsSkippedOpen = 0;  // tasks skipped: circuit open
  std::uint64_t pollsDeferred = 0;  // scheduler full: retried next tick
};

class SitePoller {
 public:
  /// `alerts` may be null (no alert evaluation).
  SitePoller(RequestManager& requestManager, util::Clock& clock,
             Principal principal, AlertManager* alerts = nullptr)
      : requestManager_(requestManager),
        clock_(clock),
        principal_(std::move(principal)),
        alerts_(alerts) {}

  ~SitePoller() { stopTicking(); }

  SitePoller(const SitePoller&) = delete;
  SitePoller& operator=(const SitePoller&) = delete;

  /// Feed every successfully polled batch to a continuous-query engine
  /// (the gateway's streamEngine()), making poll refreshes the push
  /// source for streaming subscriptions. Null disables the feed.
  void setStreamSink(stream::ContinuousQueryEngine* sink);

  void addTask(PollTask task);
  /// Remove every task for the given source URL; returns count removed.
  std::size_t removeTasks(const std::string& url);
  std::size_t taskCount() const;

  /// Run every task whose interval has elapsed and wait for them to
  /// finish; returns polls executed. The due polls are submitted to the
  /// RequestManager's scheduler as Background tasks, so they run in
  /// parallel with each other and yield to interactive queries. A poll
  /// the saturated scheduler refuses is deferred (`pollsDeferred`) and
  /// becomes due again on the next tick.
  std::size_t tick();

  /// Drive the poller across a stretch of (simulated) time: advance the
  /// clock by `step` and tick, until `duration` has elapsed.
  void runFor(util::Duration duration, util::Duration step);

  /// Register the poller's tick as a periodic event: tick() fires every
  /// `interval` on the scheduler (a sim::EventLoop in simulations)
  /// until stopTicking() or destruction. Replaces owner-driven
  /// tick()/runFor() loops.
  void startTicking(util::EventScheduler& scheduler,
                    util::Duration interval = util::kSecond);
  /// Cancel the periodic tick registered by startTicking (idempotent).
  void stopTicking();

  /// Apply a retention policy: prune history rows older than `keep`.
  /// Returns rows dropped. `db` is the gateway's internal database.
  std::size_t enforceRetention(store::Database& db, util::Duration keep);

  SitePollerStats stats() const;

 private:
  struct Scheduled {
    PollTask task;
    util::TimePoint lastRun = 0;
    bool everRun = false;
  };
  /// Completion rendezvous for one tick's submitted polls. Held through
  /// a shared_ptr so a poll cancelled at scheduler shutdown (which
  /// never decrements `pending`) leaves no dangling waiter state.
  struct Batch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
    std::size_t executed = 0;
  };

  /// One poll, run on a scheduler worker: breaker gate, source query,
  /// cache refresh, stream feed, stats.
  void runPoll(const PollTask& task, Batch& batch);

  RequestManager& requestManager_;
  util::Clock& clock_;
  Principal principal_;
  AlertManager* alerts_;
  stream::ContinuousQueryEngine* streamSink_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Scheduled> tasks_;
  SitePollerStats stats_;
  util::EventScheduler* tickScheduler_ = nullptr;
  util::EventId tickEvent_ = 0;
};

}  // namespace gridrm::core
