// GridRM's internal event format (paper Fig. 4). Native events (SNMP
// traps, log alerts) are translated into this shape by event formatter
// plug-ins; outbound, the translation runs in reverse so events can be
// propagated back out "to groups of diverse data sources".
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "gridrm/util/clock.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::core {

enum class Severity : std::uint8_t { Info, Warning, Critical };

const char* severityName(Severity s) noexcept;

struct Event {
  std::uint64_t sequence = 0;  // assigned by the EventManager on ingest
  std::string type;            // hierarchical: "snmp.trap.highload"
  std::string source;          // originating host or data-source URL
  util::TimePoint timestamp = 0;
  Severity severity = Severity::Info;
  std::map<std::string, util::Value> fields;

  std::string field(const std::string& key, std::string fallback = "") const {
    auto it = fields.find(key);
    return it == fields.end() ? std::move(fallback) : it->second.toString();
  }
};

/// True when `type` falls under `pattern`: exact match, or pattern is a
/// dot-delimited prefix ("snmp.trap" matches "snmp.trap.highload");
/// "*" and "" match everything.
bool eventTypeMatches(const std::string& pattern, const std::string& type);

}  // namespace gridrm::core
