// GridRmDriverManager (paper section 3.1.3): registers/unregisters
// resource drivers and performs driver-to-resource allocation.
//
// Selection is either
//   * static  -- "driver preferences registered in advance by the user",
//                per data source, in prioritised order (Fig. 8), or
//   * dynamic -- iterate registered drivers and take the first whose
//                acceptsUrl() is true (Table 2).
//
// "For performance, the GridRMDriverManager maintains a cache containing
// details of the driver last successfully used for a data source.
// Configuration rules determine the actions that should occur if a
// cached driver reference is no longer valid. For example retry the
// driver, try another, report the error."
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/dbc/driver_registry.hpp"

namespace gridrm::core {

struct FailurePolicy {
  enum class Action {
    Report,           // surface the error to the caller immediately
    Retry,            // retry the same driver `retries` more times
    TryNext,          // fall through to the next registered preference
    DynamicReselect,  // rescan all registered drivers for a compatible one
  };
  Action action = Action::DynamicReselect;
  int retries = 1;  // extra attempts for Action::Retry
};

struct DriverManagerStats {
  std::uint64_t selections = 0;       // successful connections handed out
  std::uint64_t cacheHits = 0;        // last-good cache supplied the driver
  std::uint64_t staticSelections = 0; // static preference supplied it
  std::uint64_t dynamicScans = 0;     // full acceptsUrl scans performed
  std::uint64_t acceptProbes = 0;     // individual acceptsUrl calls
  std::uint64_t connectFailures = 0;  // failed connect attempts
  std::uint64_t failovers = 0;        // successes on a non-first candidate
};

class GridRmDriverManager {
 public:
  explicit GridRmDriverManager(dbc::DriverRegistry& registry)
      : registry_(registry) {}

  GridRmDriverManager(const GridRmDriverManager&) = delete;
  GridRmDriverManager& operator=(const GridRmDriverManager&) = delete;

  dbc::DriverRegistry& registry() noexcept { return registry_; }

  /// Register a prioritised driver list for one data source (Fig. 8).
  void setStaticPreference(const std::string& urlText,
                           std::vector<std::string> driverNames);
  void clearStaticPreference(const std::string& urlText);
  std::vector<std::string> staticPreference(const std::string& urlText) const;

  void setFailurePolicy(const FailurePolicy& policy);
  FailurePolicy failurePolicy() const;

  /// The last-good-driver cache can be disabled (experiment E1 ablation).
  void setLastGoodCacheEnabled(bool enabled);
  /// Name of the cached driver for a source, empty when none.
  std::string cachedDriver(const std::string& urlText) const;

  struct Selection {
    std::shared_ptr<dbc::Driver> driver;
    std::unique_ptr<dbc::Connection> connection;
  };

  /// Allocate a driver for `url` and open a connection, applying static
  /// preferences, the last-good cache and the failure policy. Throws
  /// dbc::SqlError when every candidate fails or none accepts the URL.
  Selection obtainConnection(const util::Url& url, const util::Config& props);

  /// A query through a previously-handed-out connection failed: drop
  /// the last-good entry so the next allocation reselects.
  void reportFailure(const std::string& urlText);

  DriverManagerStats stats() const;

 private:
  dbc::DriverRegistry& registry_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::string>> staticPrefs_;
  std::map<std::string, std::string> lastGood_;
  FailurePolicy policy_;
  bool cacheEnabled_ = true;
  DriverManagerStats stats_;
};

}  // namespace gridrm::core
