// Text rendering of a site's cached data sources (the behaviour behind
// the JSP tree view of paper Fig. 9): gateway -> data source -> cached
// rows, with freshness annotations taken from the Cache Controller.
#pragma once

#include <string>
#include <vector>

#include "gridrm/core/cache_controller.hpp"
#include "gridrm/dbc/result_set.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::core {

/// Render one result set as an aligned text table (used by the tree
/// view and by the example applications).
std::string renderTable(const dbc::VectorResultSet& rs,
                        std::size_t maxRows = 50);
/// Shared-storage cursors (cache hits, QueryResult rows) render the
/// same way without materialising a copy.
std::string renderTable(const dbc::SharedResultSet& rs,
                        std::size_t maxRows = 50);

struct TreeViewEntry {
  std::string url;
  std::string sql;
};

/// Render the gateway's cached view of the given (source, query) pairs.
/// Sources with no cached data are shown as "(no cached data -- poll to
/// refresh)", matching the Fig. 9 interaction where real-time data
/// requires an explicit poll.
std::string renderCachedTree(const std::string& gatewayName,
                             CacheController& cache, util::Clock& clock,
                             const std::vector<TreeViewEntry>& entries);

}  // namespace gridrm::core
