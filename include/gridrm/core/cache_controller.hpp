// Cache Controller (paper Fig. 2/3 and section 4): the gateway-level
// result cache that lets "a heavily used GridRM Gateway ... return a
// view of the recent status of a site while limiting resource
// intrusion". Experiment E4 sweeps its TTL against agent request
// counts; the same mechanism backs inter-gateway caching in the Global
// layer (E6).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::core {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
};

class CacheController {
 public:
  /// `defaultTtl` <= 0 disables caching entirely.
  CacheController(util::Clock& clock, util::Duration defaultTtl,
                  std::size_t maxEntries = 4096)
      : clock_(clock), defaultTtl_(defaultTtl), maxEntries_(maxEntries) {}

  /// Cache key: the data-source URL plus the exact SQL text. The URL is
  /// length-prefixed so no (url, sql) pair can collide with another by
  /// shifting bytes across the separator (e.g. a URL that itself
  /// contains the separator byte).
  static std::string key(const std::string& url, const std::string& sql) {
    std::string k = std::to_string(url.size());
    k += '\x1f';
    k += url;
    k += sql;
    return k;
  }

  /// A fresh cursor over the cached rows, or nullptr on miss/expiry.
  std::unique_ptr<dbc::VectorResultSet> lookup(const std::string& key);
  /// Insert (copying the rows once); no-op when caching is disabled.
  void insert(const std::string& key, const dbc::VectorResultSet& rs,
              util::Duration ttl = -1 /* -1 = defaultTtl */);
  void invalidate(const std::string& key);
  void clear();

  /// Timestamp at which the entry was cached; nullopt on miss. The JSP
  /// tree view (Fig. 9) uses this to label data freshness.
  std::optional<util::TimePoint> cachedAt(const std::string& key) const;

  CacheStats stats() const;
  std::size_t size() const;
  util::Duration defaultTtl() const noexcept { return defaultTtl_; }

 private:
  struct Entry {
    std::shared_ptr<const dbc::VectorResultSet> rs;
    util::TimePoint storedAt = 0;
    util::Duration ttl = 0;
    std::list<std::string>::iterator lruIt;
  };

  void evictIfNeeded();  // caller holds mu_

  util::Clock& clock_;
  util::Duration defaultTtl_;
  std::size_t maxEntries_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  CacheStats stats_;
};

}  // namespace gridrm::core
