// Cache Controller (paper Fig. 2/3 and section 4): the gateway-level
// result cache that lets "a heavily used GridRM Gateway ... return a
// view of the recent status of a site while limiting resource
// intrusion". Experiment E4 sweeps its TTL against agent request
// counts; the same mechanism backs inter-gateway caching in the Global
// layer (E6). E14 measures the hot hit path.
//
// Concurrency: the cache is split into K shards (key hash -> shard),
// each with its own mutex, LRU list and stat counters, so concurrent
// clients hitting different keys never contend on one global lock.
// Hits are zero-copy: lookup hands out a SharedResultSet cursor over
// the entry's shared row storage instead of deep-copying the rows.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::core {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t expirations = 0;
};

class CacheController {
 public:
  /// `defaultTtl` <= 0 disables caching entirely. `maxEntries` caps the
  /// whole cache; each of the `shards` shards holds an equal slice of
  /// that budget under its own lock (`shards` is clamped to >= 1).
  CacheController(util::Clock& clock, util::Duration defaultTtl,
                  std::size_t maxEntries = 4096, std::size_t shards = 16);

  /// Cache key: the data-source URL plus the exact SQL text. The URL is
  /// length-prefixed so no (url, sql) pair can collide with another by
  /// shifting bytes across the separator (e.g. a URL that itself
  /// contains the separator byte).
  static std::string key(const std::string& url, const std::string& sql) {
    std::string k = std::to_string(url.size());
    k += '\x1f';
    k += url;
    k += sql;
    return k;
  }

  /// A zero-copy cursor over the cached rows, or nullptr on miss/expiry.
  /// Cursors stay valid (and keep serving the rows they started on)
  /// even after the entry is replaced, invalidated or evicted.
  std::unique_ptr<dbc::SharedResultSet> lookup(const std::string& key);
  /// The shared row storage itself, or nullptr on miss/expiry. Used by
  /// the RequestManager to share one storage between the cache and any
  /// number of client cursors.
  std::shared_ptr<const dbc::VectorResultSet> lookupShared(
      const std::string& key);

  /// Insert already-shared rows without copying; no-op when caching is
  /// disabled. This is the hot producer path (driver results and poll
  /// refreshes arrive as shared storage).
  void insert(const std::string& key,
              std::shared_ptr<const dbc::VectorResultSet> rs,
              util::Duration ttl = -1 /* -1 = defaultTtl */);
  /// Copying convenience overload (one copy, at insert time).
  void insert(const std::string& key, const dbc::VectorResultSet& rs,
              util::Duration ttl = -1);
  void invalidate(const std::string& key);
  void clear();

  /// Timestamp at which the entry was cached; nullopt on miss **or
  /// expiry** — the tree view (Fig. 9) must never label dead data as
  /// fresh.
  std::optional<util::TimePoint> cachedAt(const std::string& key) const;

  /// Aggregated over all shards.
  CacheStats stats() const;
  std::size_t size() const;
  util::Duration defaultTtl() const noexcept { return defaultTtl_; }
  std::size_t shardCount() const noexcept { return shards_.size(); }

 private:
  struct Entry {
    std::shared_ptr<const dbc::VectorResultSet> rs;
    util::TimePoint storedAt = 0;
    util::Duration ttl = 0;
    std::list<std::string>::iterator lruIt;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
    std::list<std::string> lru;  // front = most recent
    CacheStats stats;
  };

  Shard& shardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  const Shard& shardFor(const std::string& key) const {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }
  void evictIfNeeded(Shard& shard);  // caller holds shard.mu

  util::Clock& clock_;
  util::Duration defaultTtl_;
  std::size_t maxEntriesPerShard_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gridrm::core
