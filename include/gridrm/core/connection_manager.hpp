// The Connection Manager (paper section 3.1.2): executes queries
// against resource drivers through a pool of driver connections.
//
// "Driver connections typically incur an overhead when a data source is
// first connected, especially if drivers are dynamically mapped to the
// data source. Therefore the ConnectionManager provides pooling of
// driver connections to reduce the overhead effects. The
// ConnectionManager calls the GridRMDriverManager to return a new
// connection if a suitable pooled instance does not exist."
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "gridrm/core/driver_manager.hpp"

namespace gridrm::core {

struct PoolStats {
  std::uint64_t acquisitions = 0;
  std::uint64_t poolHits = 0;      // served from an idle pooled connection
  std::uint64_t creations = 0;     // driver manager had to connect
  std::uint64_t validationFailures = 0;  // pooled connection was dead
  std::uint64_t returns = 0;
  std::uint64_t discards = 0;      // returned connection not pooled
};

class ConnectionManager {
 public:
  /// `maxIdlePerSource` = 0 disables pooling (E2 ablation).
  ConnectionManager(GridRmDriverManager& driverManager,
                    std::size_t maxIdlePerSource = 4,
                    bool validateOnAcquire = true)
      : driverManager_(driverManager),
        maxIdlePerSource_(maxIdlePerSource),
        validate_(validateOnAcquire) {}

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// RAII lease: returns the connection to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(ConnectionManager* manager, std::string key,
          std::shared_ptr<dbc::Driver> driver,
          std::unique_ptr<dbc::Connection> conn)
        : manager_(manager),
          key_(std::move(key)),
          driver_(std::move(driver)),
          conn_(std::move(conn)) {}
    ~Lease() { release(); }

    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      manager_ = std::exchange(other.manager_, nullptr);
      key_ = std::move(other.key_);
      driver_ = std::move(other.driver_);
      conn_ = std::move(other.conn_);
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    dbc::Connection* operator->() const noexcept { return conn_.get(); }
    dbc::Connection& operator*() const noexcept { return *conn_; }
    dbc::Connection* get() const noexcept { return conn_.get(); }
    const std::shared_ptr<dbc::Driver>& driver() const noexcept {
      return driver_;
    }
    explicit operator bool() const noexcept { return conn_ != nullptr; }

    /// Mark the connection as broken: it will be destroyed, not pooled,
    /// and the driver manager forgets the last-good driver for the URL.
    void poison() noexcept { poisoned_ = true; }

   private:
    void release();

    ConnectionManager* manager_ = nullptr;
    std::string key_;
    std::shared_ptr<dbc::Driver> driver_;
    std::unique_ptr<dbc::Connection> conn_;
    bool poisoned_ = false;
  };

  /// Acquire a connection for the data source at `url`, pooled when
  /// possible. Throws dbc::SqlError when no driver can connect.
  Lease acquire(const util::Url& url, const util::Config& props);

  PoolStats stats() const;
  std::size_t idleCount(const std::string& urlText) const;
  /// Drop every idle connection.
  void clear();
  /// Drop idle connections created by the named driver (called when a
  /// driver is unregistered at runtime); returns how many were dropped.
  std::size_t dropDriver(const std::string& driverName);

 private:
  friend class Lease;
  struct Pooled {
    std::shared_ptr<dbc::Driver> driver;
    std::unique_ptr<dbc::Connection> conn;
  };

  void give(const std::string& key, std::shared_ptr<dbc::Driver> driver,
            std::unique_ptr<dbc::Connection> conn, bool poisoned);

  GridRmDriverManager& driverManager_;
  std::size_t maxIdlePerSource_;
  bool validate_;
  mutable std::mutex mu_;
  std::map<std::string, std::deque<Pooled>> idle_;
  PoolStats stats_;
};

}  // namespace gridrm::core
