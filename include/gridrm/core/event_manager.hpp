// The Event Manager (paper Fig. 4): "a bridge between the native
// events issued by data sources and GridRM".
//
//   native datagram --Formatter--> Event --> fast buffer --> dispatcher
//     --> recorded for historical analysis (internal database)
//     --> forwarded to all registered listeners
//   Event --Formatter--> native payload --> transmitted to a data source
//
// The fast buffer is a bounded ring "ensur[ing] events are not lost in
// a busy system"; its capacity and overflow policy are the E5 ablation.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gridrm/core/event.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/util/ring_buffer.hpp"

namespace gridrm::core {

/// Formatter plug-in: translates between one native event encoding and
/// the GridRM Event (paper: "Custom Formatter plugged into each Driver").
class EventFormatter {
 public:
  virtual ~EventFormatter() = default;
  virtual std::string name() const = 0;
  /// Claim check: can this formatter decode the payload?
  virtual bool accepts(const net::Payload& native) const = 0;
  /// Decode; nullopt when the payload is not an event after all.
  virtual std::optional<Event> decode(const net::Address& from,
                                      const net::Payload& native) const = 0;
  /// Encode for outbound transmission; nullopt when this formatter
  /// cannot express the event natively.
  virtual std::optional<net::Payload> encode(const Event& event) const = 0;
};

/// Formatter for the simulated SNMP trap PDUs.
class SnmpTrapFormatter final : public EventFormatter {
 public:
  std::string name() const override { return "snmp-trap"; }
  bool accepts(const net::Payload& native) const override;
  std::optional<Event> decode(const net::Address& from,
                              const net::Payload& native) const override;
  std::optional<net::Payload> encode(const Event& event) const override;
};

/// Formatter for line-oriented "EVENT <type> <severity> k=v ..." text
/// (the native alert format of the text-protocol agents).
class TextEventFormatter final : public EventFormatter {
 public:
  std::string name() const override { return "text"; }
  bool accepts(const net::Payload& native) const override;
  std::optional<Event> decode(const net::Address& from,
                              const net::Payload& native) const override;
  std::optional<net::Payload> encode(const Event& event) const override;
};

struct EventManagerOptions {
  std::size_t fastBufferCapacity = 1024;
  util::OverflowPolicy overflow = util::OverflowPolicy::Block;
  /// Inline: dispatch on the ingesting thread (deterministic tests).
  /// Threaded: a dedicated dispatcher drains the fast buffer.
  bool threadedDispatch = true;
  /// Record events into the historical database table "EventHistory".
  bool recordHistory = true;
};

struct EventManagerStats {
  std::uint64_t received = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t dropped = 0;
  std::uint64_t recorded = 0;
  std::uint64_t transmitted = 0;
  std::uint64_t undecodable = 0;
};

class EventManager final : public net::RequestHandler {
 public:
  using Listener = std::function<void(const Event&)>;

  /// `db` may be null (no historical recording).
  EventManager(util::Clock& clock, store::Database* db,
               EventManagerOptions options = {});
  ~EventManager() override;

  EventManager(const EventManager&) = delete;
  EventManager& operator=(const EventManager&) = delete;

  void addFormatter(std::unique_ptr<EventFormatter> formatter);

  /// Subscribe to events whose type matches `pattern`; returns an id
  /// for removeListener.
  std::size_t addListener(const std::string& pattern, Listener listener);
  void removeListener(std::size_t id);

  /// Ingest a native event payload (usually via handleDatagram).
  void ingestNative(const net::Address& from, const net::Payload& native);
  /// Ingest an already-decoded internal event (e.g. gateway thresholds,
  /// or events relayed from a remote gateway).
  void ingest(Event event);

  /// Translate to a native encoding and send to a data source
  /// (paper: "the Manager can pass events back out to data sources").
  /// Returns false when no formatter could encode the event.
  bool transmit(const Event& event, net::Network& network,
                const net::Address& from, const net::Address& to,
                const std::string& formatterName);

  /// Network endpoint plumbing: traps and alerts arrive as datagrams.
  net::Payload handleRequest(const net::Address&, const net::Payload&) override {
    return "";  // the event port is datagram-only
  }
  void handleDatagram(const net::Address& from,
                      const net::Payload& body) override {
    ingestNative(from, body);
  }

  /// Block until the fast buffer has been drained (flush for tests).
  void drain();

  EventManagerStats stats() const;

 private:
  void dispatchLoop(std::stop_token stop);
  void dispatchOne(Event event);
  void record(const Event& event);

  util::Clock& clock_;
  store::Database* db_;
  EventManagerOptions options_;
  util::RingBuffer<Event> buffer_;
  std::atomic<std::uint64_t> sequence_{0};

  mutable std::mutex mu_;  // guards formatters_, listeners_, stats_
  std::vector<std::unique_ptr<EventFormatter>> formatters_;
  struct Subscription {
    std::size_t id;
    std::string pattern;
    Listener listener;
  };
  std::vector<Subscription> listeners_;
  std::size_t nextListenerId_ = 1;
  EventManagerStats stats_;
  std::atomic<std::uint64_t> inFlight_{0};

  std::optional<std::jthread> dispatcher_;  // last member: stops first
};

}  // namespace gridrm::core
