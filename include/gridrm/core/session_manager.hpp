// Session Management (paper Fig. 2). Clients authenticate once through
// the ACIL; subsequent requests carry a session token the gateway
// validates, touches and expires on idleness.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "gridrm/core/security.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::core {

struct SessionInfo {
  std::string token;
  Principal principal;
  util::TimePoint createdAt = 0;
  util::TimePoint lastUsed = 0;
};

class SessionManager {
 public:
  SessionManager(util::Clock& clock,
                 util::Duration idleTimeout = 30 * 60 * util::kSecond)
      : clock_(clock), idleTimeout_(idleTimeout) {}

  /// Open a session; returns its token.
  std::string open(Principal principal);
  /// Look up and touch; nullopt when unknown or idle-expired (expired
  /// sessions are removed).
  std::optional<SessionInfo> validate(const std::string& token);
  void close(const std::string& token);
  /// Remove idle-expired sessions; returns how many were dropped.
  std::size_t expireIdle();
  std::size_t activeCount() const;

 private:
  util::Clock& clock_;
  util::Duration idleTimeout_;
  mutable std::mutex mu_;
  std::map<std::string, SessionInfo> sessions_;
  std::uint64_t nextId_ = 1;
};

}  // namespace gridrm::core
