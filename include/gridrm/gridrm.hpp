// Umbrella header: everything a GridRM application normally needs.
//
// Fine-grained includes remain available under gridrm/<module>/ for
// code that wants tighter dependencies (e.g. a driver plug-in only
// needs gridrm/drivers/driver_common.hpp).
#pragma once

// Foundation
#include "gridrm/util/clock.hpp"
#include "gridrm/util/config.hpp"
#include "gridrm/util/log.hpp"
#include "gridrm/util/url.hpp"
#include "gridrm/util/value.hpp"

// Data access
#include "gridrm/dbc/driver.hpp"
#include "gridrm/dbc/driver_registry.hpp"
#include "gridrm/dbc/result_io.hpp"
#include "gridrm/dbc/result_set.hpp"
#include "gridrm/glue/schema.hpp"
#include "gridrm/glue/schema_manager.hpp"
#include "gridrm/sql/parser.hpp"
#include "gridrm/store/database.hpp"

// Substrates
#include "gridrm/agents/site.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"

// Drivers
#include "gridrm/drivers/defaults.hpp"
#include "gridrm/drivers/driver_common.hpp"

// The gateway (Local layer)
#include "gridrm/core/alert_manager.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/core/site_poller.hpp"
#include "gridrm/core/tree_view.hpp"

// The Global layer
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"
