// Synthetic machine model.
//
// The paper's agents (SNMP, Ganglia, NWS, NetLogger, SCMS) report
// metrics of real campus machines. Our substitute is a stochastic host
// whose metrics evolve over the injected Clock's time: run-queue load
// follows a mean-reverting AR(1) process around a slowly drifting
// (diurnal) mean, CPU/memory/process figures derive from load, and
// network counters accumulate bursty traffic. Deterministic per seed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/util/clock.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::sim {

struct HostSpec {
  std::string name = "node00";
  std::string clusterName = "cluster";
  int cpuCount = 2;
  int cpuMhz = 2400;
  std::string cpuModel = "SimCPU 2400";
  std::int64_t memTotalMb = 2048;
  std::int64_t swapTotalMb = 1024;
  std::int64_t diskTotalMb = 80 * 1024;
  int nicSpeedMbps = 1000;
  std::string osName = "Linux";
  std::string osVersion = "2.4.20";
  std::string arch = "i686";
};

class HostModel {
 public:
  HostModel(HostSpec spec, util::Clock& clock, std::uint64_t seed);

  const HostSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }

  // All getters first advance the model to clock.now(). Thread-safe:
  // several agents may serve the same host to concurrent clients.
  double load1();
  double load5();
  double load15();
  double cpuUserPct();
  double cpuSystemPct();
  double cpuIdlePct();
  std::int64_t memFreeMb();
  std::int64_t memUsedMb();
  std::int64_t swapFreeMb();
  std::int64_t diskFreeMb();
  std::int64_t netInBytes();
  std::int64_t netOutBytes();
  int processCount();
  std::int64_t uptimeSeconds();
  util::TimePoint bootTime() const noexcept { return bootTime_; }
  /// Timestamp of the most recent model step.
  util::TimePoint lastUpdate() const;

  /// Force the model forward to the clock's current time.
  void refresh();

 private:
  void advanceTo(util::TimePoint t);  // callers hold mu_
  void step(double dtSeconds);

  mutable std::mutex mu_;  // guards rng_, lastStep_ and evolving state
  HostSpec spec_;
  util::Clock& clock_;
  util::Rng rng_;
  util::TimePoint bootTime_;
  util::TimePoint lastStep_;

  // Evolving state.
  double load1_ = 0.1;
  double load5_ = 0.1;
  double load15_ = 0.1;
  double loadMean_ = 0.4;      // slow diurnal drift target
  double diurnalPhase_ = 0.0;  // radians
  double memUsedMb_ = 0.0;
  double swapUsedMb_ = 0.0;
  double diskUsedMb_ = 0.0;
  double netInBytes_ = 0.0;
  double netOutBytes_ = 0.0;
  double burstFactor_ = 1.0;  // occasional traffic bursts
  int procBase_ = 80;
};

/// A named set of hosts sharing a cluster name; what one Ganglia gmond
/// or SCMS master reports on.
class ClusterModel {
 public:
  ClusterModel(std::string clusterName, std::size_t hostCount,
               util::Clock& clock, std::uint64_t seed,
               const HostSpec& baseSpec = {});

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return hosts_.size(); }
  HostModel& host(std::size_t i) { return *hosts_.at(i); }
  HostModel* findHost(const std::string& hostName);
  std::vector<std::string> hostNames() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<HostModel>> hosts_;
};

}  // namespace gridrm::sim
