// Synthetic machine model.
//
// The paper's agents (SNMP, Ganglia, NWS, NetLogger, SCMS) report
// metrics of real campus machines. Our substitute is a stochastic host
// whose metrics evolve over the injected Clock's time: run-queue load
// follows a mean-reverting AR(1) process around a slowly drifting
// (diurnal) mean, CPU/memory/process figures derive from load, and
// network counters accumulate bursty traffic. Deterministic per seed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/util/clock.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::sim {

struct HostSpec {
  std::string name = "node00";
  std::string clusterName = "cluster";
  int cpuCount = 2;
  int cpuMhz = 2400;
  std::string cpuModel = "SimCPU 2400";
  std::int64_t memTotalMb = 2048;
  std::int64_t swapTotalMb = 1024;
  std::int64_t diskTotalMb = 80 * 1024;
  int nicSpeedMbps = 1000;
  std::string osName = "Linux";
  std::string osVersion = "2.4.20";
  std::string arch = "i686";
};

/// One coherent reading of every metric, taken under a single lock and
/// a single model advance. Agents that render a whole host (a Ganglia
/// XML dump, an SCMS status page, a GETBULK MIB walk) take one snapshot
/// instead of ~14 per-metric lock round-trips — the difference between
/// tens of µs and ms-scale serialization at 10k hosts.
struct HostSnapshot {
  double load1 = 0;
  double load5 = 0;
  double load15 = 0;
  double cpuUserPct = 0;
  double cpuSystemPct = 0;
  double cpuIdlePct = 0;
  std::int64_t memFreeMb = 0;
  std::int64_t memUsedMb = 0;
  std::int64_t swapFreeMb = 0;
  std::int64_t diskFreeMb = 0;
  std::int64_t netInBytes = 0;
  std::int64_t netOutBytes = 0;
  int processCount = 0;
  std::int64_t uptimeSeconds = 0;
};

class HostModel {
 public:
  HostModel(HostSpec spec, util::Clock& clock, std::uint64_t seed);

  const HostSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }

  /// Advance the model to clock.now() and read every metric at once:
  /// one lock acquisition, one model advance. Thread-safe.
  HostSnapshot snapshot();

  // Per-metric getters delegate to snapshot(); prefer snapshot() when
  // reading more than one metric. Thread-safe: several agents may
  // serve the same host to concurrent clients.
  double load1() { return snapshot().load1; }
  double load5() { return snapshot().load5; }
  double load15() { return snapshot().load15; }
  double cpuUserPct() { return snapshot().cpuUserPct; }
  double cpuSystemPct() { return snapshot().cpuSystemPct; }
  double cpuIdlePct() { return snapshot().cpuIdlePct; }
  std::int64_t memFreeMb() { return snapshot().memFreeMb; }
  std::int64_t memUsedMb() { return snapshot().memUsedMb; }
  std::int64_t swapFreeMb() { return snapshot().swapFreeMb; }
  std::int64_t diskFreeMb() { return snapshot().diskFreeMb; }
  std::int64_t netInBytes() { return snapshot().netInBytes; }
  std::int64_t netOutBytes() { return snapshot().netOutBytes; }
  int processCount() { return snapshot().processCount; }
  std::int64_t uptimeSeconds();
  util::TimePoint bootTime() const noexcept { return bootTime_; }
  /// Timestamp of the most recent model step.
  util::TimePoint lastUpdate() const;

  /// Force the model forward to the clock's current time.
  void refresh();

 private:
  void advanceTo(util::TimePoint t);  // callers hold mu_
  void step(double dtSeconds);

  mutable std::mutex mu_;  // guards rng_, lastStep_ and evolving state
  HostSpec spec_;
  util::Clock& clock_;
  util::Rng rng_;
  util::TimePoint bootTime_;
  util::TimePoint lastStep_;

  // Evolving state.
  double load1_ = 0.1;
  double load5_ = 0.1;
  double load15_ = 0.1;
  double loadMean_ = 0.4;      // slow diurnal drift target
  double diurnalPhase_ = 0.0;  // radians
  double memUsedMb_ = 0.0;
  double swapUsedMb_ = 0.0;
  double diskUsedMb_ = 0.0;
  double netInBytes_ = 0.0;
  double netOutBytes_ = 0.0;
  double burstFactor_ = 1.0;  // occasional traffic bursts
  int procBase_ = 80;
};

/// A named set of hosts sharing a cluster name; what one Ganglia gmond
/// or SCMS master reports on.
class ClusterModel {
 public:
  ClusterModel(std::string clusterName, std::size_t hostCount,
               util::Clock& clock, std::uint64_t seed,
               const HostSpec& baseSpec = {});

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return hosts_.size(); }
  HostModel& host(std::size_t i) { return *hosts_.at(i); }
  HostModel* findHost(const std::string& hostName);
  std::vector<std::string> hostNames() const;
  /// Advance every host's model to the clock's current time — the
  /// cluster's periodic maintenance tick when driven by an EventLoop
  /// (see EventLoop::scheduleEvery) instead of per-getter catch-up.
  void refreshAll();

 private:
  std::string name_;
  std::vector<std::unique_ptr<HostModel>> hosts_;
};

}  // namespace gridrm::sim
