// Whole-grid topology builder for the performance study (E20).
//
// Wires N simulated hosts across G sites, one gateway per site, a GMA
// directory and (optionally) the federation layer onto ONE EventLoop
// and one Network in charge mode: latency is accounted, never slept,
// so a 10k-host grid constructs and runs in seconds of wall time.
// Everything is deterministic per seed — two Topologies built with the
// same options produce byte-identical event traces and counters.
//
// The builder exists above gridrm_sim proper (it pulls in agents, core
// and global), so it lives in the separate gridrm_topology target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gridrm/agents/site.hpp"
#include "gridrm/core/gateway.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/global/global_layer.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/sim/event_loop.hpp"

namespace gridrm::sim {

/// Deterministic multi-server queueing model used by the perf-study
/// harness to turn "K clients share a gateway with S workers" into
/// simulated sojourn times. admit() assigns the job to the server that
/// frees first: start = max(arrival, freeAt), done = start + service +
/// extra (the job's own measured cost, e.g. drained network charge).
/// Pure arithmetic — no randomness — so sweeps replay identically.
class ServiceStation {
 public:
  ServiceStation(std::size_t servers, util::Duration serviceTime)
      : freeAt_(servers > 0 ? servers : 1, 0), serviceTime_(serviceTime) {}

  /// Returns the completion time of a job arriving at `now`.
  util::TimePoint admit(util::TimePoint now, util::Duration extra = 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < freeAt_.size(); ++i) {
      if (freeAt_[i] < freeAt_[best]) best = i;
    }
    const util::TimePoint start = now > freeAt_[best] ? now : freeAt_[best];
    const util::TimePoint done = start + serviceTime_ + extra;
    freeAt_[best] = done;
    return done;
  }

  std::size_t servers() const noexcept { return freeAt_.size(); }

 private:
  std::vector<util::TimePoint> freeAt_;
  util::Duration serviceTime_;
};

struct TopologyOptions {
  std::size_t gateways = 4;
  std::size_t hostsPerGateway = 8;
  std::uint64_t seed = 1;
  /// Start a GlobalLayer per gateway and register it with the
  /// directory (required for directory lookups and federated queries).
  bool federation = true;
  /// Head-node agents beyond per-host SNMP (Ganglia, NWS, NetLogger,
  /// SCMS, SQL, MDS). Off by default: at 10k hosts the lean set keeps
  /// construction and per-gateway source counts manageable.
  bool fullAgentSet = false;
  /// Per-site periodic maintenance on the loop; 0 disables.
  util::Duration refreshInterval = 60 * util::kSecond;
  util::Duration trapInterval = 0;
  /// GlobalLayer::tick() cadence on the loop (lease renewal, fragment
  /// NACKs); 0 disables. Must stay under half the directory lease TTL
  /// (120s default) or registrations expire as simulated time runs.
  util::Duration globalTickInterval = 30 * util::kSecond;
  /// Simulated time advanced after the host models boot, so metrics
  /// have evolved away from their initial state before measurement.
  util::Duration warmup = 60 * util::kSecond;
  /// Replicated directory service (PR 10). 1 = the legacy standalone
  /// directory on host "gma"; N>1 builds N replicas on hosts
  /// "gma0".."gmaN-1" sharing one shard map, and every GlobalLayer
  /// gets the full replica set as seeds.
  std::size_t directoryReplicas = 1;
  /// Shards of the replicated service; 0 = one shard per replica.
  std::size_t directoryShards = 0;
  /// Holders per shard (primary + read replicas), clamped to replicas.
  std::size_t directoryReplication = 2;
  /// Anti-entropy cadence on the loop (replicated mode); 0 disables.
  util::Duration directorySyncInterval = 10 * util::kSecond;
  /// Loss/jitter default to zero: the perf study wants identical
  /// counters across same-seed runs, and every sampled draw stays on a
  /// deterministic path only if no request ever retries.
  net::LinkModel defaultLink{2 * util::kMillisecond, 0, 0.0};
  core::GatewayOptions gatewayBase;  // name/host overwritten per gateway
  global::GlobalOptions globalOptions;

  TopologyOptions() {
    // Scale-friendly gateway defaults: 2 worker threads and inline
    // event dispatch keep a 100-gateway grid at ~200 threads; pooled
    // connections skip the isValid probe round-trip.
    gatewayBase.queryWorkers = 2;
    gatewayBase.eventOptions.threadedDispatch = false;
    gatewayBase.validatePooledConnections = false;
  }
};

/// One in-process grid: loop + network + directory + G (site, gateway
/// [, global layer]) triples. Gateways are named "gw<i>" on network
/// host "gw<i>"; sites are "site<i>" with hosts "site<i>-nodeNN".
class Topology {
 public:
  explicit Topology(TopologyOptions options = {});
  ~Topology();

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  EventLoop& loop() noexcept { return loop_; }
  net::Network& network() noexcept { return *network_; }
  global::GmaDirectory& directory() noexcept { return *directories_.front(); }
  net::Address directoryAddress() const {
    return {"gma", global::kDirectoryPort};
  }

  // Replicated directory service (PR 10; directoryReplicas > 1).
  std::size_t directoryReplicaCount() const noexcept {
    return directories_.size();
  }
  global::GmaDirectory& directoryReplica(std::size_t i) {
    return *directories_.at(i);
  }
  net::Address directoryReplicaAddress(std::size_t i) const;
  /// The addresses a DirectoryClient bootstraps from (all replicas, or
  /// the standalone address).
  std::vector<net::Address> directorySeeds() const;
  /// Destroy and rebuild replica i with an empty store — a restart
  /// that lost its state. Anti-entropy repopulates it from the
  /// co-holding peers on the following sync rounds.
  void restartDirectoryReplica(std::size_t i);

  const TopologyOptions& options() const noexcept { return options_; }
  std::size_t gatewayCount() const noexcept { return gateways_.size(); }
  std::size_t hostCount() const noexcept {
    return options_.gateways * options_.hostsPerGateway;
  }

  agents::SiteSimulation& site(std::size_t i) { return *sites_.at(i); }
  core::Gateway& gateway(std::size_t i) { return *gateways_.at(i); }
  /// Null when options.federation is false.
  global::GlobalLayer* globalLayer(std::size_t i) {
    return globals_.empty() ? nullptr : globals_.at(i).get();
  }
  /// Admin session token on gateway i (opened at construction).
  const std::string& adminToken(std::size_t i) const {
    return admins_.at(i);
  }

  /// Block until every gateway's background scheduler has drained.
  void quiesce();

 private:
  TopologyOptions options_;
  EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  global::ShardMap directoryMap_;  // empty in standalone mode
  std::vector<std::unique_ptr<global::GmaDirectory>> directories_;
  std::vector<std::unique_ptr<agents::SiteSimulation>> sites_;
  std::vector<std::unique_ptr<core::Gateway>> gateways_;
  std::vector<std::unique_ptr<global::GlobalLayer>> globals_;
  std::vector<std::string> admins_;
};

}  // namespace gridrm::sim
