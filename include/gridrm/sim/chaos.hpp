// Chaos fault-injection harness (PR 5).
//
// Drives the simulated network's failure knobs (per-link loss via
// Network::setLink, host failures via Network::setHostDown) and
// arbitrary callbacks (gateway crash/restart) along a deterministic,
// seeded timeline in injected-clock time. Integration tests and
// bench_federation script faults once and replay them bit-identically:
//
//   sim::ChaosInjector chaos(network, clock, /*seed=*/7);
//   chaos.lossBurst("gw-a", "gw-b", 1 * util::kSecond, 5 * util::kSecond,
//                   0.25);
//   chaos.partition({"site-a"}, {"site-b"}, 8 * util::kSecond,
//                   12 * util::kSecond);
//   chaos.at(15 * util::kSecond, [&] { gwB.crash(); });
//   chaos.run(500 * util::kMillisecond,
//             [&] { gwA.tick(); gwB.tick(); },
//             20 * util::kSecond);
//
// run() alternates advancing the clock one step and firing every fault
// whose time has come, then calls the pump so the system under test can
// poll/heal; faults with symmetric ends (burst/partition/down windows)
// enqueue their own repair action.
//
// Since PR 9 the injector can instead ride a sim::EventLoop
// (bindLoop): fault actions become loop events, interleaving
// deterministically with agent maintenance ticks and network delivery
// events. The manual step/pump loop above keeps working — run() and
// fireDue() become thin wrappers that drive the bound loop — but new
// code should bind a loop and let it own time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gridrm/net/network.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::sim {

class EventLoop;

class ChaosInjector {
 public:
  ChaosInjector(net::Network& network, util::Clock& clock,
                std::uint64_t seed = 1);

  /// Schedule an arbitrary fault (or repair) at absolute clock time
  /// `when`. Actions scheduled for the same instant fire in insertion
  /// order.
  void at(util::TimePoint when, std::function<void()> action);

  /// Raise the loss probability on the hostA<->hostB link to
  /// `lossProbability` during [from, until), restoring the previous
  /// default-link characteristics afterwards. Latency/jitter keep the
  /// network's default-link values.
  void lossBurst(const std::string& hostA, const std::string& hostB,
                 util::TimePoint from, util::TimePoint until,
                 double lossProbability);

  /// Total two-way partition: every cross-side (sideA x sideB) link
  /// drops all traffic during [from, until).
  void partition(const std::vector<std::string>& sideA,
                 const std::vector<std::string>& sideB, util::TimePoint from,
                 util::TimePoint until);

  /// Take `host` down (requests fail, datagrams vanish) during
  /// [from, until).
  void hostDownWindow(const std::string& host, util::TimePoint from,
                      util::TimePoint until);

  /// Attach the injector to an event loop: every action already queued
  /// (and every action scheduled afterwards) becomes a loop event, so
  /// faults interleave deterministically with maintenance ticks and
  /// network deliveries. The loop's clock must be the clock this
  /// injector was constructed with. run()/fireDue() then drive the
  /// bound loop instead of sleeping the clock directly.
  void bindLoop(EventLoop& loop);

  /// Drive the timeline: until every scheduled action has fired plus
  /// `settle` more simulated time, advance the clock by `step`, fire
  /// the actions that are due, then invoke `pump` (gateway tick/poll
  /// plumbing). Returns the number of actions fired.
  ///
  /// Deprecated in favour of bindLoop() + EventLoop::runUntil — kept
  /// as a compatibility wrapper so PR 5/7-era chaos scripts replay
  /// unchanged (when a loop is bound this drives it with the same
  /// step/pump cadence).
  std::size_t run(util::Duration step, const std::function<void()>& pump,
                  util::Duration settle = 0);

  /// Fire every action due at or before the clock's current time
  /// without advancing it (for tests that manage time themselves).
  std::size_t fireDue();

  std::size_t pendingActions() const noexcept {
    return actions_.size() + pendingOnLoop_;
  }

  /// Default link restored after bursts/partitions; mirrors the value
  /// passed to Network::setDefaultLink.
  void setRestoreLink(const net::LinkModel& link) { restoreLink_ = link; }

  util::Rng& rng() noexcept { return rng_; }

 private:
  struct Action {
    util::TimePoint when;
    std::uint64_t order;  // insertion tiebreak for equal `when`
    std::function<void()> fn;
  };

  void scheduleOnLoop(util::TimePoint when, std::function<void()> fn);

  net::Network& network_;
  util::Clock& clock_;
  util::Rng rng_;  // for randomized schedules built on top of at()
  net::LinkModel restoreLink_;
  std::vector<Action> actions_;  // kept sorted by (when, order)
  std::uint64_t nextOrder_ = 0;
  EventLoop* loop_ = nullptr;        // set by bindLoop
  std::size_t pendingOnLoop_ = 0;    // chaos actions queued on the loop
  std::uint64_t firedOnLoop_ = 0;    // chaos actions the loop has fired
};

}  // namespace gridrm::sim
