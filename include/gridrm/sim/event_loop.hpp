// Deterministic discrete-event scheduling core (the SimGrid model:
// fast, scalable simulation as a library).
//
// One single-threaded loop owns a SimClock and a priority queue of
// (due time, insertion seq, callback) events. run* drivers pop events
// in (when, seq) order, jump the clock straight to each event's due
// time — no real sleeping, no polling — and fire the callback, which
// may schedule or cancel further events. Ties break by insertion seq,
// so two runs that schedule the same events in the same order replay
// byte-identically per seed: the whole 10k-host performance study
// (bench_perf_study, E20) rides on this property.
//
// The loop is NOT thread-safe: schedule/cancel/run must happen on the
// driving thread (callbacks run on it too). Code that executes *under*
// an event may spin up worker threads internally (a gateway answering
// a query), but those workers must not touch the loop — and, because
// the loop's clock is marked single-writer, a debug build catches any
// worker that tries to advance simulated time behind the loop's back.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "gridrm/util/clock.hpp"
#include "gridrm/util/event_scheduler.hpp"

namespace gridrm::sim {

using util::EventId;

class EventLoop final : public util::EventScheduler {
 public:
  explicit EventLoop(util::TimePoint start = 0);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// The clock this loop owns and advances. Safe to hand to every
  /// simulated component (Network, agents, gateways); they read it,
  /// the loop writes it.
  util::SimClock& clock() noexcept { return clock_; }
  util::TimePoint now() const noexcept { return clock_.now(); }

  // --- scheduling -----------------------------------------------------
  EventId schedule(util::TimePoint when, std::function<void()> fn) override;
  EventId scheduleAfter(util::Duration delay, std::function<void()> fn);
  /// Periodic event, first due one period from now.
  EventId scheduleEvery(util::Duration period,
                        std::function<void()> fn) override;
  /// Periodic event with an explicit first delay (0 = due immediately
  /// on the next run). Staggering first delays keeps 10k periodic
  /// ticks from all landing on the same instant.
  EventId scheduleEvery(util::Duration period, util::Duration firstDelay,
                        std::function<void()> fn);
  /// Cancel a one-shot or periodic event; safe from within a callback
  /// (including the event's own). Returns false when already fired or
  /// unknown.
  bool cancel(EventId id) override;

  // --- drivers --------------------------------------------------------
  /// Fire every event due at or before `t` (inclusive), advancing the
  /// clock to each event's due time, then leave the clock at exactly
  /// `t`. Returns events fired.
  std::size_t runUntil(util::TimePoint t);
  std::size_t runFor(util::Duration d) { return runUntil(now() + d); }
  /// Fire the single earliest pending event regardless of its due time
  /// (test hook); returns false when nothing is pending.
  bool runOne();

  // --- introspection --------------------------------------------------
  std::size_t pendingEvents() const noexcept { return handlers_.size(); }
  std::uint64_t eventsFired() const noexcept { return eventsFired_; }
  std::optional<util::TimePoint> nextEventTime() const;

  /// Append one "t=<due> id=<id>\n" line per fired event to `sink`
  /// (null disables). Two runs of the same scenario must produce
  /// byte-identical traces — the determinism acceptance check.
  void setTraceSink(std::string* sink) noexcept { trace_ = sink; }

 private:
  struct Handler {
    std::function<void()> fn;
    util::Duration period = 0;  // 0 = one-shot
  };
  struct HeapEntry {
    util::TimePoint when;
    std::uint64_t seq;
    EventId id;
  };
  struct HeapCmp {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      // priority_queue is a max-heap; invert for earliest-first, with
      // insertion seq as the stable tie-break.
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  EventId enqueue(util::TimePoint when, util::Duration period,
                  std::function<void()> fn);
  void fire(const HeapEntry& entry,
            const std::shared_ptr<Handler>& handler);

  util::SimClock clock_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCmp> heap_;
  std::unordered_map<EventId, std::shared_ptr<Handler>> handlers_;
  EventId nextId_ = 1;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t eventsFired_ = 0;
  std::string* trace_ = nullptr;
};

}  // namespace gridrm::sim
