// Batch predicate / expression kernels for the vectorized SQL engine.
//
// Compilation model: the existing AST is interpreted *per batch*
// instead of per row. evalPredicateBatch() walks the tree once for a
// whole selection, producing a tri-state mask; AND/OR recurse with a
// narrowed selection vector so the right-hand side only runs where the
// row interpreter would have evaluated it (identical short-circuit
// reachability -- which also governs which error sites "exist").
//
// Parity rule: a kernel either produces exactly what the row
// interpreter produces for every selected row, or throws Fallback and
// the caller re-runs the statement on the row interpreter, which then
// raises the exact row-path error (same gate pattern as
// store::planFederated's pushdown=false path). Data-dependent error
// sites -- unknown columns actually reached, non-numeric arithmetic,
// aggregate calls in scalar context -- therefore never need error
// message replication here.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gridrm/sql/ast.hpp"
#include "gridrm/sql/vec/column_batch.hpp"

namespace gridrm::sql::vec {

/// Internal abort signal: the statement/data shape cannot be proven
/// byte-identical to the row interpreter. Never escapes the engine
/// entry points in engine.hpp.
struct Fallback {};

/// Column resolution context, mirroring store's TableRowAccessor: a
/// non-empty qualifier must case-insensitively match the table name or
/// alias, then the first case-insensitive name match wins.
struct BatchSchema {
  std::vector<std::string_view> names;
  std::string_view table;
  std::string_view alias;

  /// Index of the referenced column, or -1 when unknown (an error only
  /// if a row actually evaluates it -- see the Column kernel).
  std::ptrdiff_t resolve(std::string_view qualifier,
                         std::string_view name) const noexcept;
};

/// One batch of rows: per-schema-column typed vectors. Columns the
/// current expression never references are left null (not built).
struct Batch {
  std::size_t rows = 0;
  std::vector<const VecColumn*> cols;  // size == schema.names.size()
};

// Tri-state predicate cells, aligned to a selection vector.
inline constexpr std::uint8_t kMFalse = 0;
inline constexpr std::uint8_t kMTrue = 1;
inline constexpr std::uint8_t kMNull = 2;
using Mask = std::vector<std::uint8_t>;

/// Batch-local row indices (ascending). A selection whose size equals
/// batch.rows is by construction the identity and lets Column kernels
/// borrow the batch column without a gather.
using Sel = std::vector<std::uint32_t>;

/// Evaluate `expr` as a predicate over the selected rows; result mask
/// is aligned to `sel`. Throws Fallback on any parity doubt.
Mask evalPredicateBatch(const Expr& expr, const BatchSchema& schema,
                        const Batch& batch, const Sel& sel);

/// Evaluate `expr` as a value producer over the selected rows; the
/// result column is aligned to `sel`.
VecColumn evalValueBatch(const Expr& expr, const BatchSchema& schema,
                         const Batch& batch, const Sel& sel);

}  // namespace gridrm::sql::vec
