// Vectorized batch SELECT engine.
//
// trySelect() executes a parsed SELECT over row-major input by
// transposing it once into typed column batches (~1024 rows each) and
// running predicate/projection/aggregation kernels per batch. It
// either returns a result proven byte-identical to the row
// interpreter's, or nullopt -- in which case the caller re-runs the
// row interpreter (store::executeSelectInterpreted), which also
// reproduces any error the statement would raise, bit for bit.
//
// tryFilterBatch() is the zero-transpose entry used by the tsdb scan:
// decoded segment columns are fed in directly as VecColumns and only
// the WHERE phase runs vectorized.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "gridrm/sql/ast.hpp"
#include "gridrm/sql/vec/column_batch.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::sql::vec {

/// Process-wide engine counters (monotonic, relaxed atomics inside).
/// Exported through Gateway::vecEngineStats for operator visibility.
struct VecEngineStats {
  std::uint64_t vecStatements = 0;    // statements fully executed vectorized
  std::uint64_t vecFallbacks = 0;     // bailed to the row interpreter
  std::uint64_t vecBatches = 0;       // column batches processed
  std::uint64_t vecRowsScanned = 0;   // rows entering the filter kernels
  std::uint64_t vecRowsFiltered = 0;  // rows the filter kernels dropped
};

VecEngineStats engineStats() noexcept;
void resetEngineStats() noexcept;

/// Kill switch (used by benchmarks and tests to force the row
/// interpreter). Defaults to enabled.
bool engineEnabled() noexcept;
void setEngineEnabled(bool enabled) noexcept;

struct SelectResult {
  std::vector<std::vector<util::Value>> rows;
};

/// Execute `stmt` vectorized over `rows` (cells addressed by
/// `columnNames` order). Returns nullopt when any construct or data
/// shape cannot be proven identical to the row interpreter; the caller
/// must then fall back. Never throws SqlError/EvalError itself.
std::optional<SelectResult> trySelect(
    const SelectStatement& stmt,
    const std::vector<std::string_view>& columnNames,
    const std::vector<std::vector<util::Value>>& rows);

/// Run only the WHERE phase over one pre-built batch of `rowCount`
/// rows; `cols` is indexed like `columnNames` and entries for columns
/// the predicate does not touch may be null. Returns the selected row
/// indices (ascending) or nullopt on fallback.
std::optional<std::vector<std::uint32_t>> tryFilterBatch(
    const Expr& where, const std::vector<std::string_view>& columnNames,
    std::string_view table, std::string_view alias,
    const std::vector<const VecColumn*>& cols, std::size_t rowCount);

}  // namespace gridrm::sql::vec
