// Typed column batches for the vectorized SQL engine (sql::vec).
//
// A VecColumn holds one source column's cells for a batch of rows
// (~kBatchRows at a time on the row-store path, one sealed segment's
// candidates on the tsdb path), decomposed into flat typed vectors so
// the batch kernels in kernels.hpp run tight loops instead of
// re-walking the AST per row:
//
//   * Numeric - per-cell tag (NULL / Int / Real) + int64 and double
//               value streams. Int and Real cells share one column
//               because SQL comparisons and arithmetic promote across
//               them (util::Value::compare / arithmeticValues).
//   * Str     - int32 dictionary codes (-1 = NULL). The dictionary is
//               either built per batch (row-store transpose) or
//               borrowed from an immutable tsdb segment, which is what
//               makes the segment scan zero-transpose: no string is
//               copied to evaluate a predicate.
//   * Bool    - validity tag + packed byte per cell.
//   * Generic - plain util::Value cells. The catch-all for columns that
//               genuinely mix types; evaluation still proceeds cell-wise
//               over a flat array with the shared scalar kernels.
//
// Batches carry no shared mutable state: columns are value types (plus
// a borrowed pointer into an immutable segment), so concurrent queries
// never synchronise on them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gridrm/util/value.hpp"

namespace gridrm::sql::vec {

/// Row-store transpose granularity. The tsdb path batches one
/// segment's candidate set instead (segments are a few thousand rows).
inline constexpr std::size_t kBatchRows = 1024;

enum class ColKind : std::uint8_t { Numeric, Bool, Str, Generic };

// Per-cell tags for ColKind::Numeric; kNullTag doubles as the Bool
// validity tag (0 = NULL, 1 = valid).
inline constexpr std::uint8_t kNullTag = 0;
inline constexpr std::uint8_t kIntTag = 1;
inline constexpr std::uint8_t kRealTag = 2;

struct VecColumn {
  ColKind kind = ColKind::Numeric;
  std::size_t size = 0;

  // Numeric: tag[i] selects ints[i] / reals[i] / NULL.
  // Bool: tag[i] 0 = NULL, 1 = valid (value in bools[i]).
  std::vector<std::uint8_t> tag;
  std::vector<std::int64_t> ints;
  std::vector<double> reals;
  std::vector<std::uint8_t> bools;

  // Str: codes[i] indexes *dict, -1 = NULL.
  std::vector<std::int32_t> codes;
  const std::vector<std::string>* dict = nullptr;
  std::shared_ptr<std::vector<std::string>> ownedDict;  // when built here

  // Generic.
  std::vector<util::Value> values;

  bool isNullAt(std::size_t i) const noexcept;
  /// Materialise one cell (the only place a Str cell copies its string).
  util::Value valueAt(std::size_t i) const;

  // Appenders used by the builders and the tsdb segment scan; callers
  // pick one family per column (matching `kind`).
  void appendNull();
  void appendInt(std::int64_t v);
  void appendReal(double v);
  void appendBool(bool v);
  void appendCode(std::int32_t code);  // Str; -1 = NULL
  void appendValue(util::Value v);     // Generic

  /// Rewrite this column in place as ColKind::Generic (used when a
  /// builder discovers a type the current family cannot hold).
  void demoteToGeneric();
};

/// Reusable per-column transpose state. One builder serves one column
/// slot for the lifetime of a query: `build` clears the typed vectors
/// but keeps their capacity, and the string dictionary (plus its
/// lookup index) persists across batches, so steady-state batch
/// builds allocate nothing. The dictionary only ever grows, which
/// keeps codes handed out in earlier batches valid; string_view keys
/// reference the source rows, which outlive the query.
struct ColumnBuilder {
  VecColumn col;
  std::unordered_map<std::string_view, std::int32_t> dictIndex;

  /// Transpose cells `rows[ids[pos]][c]` (or `rows[pos][c]` when `ids`
  /// is null) for pos in [begin, end) into `col`, picking the
  /// narrowest ColKind that fits the cells actually present and
  /// demoting to Generic on a mixed column.
  void build(const std::vector<std::vector<util::Value>>& rows,
             const std::uint32_t* ids, std::size_t begin, std::size_t end,
             std::size_t c);
};

/// One-shot convenience over ColumnBuilder (no state reuse).
VecColumn buildColumn(const std::vector<std::vector<util::Value>>& rows,
                      const std::uint32_t* ids, std::size_t begin,
                      std::size_t end, std::size_t col);

/// Gather `column` at the given positions into a new dense column.
VecColumn gatherColumn(const VecColumn& column,
                       const std::uint32_t* positions, std::size_t n);

}  // namespace gridrm::sql::vec
