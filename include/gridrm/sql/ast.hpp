// SQL abstract syntax tree.
//
// The supported subset is what GridRM clients need (paper section 3.2.3):
// GLUE groups behave like relational tables, so queries look like
//   SELECT * FROM Processor
//   SELECT load1, load5 FROM Processor WHERE load1 > 0.8 ORDER BY load1 DESC
// plus INSERT for the gateway's internal historical database.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/util/value.hpp"

namespace gridrm::sql {

enum class ExprKind : std::uint8_t {
  Literal,  // 42, 'str', TRUE, NULL
  Column,   // name or table.name
  Unary,    // NOT x, -x
  Binary,   // x OP y
  InList,   // x [NOT] IN (a, b, ...)
  IsNull,   // x IS [NOT] NULL
  Between,  // x [NOT] BETWEEN lo AND hi
  Call,     // aggregate call: COUNT(*), COUNT(x), SUM/AVG/MIN/MAX(x)
};

enum class BinOp : std::uint8_t {
  Or,
  And,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Like,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
};

enum class UnOp : std::uint8_t { Not, Neg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  util::Value literal;        // Literal
  std::string table;          // Column qualifier (may be empty)
  std::string name;           // Column name
  BinOp bop = BinOp::Eq;      // Binary
  UnOp uop = UnOp::Not;       // Unary
  bool negated = false;       // NOT IN / IS NOT NULL / NOT BETWEEN / NOT LIKE
  bool starArg = false;       // COUNT(*)
  std::vector<ExprPtr> children;

  static ExprPtr makeLiteral(util::Value v);
  static ExprPtr makeColumn(std::string table, std::string name);
  static ExprPtr makeUnary(UnOp op, ExprPtr operand);
  static ExprPtr makeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr makeCall(std::string name, std::vector<ExprPtr> args,
                          bool starArg = false);

  /// True when this tree contains an aggregate Call node.
  bool containsAggregate() const;

  /// Deep copy, used when a consolidated query is re-targeted per source.
  ExprPtr clone() const;
  /// Render back to SQL text (parenthesised; round-trips through parse).
  std::string toSql() const;
};

const char* binOpName(BinOp op) noexcept;

struct SelectItem {
  ExprPtr expr;       // null means '*'
  std::string alias;  // optional AS alias
  bool isStar() const noexcept { return expr == nullptr; }
};

struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;       // the GLUE group (single-table queries)
  std::string tableAlias;  // optional
  ExprPtr where;           // optional
  std::vector<ExprPtr> groupBy;  // GROUP BY expressions (may be empty)
  std::vector<OrderKey> orderBy;
  std::optional<std::int64_t> limit;

  std::string toSql() const;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;            // optional (empty = all)
  std::vector<std::vector<util::Value>> rows;  // VALUES (...), (...)

  std::string toSql() const;
};

enum class StatementKind : std::uint8_t { Select, Insert };

struct Statement {
  StatementKind kind;
  SelectStatement select;  // valid when kind == Select
  InsertStatement insert;  // valid when kind == Insert

  std::string toSql() const {
    return kind == StatementKind::Select ? select.toSql() : insert.toSql();
  }
};

}  // namespace gridrm::sql
