// Expression evaluation over an abstract row. Used by the mini
// relational store (historical DB), by drivers applying WHERE clauses
// to agent data, and by the gateway's cross-source consolidation.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "gridrm/sql/ast.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::sql {

/// Resolves a column reference to its value in the current row.
/// Returning nullopt means "no such column" (an error), whereas a
/// present-but-null Value is SQL NULL.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;
  virtual std::optional<util::Value> column(const std::string& table,
                                            const std::string& name) const = 0;
};

/// Adapter over a name->Value lookup function.
class FnRowAccessor final : public RowAccessor {
 public:
  using Fn = std::function<std::optional<util::Value>(const std::string&)>;
  explicit FnRowAccessor(Fn fn) : fn_(std::move(fn)) {}
  std::optional<util::Value> column(const std::string& /*table*/,
                                    const std::string& name) const override {
    return fn_(name);
  }

 private:
  Fn fn_;
};

/// Thrown when evaluation references an unknown column or applies an
/// operator to incompatible types.
class EvalError : public std::runtime_error {
 public:
  explicit EvalError(const std::string& msg) : std::runtime_error(msg) {}
};

// Shared scalar kernels. Exported so the vectorized batch engine
// (sql/vec) applies bit-identical semantics cell-by-cell on its slow
// paths; evaluate() uses the same functions, so the two engines cannot
// drift.

/// Comparison (Eq/Ne/Lt/Le/Gt/Ge) with NULL propagation; any other op
/// throws EvalError.
util::Value compareValues(BinOp op, const util::Value& l,
                          const util::Value& r);

/// Arithmetic (Add/Sub/Mul/Div/Mod) with NULL propagation, string
/// concatenation for Add, int/double promotion, and division by zero
/// -> NULL. Signed int64 overflow is defined: Add/Sub/Mul that
/// overflow, INT64_MIN / -1, and unary negation of INT64_MIN promote
/// the result to Real (computed in double, like a mixed int/real
/// expression); x % -1 is 0. Non-numeric operands throw EvalError.
util::Value arithmeticValues(BinOp op, const util::Value& l,
                             const util::Value& r);

/// SQL unary minus (NULL -> NULL, non-numeric throws EvalError; see
/// arithmeticValues for the INT64_MIN case).
util::Value negateValue(const util::Value& v);

/// Evaluate an expression against a row. Three-valued logic is
/// simplified to two-valued with NULL propagation: any comparison or
/// arithmetic involving NULL yields NULL, and a NULL predicate result is
/// treated as false by callers (matching SQL WHERE semantics).
util::Value evaluate(const Expr& expr, const RowAccessor& row);

/// Evaluate `expr` as a predicate: NULL and false are both "row excluded".
bool evaluatePredicate(const Expr& expr, const RowAccessor& row);

/// SQL LIKE pattern match ('%' any run, '_' any single character).
bool likeMatch(const std::string& text, const std::string& pattern);

}  // namespace gridrm::sql
