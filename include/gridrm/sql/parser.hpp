// Recursive-descent parser for the GridRM SQL subset (see ast.hpp for
// the grammar's shape: single-table SELECT with WHERE / GROUP BY +
// aggregates / ORDER BY / LIMIT, and multi-row INSERT).
#pragma once

#include <cstdint>
#include <string>

#include "gridrm/sql/ast.hpp"
#include "gridrm/sql/lexer.hpp"

namespace gridrm::sql {

/// Parse one SQL statement (SELECT or INSERT). Throws ParseError on
/// malformed input.
Statement parse(const std::string& text);

/// Convenience: parse text that must be a SELECT.
SelectStatement parseSelect(const std::string& text);

/// Process-wide count of parseSelect() invocations. Instrumentation for
/// tests and benchmarks that must prove a plan cache eliminated
/// re-parsing (E14); not meant for production logic.
std::uint64_t parseSelectCount() noexcept;

}  // namespace gridrm::sql
