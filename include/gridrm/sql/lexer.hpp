// SQL lexer and the ParseError type shared by the lexer and parser.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "gridrm/sql/token.hpp"

namespace gridrm::sql {

/// Thrown for malformed queries (lexing or parsing). Drivers translate
/// this into a dbc::SqlError on the query path.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t pos)
      : std::runtime_error(message + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}
  std::size_t pos() const noexcept { return pos_; }

 private:
  std::size_t pos_;
};

/// Tokenise a query. The terminating End token is always present.
std::vector<Token> lex(const std::string& text);

}  // namespace gridrm::sql
