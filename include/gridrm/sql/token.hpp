// SQL token model. GridRM's client language is a pragmatic SQL subset
// (paper section 3: "String queries in, and ResultSets out").
#pragma once

#include <cstddef>
#include <string>

namespace gridrm::sql {

enum class TokenType {
  End,
  Identifier,  // table / column names; keywords are identifiers the parser
               // matches case-insensitively, as SQL requires
  String,      // 'quoted literal'
  Integer,
  Real,
  Comma,
  Dot,
  Star,
  LParen,
  RParen,
  Eq,    // =
  Ne,    // != or <>
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Slash,
  Percent,
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;     // raw text (unquoted for String)
  std::size_t pos = 0;  // byte offset in the query, for error messages
};

}  // namespace gridrm::sql
