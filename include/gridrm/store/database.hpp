// In-memory relational store with a SQL front-end.
//
// Serves two roles from the paper:
//  * the Gateway's internal historical database (section 3.1.1:
//    "historical data is retrieved from the Gateway's internal
//    database"), with time-series retention, and
//  * the backing store of the GLUE-native "SQL" data source agent.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/sql/ast.hpp"

namespace gridrm::store {

namespace tsdb {
class TimeSeriesStore;
}

class Table {
 public:
  Table(std::string name, std::vector<dbc::ColumnInfo> columns);

  const std::string& name() const noexcept { return name_; }
  const std::vector<dbc::ColumnInfo>& columns() const noexcept {
    return columns_;
  }
  std::size_t rowCount() const noexcept { return rows_.size(); }
  const std::vector<std::vector<dbc::Value>>& rows() const noexcept {
    return rows_;
  }

  /// Append a row; width must match. Values are stored as given (no
  /// implicit coercion: the store is schemaless beyond arity, like the
  /// Value cells that flow through drivers).
  void insert(std::vector<dbc::Value> row);
  /// Append with explicit column names; unnamed columns become NULL.
  void insertNamed(const std::vector<std::string>& columns,
                   std::vector<dbc::Value> row);

  /// Drop rows where `timeColumn` < cutoff (retention policy).
  std::size_t pruneOlderThan(const std::string& timeColumn,
                             std::int64_t cutoff);

  void clear() { rows_.clear(); }

 private:
  friend class Database;
  std::string name_;
  std::vector<dbc::ColumnInfo> columns_;
  std::vector<std::vector<dbc::Value>> rows_;
};

class Database {
 public:
  Database() = default;

  /// Create (or replace) a table.
  void createTable(const std::string& name,
                   std::vector<dbc::ColumnInfo> columns);
  bool hasTable(const std::string& name) const;
  std::vector<std::string> tableNames() const;

  /// Attach the columnar time-series store (not owned). Once attached,
  /// createTimeSeries() places history tables there and every accessor
  /// on this facade routes to it for those tables, so callers keep a
  /// single Database handle for live row tables and historical columns.
  void attachTimeSeries(tsdb::TimeSeriesStore* store) noexcept {
    tsdb_ = store;
  }
  tsdb::TimeSeriesStore* timeSeries() const noexcept { return tsdb_; }

  /// Create (or replace) a time-partitioned history table keyed on
  /// `timeColumn`: lands in the attached time-series store when one is
  /// present, otherwise degrades to a plain row table.
  void createTimeSeries(const std::string& name,
                        std::vector<dbc::ColumnInfo> columns,
                        const std::string& timeColumn);

  /// Execute a SELECT; throws dbc::SqlError for unknown tables/columns
  /// and sql::ParseError for malformed SQL.
  std::unique_ptr<dbc::VectorResultSet> query(const std::string& sql) const;
  std::unique_ptr<dbc::VectorResultSet> query(
      const sql::SelectStatement& stmt) const;

  /// Execute an INSERT; returns inserted row count.
  std::size_t execute(const std::string& sql);
  std::size_t execute(const sql::InsertStatement& stmt);

  /// Direct row append (hot path for event recording; skips SQL text).
  void insertRow(const std::string& table, std::vector<dbc::Value> row);

  std::size_t rowCount(const std::string& table) const;
  std::size_t pruneOlderThan(const std::string& table,
                             const std::string& timeColumn,
                             std::int64_t cutoff);

 private:
  Table* findTable(const std::string& name);
  const Table* findTable(const std::string& name) const;
  bool isTimeSeries(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Table>> tables_;
  tsdb::TimeSeriesStore* tsdb_ = nullptr;  // optional, not owned
};

/// Evaluate a SELECT against explicitly provided columns/rows (shared by
/// Database and by driver-side WHERE/ORDER BY/LIMIT application).
/// Prefers the vectorized batch engine (sql/vec) and falls back to the
/// row interpreter whenever the engine cannot prove byte-identical
/// semantics, so results and errors are indistinguishable between the
/// two paths.
std::unique_ptr<dbc::VectorResultSet> executeSelect(
    const sql::SelectStatement& stmt,
    const std::vector<dbc::ColumnInfo>& columns,
    const std::vector<std::vector<dbc::Value>>& rows);

/// The row-interpreter executor (the vec engine's fallback and ground
/// truth; exported for differential testing and benchmarks).
std::unique_ptr<dbc::VectorResultSet> executeSelectInterpreted(
    const sql::SelectStatement& stmt,
    const std::vector<dbc::ColumnInfo>& columns,
    const std::vector<std::vector<dbc::Value>>& rows);

/// Derive the output column descriptor for one projected item (alias /
/// column metadata propagation). Shared with the federated merge
/// executor so coordinator-side projections carry identical metadata.
dbc::ColumnInfo projectColumn(const sql::SelectItem& item,
                              const std::vector<dbc::ColumnInfo>& source);

}  // namespace gridrm::store
