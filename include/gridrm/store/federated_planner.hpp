// Federated query planner (R-GMA direction): decompose one SELECT over
// many sites into per-site fragments plus a coordinator merge.
//
// A statement eligible for push-down is rewritten into a *fragment*
// each owning gateway executes over the union of its sources' rows:
//
//  * WHERE predicates and projections travel with the fragment, so
//    filtering happens at the owning site and only surviving data
//    crosses the WAN;
//  * GROUP BY / COUNT / SUM / MIN / MAX / AVG become per-site partial
//    aggregates — one row per (site, group) instead of every raw row —
//    with AVG shipped as a SUM+COUNT pair so the coordinator can form
//    the exact global mean;
//  * non-aggregate statements push ORDER BY and LIMIT to the sites
//    (per-site top-N is a superset of the global top-N) and append
//    hidden order-key columns so the coordinator can re-sort rows it
//    cannot otherwise evaluate (keys may reference unprojected
//    columns).
//
// The coordinator merge (`mergeFederated`) reproduces the semantics of
// store::executeSelect over the site-grouped union of raw rows *cell
// for cell*: NULL-skipping aggregates, SUM's Int-iff-all-Int typing,
// AVG always Real, MIN/MAX first-occurrence tie keeping, groups in
// key-sorted order, bare columns resolved against the group's first
// row, and the empty-input global group. The differential property
// battery (tests/store/federated_planner_test.cpp) asserts this
// byte-identity over generated multi-site workloads.
//
// Statements the planner cannot prove decomposable (unknown aggregate
// functions, aggregates in WHERE or GROUP BY, star projections mixed
// with aggregates, malformed aggregate arity) fall back to
// ship-all-rows: sites return raw rows and the coordinator executes
// the original statement over the union, reproducing single-site
// behaviour — including its errors — exactly.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/sql/ast.hpp"

namespace gridrm::store {

/// One aggregate call's merge recipe: which fragment column(s) carry
/// its per-site partials and how they combine.
struct FederatedAggSlot {
  std::string key;  // call.toSql() — matches Call nodes at merge time
  std::string fn;   // count / sum / avg / min / max (lower-case)
  /// Fragment column of the partial (the SUM partial for avg).
  std::size_t partial = 0;
  /// Fragment column of the paired COUNT partial (avg only).
  std::size_t countPartial = 0;
  bool isAvg() const noexcept { return fn == "avg"; }
};

/// A bare column the merge resolves against the group's first row:
/// `column` is the source column name, `index` its fragment position.
struct FederatedFirstValue {
  std::string column;
  std::size_t index = 0;
};

struct FederatedPlan {
  /// False = not decomposable; sites ship raw rows (shipAllSql) and
  /// the coordinator executes `original` over the union.
  bool pushdown = false;
  /// True when the original statement takes the aggregate path
  /// (GROUP BY present or any aggregate in projection/ordering).
  bool aggregate = false;
  /// Deep copy of the planned statement (the coordinator's merge input).
  sql::SelectStatement original;
  /// SQL each owning site executes over the union of its sources' rows
  /// when the plan is pushed down (== shipAllSql when !pushdown).
  std::string fragmentSql;
  /// The ship-all-rows fragment ("SELECT * FROM t"): the baseline
  /// transport used for fallbacks and A/B measurement (E18).
  std::string shipAllSql;

  // Aggregate-merge metadata (pushdown && aggregate).
  std::size_t keyCount = 0;  // leading fragment columns = group keys
  std::vector<FederatedFirstValue> firstValues;
  std::vector<FederatedAggSlot> aggSlots;
  /// Global aggregates (keyCount == 0) emit one partial row per site
  /// even when the site matched zero rows; with bare first-row columns
  /// in play the merge must not capture firsts from such a row (an
  /// empty first site would mask a later site's real first row). The
  /// fragment then carries a count(*) at `rowCountPartial` so the
  /// merge can tell the two apart.
  bool trackRowCount = false;
  std::size_t rowCountPartial = 0;

  // Non-aggregate merge metadata: trailing hidden order-key columns
  // appended to the fragment projection (one per ORDER BY key).
  std::size_t hiddenKeys = 0;
};

/// Fragment rows one site returned (frames already reassembled), in
/// the site's union order.
struct SitePartial {
  std::vector<dbc::ColumnInfo> columns;
  std::vector<std::vector<util::Value>> rows;
};

/// Decompose `stmt`. Never throws on shape: statements that cannot be
/// pushed down come back with pushdown = false (ship-all fallback), so
/// semantic errors surface at the coordinator exactly as they would on
/// a single gateway.
std::shared_ptr<const FederatedPlan> planFederated(
    const sql::SelectStatement& stmt);

/// Merge per-site fragment results at the coordinator, in site order.
/// `decomposed` tells how `sites` was produced: true = fragment
/// partials (plan.fragmentSql), false = raw ship-all rows, merged by
/// executing the original statement over the union. Throws
/// dbc::SqlError for semantic errors, exactly like executeSelect.
std::unique_ptr<dbc::VectorResultSet> mergeFederated(
    const FederatedPlan& plan, const std::vector<SitePartial>& sites,
    bool decomposed);

}  // namespace gridrm::store
