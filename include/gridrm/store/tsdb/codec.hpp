// Column codecs for the historical time-series store (tsdb).
//
// A sealed segment stores each attribute as one EncodedColumn: a
// validity bitmap, a run-length-encoded type-tag stream (cells in a
// monitoring column almost always share one type, so a mixed column
// costs extra bytes only where it actually mixes), and per-type value
// streams:
//   * Int     - zig-zag delta varints; the designated time column uses
//               delta-of-delta, the classic timestamp trick (regular
//               polling intervals collapse to one byte per sample).
//   * Real    - XOR against the previous bit pattern, stored as a
//               leading/trailing-zero-byte control byte plus the
//               meaningful middle bytes (repeated gauges cost one byte).
//   * String  - dictionary + run-length-encoded ids (GLUE string
//               columns such as HostName/ClusterName repeat heavily).
//   * Bool    - packed bitmap.
//
// Decoding is exact: a ColumnCursor reproduces the original Value
// sequence byte for byte, including NULLs, NaNs, -0.0 and mixed-type
// cells, which the tsdb-vs-row-store property test relies on.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::store::tsdb {

// --- varint / zig-zag primitives (LEB128) ----------------------------

void putVarint(std::vector<std::uint8_t>& out, std::uint64_t v);

inline std::uint64_t zigzagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
inline std::int64_t zigzagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Sequential varint reader over a byte stream.
class VarintReader {
 public:
  VarintReader(const std::uint8_t* data, std::size_t size) noexcept
      : p_(data), end_(data + size) {}
  explicit VarintReader(const std::vector<std::uint8_t>& bytes) noexcept
      : VarintReader(bytes.data(), bytes.size()) {}

  bool done() const noexcept { return p_ == end_; }
  /// Read the next varint; throws dbc::SqlError on a truncated stream
  /// (corruption guard; sealed segments never trip it).
  std::uint64_t next();

 private:
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- encoded column ---------------------------------------------------

/// The immutable compressed form of one segment column.
struct EncodedColumn {
  dbc::ColumnInfo info;
  std::size_t rowCount = 0;

  std::vector<std::uint8_t> validity;  // bit per row; 1 = non-null
  /// Type tags for non-null cells, RLE pairs (tag, runLength) where tag
  /// is the ValueType enum value. Omitted (empty) when every non-null
  /// cell shares `uniformTag`.
  std::vector<std::uint8_t> tags;
  std::uint8_t uniformTag = 0;  // valid when tags.empty() and any non-null

  std::vector<std::uint8_t> bools;    // packed bits, one per Bool cell
  std::vector<std::uint8_t> ints;     // zig-zag (delta|delta-of-delta) varints
  std::vector<std::uint8_t> reals;    // XOR control byte + middle bytes
  std::vector<std::string> dict;      // string dictionary, first-seen order
  std::vector<std::uint8_t> ids;      // RLE (dict id, run length) varints
  bool deltaOfDelta = false;          // int stream codec flavour

  /// Encoded footprint in bytes (streams + dictionary heap).
  std::size_t bytes() const noexcept;
};

/// Streaming encoder: feed every cell of the column in row order, then
/// finish(). One pass, no buffering of decoded values.
class ColumnEncoder {
 public:
  /// `deltaOfDelta` selects the time-column flavour for Int cells.
  explicit ColumnEncoder(dbc::ColumnInfo info, bool deltaOfDelta = false);

  void add(const util::Value& v);
  EncodedColumn finish();

 private:
  void addTag(std::uint8_t tag);

  EncodedColumn col_;
  // Int codec state.
  std::int64_t prevInt_ = 0;
  std::int64_t prevDelta_ = 0;
  bool haveInt_ = false;
  bool haveIntDelta_ = false;
  // Real codec state.
  std::uint64_t prevBits_ = 0;
  // Bool packing state.
  std::size_t boolCount_ = 0;
  // Tag RLE state.
  bool haveTag_ = false;
  std::uint8_t runTag_ = 0;
  std::uint64_t runLen_ = 0;
  bool mixed_ = false;
  std::vector<std::pair<std::uint8_t, std::uint64_t>> tagRuns_;
  // String dictionary state.
  std::unordered_map<std::string, std::uint32_t> dictIndex_;
  std::vector<std::uint32_t> dictIds_;  // per String cell, RLE'd at finish
};

/// Sequential decoder. next() advances the cursor and decodes the codec
/// state for the current row; value() materialises the util::Value
/// (string copies happen only here, which is what late materialisation
/// skips for rows a query does not keep).
class ColumnCursor {
 public:
  explicit ColumnCursor(const EncodedColumn& col);

  std::size_t rowCount() const noexcept { return col_.rowCount; }
  /// Advance to the next row; false past the end.
  bool next();
  /// True when the current cell is SQL NULL.
  bool isNull() const noexcept { return null_; }
  /// Materialise the current cell.
  util::Value value() const;
  /// Current cell as int64 without constructing a Value (0 when the
  /// cell is not an Int; callers check type via isNull/value()).
  std::int64_t rawInt() const noexcept { return int_; }

  // Raw codec state of the current cell, for the vectorized segment
  // scan (which rebuilds typed batch columns without Value boxing).
  // Valid only when !isNull(); rawTag is the ValueType enum byte.
  std::uint8_t rawTag() const noexcept { return tag_; }
  bool rawBool() const noexcept { return bool_; }
  std::uint64_t rawRealBits() const noexcept { return realBits_; }
  std::uint32_t rawDictId() const noexcept { return dictId_; }

 private:
  const EncodedColumn& col_;
  VarintReader intsR_;
  VarintReader idsR_;
  VarintReader tagsR_;
  std::size_t realPos_ = 0;
  std::size_t boolPos_ = 0;
  std::size_t row_ = static_cast<std::size_t>(-1);

  // Current cell state.
  bool null_ = true;
  std::uint8_t tag_ = 0;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t realBits_ = 0;
  std::uint32_t dictId_ = 0;

  // Codec running state.
  std::int64_t prevInt_ = 0;
  std::int64_t prevDelta_ = 0;
  bool haveInt_ = false;
  bool haveIntDelta_ = false;
  std::uint64_t prevBits_ = 0;
  std::uint64_t tagRun_ = 0;
  std::uint8_t runTag_ = 0;
  std::uint32_t idRun_ = 0;
  std::uint32_t runId_ = 0;
};

/// Approximate in-memory footprint of one row-store cell, used for the
/// compression-ratio accounting surfaced in TsdbStats (a Value is a
/// tagged variant; strings add their heap block).
std::size_t logicalCellBytes(const util::Value& v) noexcept;

}  // namespace gridrm::store::tsdb
