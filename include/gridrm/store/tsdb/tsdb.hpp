// TimeSeriesStore: the append-only, time-partitioned columnar engine
// behind the gateway's historical database (the "internal database" of
// paper section 3.1.1, rebuilt to survive the ROADMAP's "millions of
// metrics over days").
//
// Write path: appends land in a per-table write-ahead buffer of plain
// rows (immediately queryable); once the buffer reaches
// `tsdb.segment_rows` or spans `tsdb.segment_span_ms`, it seals into an
// immutable compressed Segment and simultaneously folds into the
// 1-minute and 1-hour rollup tiers (retention.hpp).
//
// Read path: historical SELECTs execute on the compressed columns with
// late materialisation (segment.hpp). When a query is aggregate-shaped
// (COUNT/SUM/AVG/MIN/MAX, GROUP BY over key columns) and its time range
// is coarse and bucket-aligned, the engine transparently rewrites it
// against the coarsest rollup tier that covers the range -- scanning up
// to 3600x fewer rows for the same (exact, for COUNT/SUM/MIN/MAX)
// answer. Everything else runs on the raw tier, byte-identical to the
// row store.
//
// Retention: retentionTick() seals complete rollup buckets into
// columnar segments and evicts each tier past its TTL (raw ->
// tsdb.raw_ttl_ms, rollups -> tsdb.rollup_1m_ttl_ms /
// tsdb.rollup_1h_ttl_ms).
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "gridrm/dbc/result_set.hpp"
#include "gridrm/sql/ast.hpp"
#include "gridrm/store/tsdb/retention.hpp"
#include "gridrm/store/tsdb/segment.hpp"
#include "gridrm/util/clock.hpp"
#include "gridrm/util/config.hpp"

namespace gridrm::store::tsdb {

struct TsdbOptions {
  bool enabled = true;
  /// Seal the write-ahead buffer into a segment at this many rows...
  std::size_t segmentRows = 4096;
  /// ...or once it spans this much time (0 = rows-only sealing).
  util::Duration segmentSpan = 5 * 60 * util::kSecond;
  /// TTL per tier; 0 = keep forever. Raw evicts to the rollups' safety
  /// net, the rollups evict for good.
  util::Duration rawTtl = 60 * 60 * util::kSecond;
  util::Duration rollup1mTtl = 24 * 60 * 60 * util::kSecond;
  util::Duration rollup1hTtl = 7 * 24 * 60 * 60 * util::kSecond;
  /// Rollup bucket widths (configurable so tests can shrink them).
  util::Duration bucket1m = 60 * util::kSecond;
  util::Duration bucket1h = 60 * 60 * util::kSecond;
  /// Rewrite coarse aggregate queries onto rollup tiers.
  bool tierQueries = true;
  /// A query's time span must cover at least this many buckets of a
  /// tier before the rewrite picks it.
  std::size_t tierMinSpanBuckets = 2;
  /// Feed decoded segment columns straight into the vectorized filter
  /// kernels during scans (sql::vec). Off forces the row interpreter.
  bool vectorizedScan = true;

  /// `tsdb.*` config keys: enabled, segment_rows, segment_span_ms,
  /// raw_ttl_ms, rollup_1m_ttl_ms, rollup_1h_ttl_ms, bucket_1m_ms,
  /// bucket_1h_ms, tier_queries, tier_min_span_buckets,
  /// vectorized_scan.
  static TsdbOptions fromConfig(const util::Config& config);
};

struct TsdbStats {
  std::uint64_t tables = 0;
  std::uint64_t appendedRows = 0;
  std::uint64_t seals = 0;          // raw segments sealed
  std::uint64_t segments = 0;       // live raw segments
  std::uint64_t sealedRows = 0;     // rows in live raw segments
  std::uint64_t activeRows = 0;     // rows in write-ahead buffers
  std::uint64_t encodedBytes = 0;   // raw-segment footprint
  std::uint64_t logicalBytes = 0;   // row-store equivalent of the same rows
  std::uint64_t rollupRows1m = 0;   // live rollup rows per tier
  std::uint64_t rollupRows1h = 0;
  std::uint64_t rollupSegments = 0; // sealed rollup segments (both tiers)
  std::uint64_t evictedSegments = 0;
  std::uint64_t evictedRows = 0;    // via TTL and pruneOlderThan
  std::uint64_t queries = 0;
  std::uint64_t rawQueries = 0;     // served from the raw tier
  std::uint64_t tierHits1m = 0;     // rewritten onto the 1m rollup
  std::uint64_t tierHits1h = 0;     // rewritten onto the 1h rollup
  ScanStats scan;                   // late-materialisation counters

  /// Encoded bytes per stored raw sample (cell); 0 when empty.
  double bytesPerSample() const noexcept {
    const std::uint64_t samples = sealedRows;
    return samples == 0 ? 0.0
                        : static_cast<double>(encodedBytes) /
                              static_cast<double>(samples);
  }
  /// Row-store bytes / encoded bytes for the sealed rows; 0 when empty.
  double compressionRatio() const noexcept {
    return encodedBytes == 0 ? 0.0
                             : static_cast<double>(logicalBytes) /
                                   static_cast<double>(encodedBytes);
  }
};

/// Derive the inclusive [lo, hi] sample-time bounds implied by a WHERE
/// tree: AND-conjuncts of simple `timeColumn OP intLiteral` comparisons
/// (and BETWEEN) tighten the bounds; anything else contributes nothing
/// (bounds only prune -- the full predicate still runs on survivors).
TimeBounds extractTimeBounds(const sql::Expr* where,
                             const std::string& timeColumn,
                             const std::string& table,
                             const std::string& alias);

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(util::Clock& clock, TsdbOptions options = {});

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  const TsdbOptions& options() const noexcept { return options_; }

  /// Create (or replace) a time-series table; `timeColumn` names the
  /// column carrying the sample timestamp (µs).
  void createTable(const std::string& name,
                   std::vector<dbc::ColumnInfo> columns,
                   const std::string& timeColumn);
  bool hasTable(const std::string& name) const;
  std::vector<std::string> tableNames() const;

  /// Append one sample row (width must match; throws dbc::SqlError).
  void append(const std::string& table, std::vector<util::Value> row);
  /// Append with explicit column names; unnamed columns become NULL
  /// (mirror of the row store's Table::insertNamed).
  void appendNamed(const std::string& table,
                   const std::vector<std::string>& columns,
                   std::vector<util::Value> row);

  /// Execute a SELECT. Routing: rollup tier when the statement is
  /// aggregate-shaped over a coarse aligned range, raw columns
  /// otherwise. Throws like store::Database::query.
  std::unique_ptr<dbc::VectorResultSet> query(
      const sql::SelectStatement& stmt) const;

  /// Raw rows currently held (sealed + write-ahead buffer).
  std::size_t rowCount(const std::string& table) const;

  /// Evict raw data older than `cutoff` (rollups keep their summary).
  /// Sealed segments drop only when wholly older; buffer rows drop
  /// individually, keeping undatable cells like the row store.
  std::size_t pruneOlderThan(const std::string& table, std::int64_t cutoff);

  /// Seal every non-empty write-ahead buffer (tests and benchmarks).
  void sealAll();

  /// Periodic maintenance: seal complete rollup buckets into columnar
  /// segments and apply per-tier TTLs. Returns raw rows evicted.
  std::size_t retentionTick();

  TsdbStats stats() const;

 private:
  struct TierData {
    RollupMap active;                 // complete + in-progress buckets
    std::vector<SegmentPtr> segments; // sealed rollup segments
  };
  struct TableData {
    std::string name;
    std::vector<dbc::ColumnInfo> columns;
    std::size_t timeIdx = 0;
    RollupSchema rollup;

    mutable std::shared_mutex mu;
    std::vector<std::vector<util::Value>> active;  // write-ahead buffer
    util::TimePoint activeMin = 0, activeMax = 0;
    bool activeHasTime = false;
    std::vector<SegmentPtr> segments;
    /// Highest sealed sample time: rollup buckets ending at or before
    /// this are complete, which bounds the tier-rewrite coverage.
    util::TimePoint sealedUntil = std::numeric_limits<util::TimePoint>::min();
    /// Per raw column: every non-null cell seen so far was numeric.
    /// A poisoned aggregate column disables tier rewrites that touch
    /// it (its rollup partials cannot reproduce SQL over raw values).
    std::vector<bool> numericClean;
    /// Every time cell seen so far was Int (or NULL). A Real-timed row
    /// is queryable raw but absent from rollups, so it disables tier
    /// rewrites for the whole table.
    bool timeClean = true;
    TierData tiers[2];  // [0] = 1m, [1] = 1h
  };

  std::shared_ptr<TableData> find(const std::string& name) const;
  /// Seal t.active into a segment + rollup folds. Caller holds t.mu.
  void seal(TableData& t);
  std::unique_ptr<dbc::VectorResultSet> rawQuery(
      const TableData& t, const sql::SelectStatement& stmt,
      const TimeBounds& bounds) const;
  /// Serve from a rollup tier ([0] = 1m, [1] = 1h); caller has already
  /// verified servability, alignment, span and coverage.
  std::unique_ptr<dbc::VectorResultSet> tierQuery(
      const TableData& t, const sql::SelectStatement& stmt,
      const TimeBounds& bounds, int tierIdx) const;

  util::Clock& clock_;
  TsdbOptions options_;
  mutable std::shared_mutex mu_;  // guards tables_ map
  std::vector<std::shared_ptr<TableData>> tables_;
  mutable std::mutex statsMu_;
  mutable TsdbStats stats_;
};

}  // namespace gridrm::store::tsdb
