// Tiered downsampling for the historical store (tsdb).
//
// Raw samples fold into per-bucket rollup rows the moment a raw segment
// seals: one fold into the 1-minute tier and one directly into the
// 1-hour tier (COUNT/SUM/MIN/MAX are associative, so folding raw rows
// straight into a coarse bucket equals re-folding the finer tier).
// Each tier then ages out independently under its own TTL -- raw keeps
// full resolution for the freshest window, the rollups keep min/max/
// sum/count per bucket for days at a fraction of the bytes.
//
// A rollup row for a raw schema (Source, RecordedAt, attrs...) is
//   [bucketStart, keyCols..., _rows, attr_count, attr_sum, attr_min,
//    attr_max, ...]
// where key columns are the non-numeric raw columns (Source, HostName,
// ...) and every Int/Real raw column contributes the four aggregate
// columns. Rows for one bucket+key may appear more than once (late
// arrivals after the bucket sealed); all consumers merge additively, so
// duplicates only cost bytes, never correctness.
#pragma once

#include <map>
#include <vector>

#include "gridrm/store/tsdb/segment.hpp"

namespace gridrm::store::tsdb {

/// SQL-ordering comparator for composite Value keys (same ordering the
/// row store's GROUP BY uses, so tier-rewritten groups come back in the
/// identical order).
struct ValueVectorLess {
  bool operator()(const std::vector<util::Value>& a,
                  const std::vector<util::Value>& b) const {
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const auto c = a[i].compare(b[i]);
      if (c != std::strong_ordering::equal) {
        return c == std::strong_ordering::less;
      }
    }
    return a.size() < b.size();
  }
};

/// Key: bucket start followed by the key-column values.
using RollupKey = std::vector<util::Value>;
using RollupMap =
    std::map<RollupKey, std::vector<util::Value>, ValueVectorLess>;

struct RollupSchema {
  std::vector<dbc::ColumnInfo> columns;  // full rollup row shape
  std::size_t timeColumn = 0;            // bucket-start column (always 0)
  std::size_t rowsColumn = 0;            // "_rows": COUNT(*) per bucket

  /// One aggregated raw column and where its partials live.
  struct Agg {
    std::size_t raw;  // raw column index
    std::size_t count, sum, min, max;  // rollup column indices
  };
  std::vector<std::size_t> keyRaw;  // raw index of each key column
  std::vector<std::size_t> keyCol;  // rollup index of each key column
  std::vector<Agg> aggs;

  /// The Agg entry for a raw column index, or nullptr.
  const Agg* aggFor(std::size_t rawIdx) const noexcept;
  /// The rollup key-column index for a raw column index, or npos.
  std::size_t keyFor(std::size_t rawIdx) const noexcept;
};

/// Classify raw columns (declared Int/Real aggregate; the rest key) and
/// lay out the rollup row shape.
RollupSchema buildRollupSchema(const std::vector<dbc::ColumnInfo>& raw,
                               std::size_t timeColumn);

/// Start of the bucket containing `t` (floor division, correct for
/// negative time points).
util::TimePoint bucketStart(util::TimePoint t, util::Duration bucket) noexcept;

/// Fold raw rows into `acc`, merging into existing bucket rows. Rows
/// whose time cell is not an Int cannot be bucketed and are skipped
/// (they stay queryable in the raw tier until it evicts them).
void foldRows(const RollupSchema& schema, std::size_t rawTimeColumn,
              util::Duration bucket,
              const std::vector<std::vector<util::Value>>& rows,
              RollupMap& acc);

/// Merge partial-aggregate cells: SUM stays Int while both sides are
/// Int (so tier-rewritten SUM over integer columns matches the row
/// store exactly), MIN/MAX use SQL Value ordering, NULL is the identity.
util::Value mergeSum(const util::Value& a, const util::Value& b);
util::Value mergeMin(const util::Value& a, const util::Value& b);
util::Value mergeMax(const util::Value& a, const util::Value& b);

}  // namespace gridrm::store::tsdb
