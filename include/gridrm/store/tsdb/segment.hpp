// Immutable, time-partitioned columnar segments (tsdb).
//
// A segment is the sealed unit of the historical store: every column of
// a batch of rows encoded with the codecs in codec.hpp, plus a small
// header (row count, time bounds, per-column offsets implicit in the
// EncodedColumn structs). Segments are immutable after sealing and are
// shared with readers through shared_ptr, so queries scan without any
// lock.
//
// scanSegment() is the late-materialisation executor: it decodes the
// time column first to bound candidate rows, decodes only the columns a
// predicate references to pick survivors, and only then materialises
// the projected columns at the surviving row indices. Cells of rows the
// query drops are skipped at the codec level (no Value construction, no
// string copies); ScanStats counts both sides for the E17 bench and the
// tier-selection tests.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gridrm/sql/ast.hpp"
#include "gridrm/store/tsdb/codec.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::store::tsdb {

class Segment {
 public:
  Segment(std::vector<EncodedColumn> columns, std::size_t timeColumn,
          util::TimePoint minTime, util::TimePoint maxTime,
          std::size_t logicalBytes);

  std::size_t rowCount() const noexcept { return rows_; }
  std::size_t columnCount() const noexcept { return columns_.size(); }
  const EncodedColumn& column(std::size_t i) const { return columns_[i]; }
  std::size_t timeColumn() const noexcept { return timeColumn_; }
  util::TimePoint minTime() const noexcept { return minTime_; }
  util::TimePoint maxTime() const noexcept { return maxTime_; }
  /// Encoded footprint (column streams + dictionaries).
  std::size_t bytes() const noexcept { return bytes_; }
  /// What the same rows would occupy as row-store Values (for the
  /// compression-ratio stat).
  std::size_t logicalBytes() const noexcept { return logicalBytes_; }

 private:
  std::vector<EncodedColumn> columns_;
  std::size_t timeColumn_;
  std::size_t rows_;
  util::TimePoint minTime_;
  util::TimePoint maxTime_;
  std::size_t bytes_;
  std::size_t logicalBytes_;
};

using SegmentPtr = std::shared_ptr<const Segment>;

/// Seal a batch of rows into an immutable segment. `timeColumn` selects
/// the delta-of-delta stream; rows need not be time-ordered (the codec
/// handles negative deltas, and min/max come from a scan).
SegmentPtr encodeSegment(const std::vector<dbc::ColumnInfo>& columns,
                         std::size_t timeColumn,
                         const std::vector<std::vector<util::Value>>& rows);

struct ScanStats {
  std::uint64_t segmentsScanned = 0;
  std::uint64_t segmentsPruned = 0;   // skipped entirely on time bounds
  std::uint64_t rowsScanned = 0;      // rows visited in scanned segments
  std::uint64_t rowsMaterialized = 0; // rows that survived into output
  std::uint64_t cellsMaterialized = 0;
  std::uint64_t cellsSkipped = 0;     // codec-advanced without a Value
};

/// Inclusive time bounds for a scan; defaults cover everything.
struct TimeBounds {
  util::TimePoint lo = std::numeric_limits<util::TimePoint>::min();
  util::TimePoint hi = std::numeric_limits<util::TimePoint>::max();

  bool contains(util::TimePoint t) const noexcept {
    return t >= lo && t <= hi;
  }
};

/// Scan one segment: keep rows whose time cell lies in `bounds` and
/// that satisfy `where` (null = no predicate), materialising only the
/// columns flagged in `needed` (size = columnCount). Survivors are
/// appended to `out` as full-width rows (unneeded cells stay NULL).
/// Column references in `where` resolve case-insensitively against the
/// segment schema, honouring `tableName`/`alias` qualifiers exactly
/// like the row store; an unknown reference throws the same
/// SqlError(NoSuchColumn). With `vectorized` (the default), the
/// predicate phase feeds the decoded columns straight into the batch
/// filter kernels (sql::vec::tryFilterBatch) -- no per-row Value
/// boxing, no string copies -- and falls back to the row interpreter
/// over the same decoded columns whenever the kernels cannot prove
/// identical semantics.
void scanSegment(const Segment& segment, const TimeBounds& bounds,
                 const sql::Expr* where, const std::string& tableName,
                 const std::string& alias, const std::vector<bool>& needed,
                 std::vector<std::vector<util::Value>>& out, ScanStats& stats,
                 bool vectorized = true);

/// Collect the (lower-cased) names of every column referenced by an
/// expression tree, regardless of qualifier.
void collectColumnRefs(const sql::Expr& expr,
                       std::vector<std::string>& names);

}  // namespace gridrm::store::tsdb
