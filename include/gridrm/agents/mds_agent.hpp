// MDS / GRIS simulator: an LDAP-flavoured information service.
//
// Paper section 3.1.4 lists LDAP among the in-flight GLUE
// implementations (Globus MDS2 published GLUE through per-site GRIS
// servers on port 2135). This agent serves a directory information
// tree rooted at "o=grid":
//
//   o=grid
//     Mds-Vo-name=<cluster>,o=grid
//       GlueHostUniqueID=<host>,Mds-Vo-name=<cluster>,o=grid
//
// with GLUE-LDAP attribute names (GlueHostProcessorLoadAverage1Min,
// GlueHostMainMemoryRAMAvailable, ...). Protocol is a line-oriented
// LDAP-search miniature:
//
//   SEARCH <baseDN> <base|one|sub> [(<attr>=<value>)]
//
// answered with LDIF-style entries ("dn: ..." then "attr: value" lines,
// blank-line separated). Coarse-ish: a subtree search returns every
// matching entry in one response.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::agents::mds {

inline constexpr std::uint16_t kGrisPort = 2135;

/// One directory entry.
struct LdifEntry {
  std::string dn;
  std::vector<std::pair<std::string, std::string>> attributes;

  std::string attr(const std::string& name, std::string fallback = "") const;
};

/// Parse an LDIF-style response into entries (driver side).
std::vector<LdifEntry> parseLdif(const std::string& text);

class MdsAgent final : public net::RequestHandler {
 public:
  /// Binds <headNode>:2135 (one GRIS per site, like one gmond).
  MdsAgent(sim::ClusterModel& cluster, net::Network& network,
           util::Clock& clock);
  ~MdsAgent() override;

  MdsAgent(const MdsAgent&) = delete;
  MdsAgent& operator=(const MdsAgent&) = delete;

  net::Address address() const;
  std::string baseDn() const { return "Mds-Vo-name=" + cluster_.name() + ",o=grid"; }

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

 private:
  /// Materialise the current DIT (one entry per host plus the VO entry).
  std::vector<LdifEntry> buildTree();

  sim::ClusterModel& cluster_;
  net::Network& network_;
  util::Clock& clock_;
};

}  // namespace gridrm::agents::mds
