// Network Weather Service (NWS) simulator.
//
// NWS measures network/CPU resources and *forecasts* their next values
// with a battery of simple predictors, reporting the forecast of the
// predictor with the lowest error so far. This agent keeps a short
// measurement history per (resource) derived from the host model and
// answers a line-oriented text protocol:
//
//   FORECAST <resource>        -> RESOURCE/MEASUREMENT/FORECAST/MSE lines
//   SERIES <resource> <n>      -> last n measurements, one per line
//   LIST                       -> available resource names
//
// Coarse-grained/plain-text per the paper's taxonomy: the driver parses
// a multi-line text response.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"
#include "gridrm/util/random.hpp"

namespace gridrm::agents::nws {

inline constexpr std::uint16_t kNwsPort = 8060;

inline constexpr const char* kResources[] = {"latency", "bandwidth",
                                             "availableCpu"};

/// One predictor in the NWS-style battery.
struct Forecaster {
  std::string name;
  double prediction = 0.0;
  double mse = 0.0;     // running mean squared error
  std::size_t n = 0;
};

class NwsAgent final : public net::RequestHandler {
 public:
  NwsAgent(sim::HostModel& host, net::Network& network, util::Clock& clock,
           std::uint64_t seed = 42);
  ~NwsAgent() override;

  NwsAgent(const NwsAgent&) = delete;
  NwsAgent& operator=(const NwsAgent&) = delete;

  net::Address address() const { return {host_.name(), kNwsPort}; }

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

 private:
  struct Series {
    std::deque<double> history;
    Forecaster lastValue{"last"};
    Forecaster runningMean{"mean"};
    Forecaster expSmooth{"exp_smooth(0.3)"};
    double meanAccum = 0.0;
    std::size_t count = 0;
    util::TimePoint lastSample = 0;
  };

  /// Advance measurement series to the current time (one sample per
  /// simulated measurement period).
  void sample();
  double measure(const std::string& resource);
  void updateForecasters(Series& s, double observed);
  const Forecaster& bestForecaster(const Series& s) const;

  sim::HostModel& host_;
  net::Network& network_;
  util::Clock& clock_;
  util::Rng rng_;
  std::mutex mu_;
  std::map<std::string, Series> series_;
  static constexpr util::Duration kPeriod = 10 * util::kSecond;
  static constexpr std::size_t kHistoryCap = 128;
};

}  // namespace gridrm::agents::nws
