// Ganglia gmond simulator.
//
// Real gmond answers any TCP connect with one XML document describing
// the whole cluster -- the canonical coarse-grained data source of the
// paper's driver taxonomy (section 3.3): "responses are typically
// coarse grained. A greater overhead is required to parse values from
// the response, which is typically XML".
//
// Any request payload (ignored, like a bare TCP connect) returns the
// full <GANGLIA_XML><CLUSTER><HOST><METRIC .../>...</> document.
#pragma once

#include <cstdint>
#include <string>

#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::agents::ganglia {

inline constexpr std::uint16_t kGmondPort = 8649;

/// Metric names emitted per host, mirroring gmond's standard set.
inline constexpr const char* kMetricNames[] = {
    "load_one",   "load_five", "load_fifteen", "cpu_user", "cpu_system",
    "cpu_idle",   "cpu_num",   "cpu_speed",    "mem_total", "mem_free",
    "swap_total", "swap_free", "disk_total",   "disk_free", "bytes_in",
    "bytes_out",  "proc_total", "machine_type", "os_name",  "os_release",
    "boottime"};

class GangliaAgent final : public net::RequestHandler {
 public:
  /// Binds <headNode>:8649 where headNode is the cluster's first host.
  GangliaAgent(sim::ClusterModel& cluster, net::Network& network,
               util::Clock& clock);
  ~GangliaAgent() override;

  GangliaAgent(const GangliaAgent&) = delete;
  GangliaAgent& operator=(const GangliaAgent&) = delete;

  net::Address address() const;

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

  /// Render the current cluster state as gmond XML (exposed for tests).
  std::string renderXml();

 private:
  sim::ClusterModel& cluster_;
  net::Network& network_;
  util::Clock& clock_;
};

}  // namespace gridrm::agents::ganglia
