// SCMS (Scalable Cluster Management System) simulator.
//
// SCMS's monitoring daemon answers simple text commands about cluster
// nodes. Fine-grained per the paper's taxonomy: one "key: value" block
// per queried host, trivially parsed.
//
// Protocol:
//   NODES            -> one host name per line
//   STAT <host>      -> "key: value" lines for that host
#pragma once

#include <cstdint>
#include <string>

#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::agents::scms {

inline constexpr std::uint16_t kScmsPort = 18800;

class ScmsAgent final : public net::RequestHandler {
 public:
  /// Binds <headNode>:18800 (SCMS runs one master per cluster).
  ScmsAgent(sim::ClusterModel& cluster, net::Network& network,
            util::Clock& clock);
  ~ScmsAgent() override;

  ScmsAgent(const ScmsAgent&) = delete;
  ScmsAgent& operator=(const ScmsAgent&) = delete;

  net::Address address() const;

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

 private:
  sim::ClusterModel& cluster_;
  net::Network& network_;
  util::Clock& clock_;
};

}  // namespace gridrm::agents::scms
