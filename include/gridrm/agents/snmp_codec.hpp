// Miniature SNMP: OIDs, varbinds, PDUs and a TLV wire codec.
//
// This is the fine-grained binary agent protocol of the paper's driver
// taxonomy (section 3.3): per-OID requests, "little or no parsing
// required to read the native data value". The codec is a compact
// tag/length/value binary format in the spirit of BER without its
// historical baggage.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "gridrm/util/value.hpp"

namespace gridrm::agents::snmp {

class Oid {
 public:
  Oid() = default;
  explicit Oid(std::vector<std::uint32_t> parts) : parts_(std::move(parts)) {}
  /// Parse dotted notation ("1.3.6.1.2.1.1.5"); empty result on garbage.
  static Oid parse(const std::string& text);

  std::string toString() const;
  const std::vector<std::uint32_t>& parts() const noexcept { return parts_; }
  bool empty() const noexcept { return parts_.empty(); }
  std::size_t size() const noexcept { return parts_.size(); }

  /// This OID extended with one more arc (table index).
  Oid child(std::uint32_t arc) const;
  bool isPrefixOf(const Oid& other) const noexcept;

  auto operator<=>(const Oid&) const = default;

 private:
  std::vector<std::uint32_t> parts_;
};

struct Varbind {
  Oid oid;
  util::Value value;
};

enum class PduType : std::uint8_t {
  Get = 0xA0,
  GetNext = 0xA1,
  Response = 0xA2,
  GetBulk = 0xA5,
  Trap = 0xA7,
};

enum class SnmpError : std::uint8_t {
  NoError = 0,
  NoSuchName = 2,
  GenErr = 5,
  AuthorizationError = 16,
};

struct Pdu {
  PduType type = PduType::Get;
  std::string community = "public";
  std::uint32_t requestId = 0;
  SnmpError errorStatus = SnmpError::NoError;
  std::uint32_t maxRepetitions = 0;  // GetBulk only
  std::vector<Varbind> varbinds;
};

/// Encode a PDU to wire bytes.
std::string encodePdu(const Pdu& pdu);
/// Decode; throws std::runtime_error on malformed bytes.
Pdu decodePdu(const std::string& bytes);

}  // namespace gridrm::agents::snmp
