// SNMP agent simulator: one per host, binding port 161 of its host on
// the simulated network. Exposes a MIB (MIB-II system group,
// Host-Resources and UCD-style load/memory/CPU subtrees, ifTable)
// backed by the host model, answers GET/GETNEXT/GETBULK, and emits
// traps to a configured sink when thresholds are crossed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "gridrm/agents/snmp_codec.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::agents::snmp {

/// Well-known OIDs of the simulated MIB (dotted text in `oids` namespace
/// for driver-side mapping tables).
namespace oids {
inline constexpr const char* kSysDescr = "1.3.6.1.2.1.1.1.0";
inline constexpr const char* kSysUpTime = "1.3.6.1.2.1.1.3.0";
inline constexpr const char* kSysName = "1.3.6.1.2.1.1.5.0";
inline constexpr const char* kHrSystemProcesses = "1.3.6.1.2.1.25.1.6.0";
inline constexpr const char* kHrMemorySize = "1.3.6.1.2.1.25.2.2.0";
// hrStorage row 1 = the root filesystem
inline constexpr const char* kHrStorageSize = "1.3.6.1.2.1.25.2.3.1.5.1";
inline constexpr const char* kHrStorageUsed = "1.3.6.1.2.1.25.2.3.1.6.1";
// hrProcessorLoad per-CPU table: 1.3.6.1.2.1.25.3.3.1.2.<cpu>
inline constexpr const char* kHrProcessorLoadPrefix = "1.3.6.1.2.1.25.3.3.1.2";
// UCD laLoad.{1,2,3} (1-, 5-, 15-minute)
inline constexpr const char* kLaLoad1 = "1.3.6.1.4.1.2021.10.1.3.1";
inline constexpr const char* kLaLoad5 = "1.3.6.1.4.1.2021.10.1.3.2";
inline constexpr const char* kLaLoad15 = "1.3.6.1.4.1.2021.10.1.3.3";
inline constexpr const char* kMemTotalReal = "1.3.6.1.4.1.2021.4.5.0";
inline constexpr const char* kMemAvailReal = "1.3.6.1.4.1.2021.4.6.0";
inline constexpr const char* kMemTotalSwap = "1.3.6.1.4.1.2021.4.3.0";
inline constexpr const char* kMemAvailSwap = "1.3.6.1.4.1.2021.4.4.0";
inline constexpr const char* kSsCpuUser = "1.3.6.1.4.1.2021.11.9.0";
inline constexpr const char* kSsCpuSystem = "1.3.6.1.4.1.2021.11.10.0";
inline constexpr const char* kSsCpuIdle = "1.3.6.1.4.1.2021.11.11.0";
// ifTable, interface 1
inline constexpr const char* kIfDescr = "1.3.6.1.2.1.2.2.1.2.1";
inline constexpr const char* kIfSpeed = "1.3.6.1.2.1.2.2.1.5.1";
inline constexpr const char* kIfInOctets = "1.3.6.1.2.1.2.2.1.10.1";
inline constexpr const char* kIfOutOctets = "1.3.6.1.2.1.2.2.1.16.1";
// Trap identities
inline constexpr const char* kTrapHighLoad = "1.3.6.1.4.1.55555.1.1";
inline constexpr const char* kTrapLowDisk = "1.3.6.1.4.1.55555.1.2";
}  // namespace oids

inline constexpr std::uint16_t kSnmpPort = 161;
inline constexpr std::uint16_t kTrapPort = 162;

struct TrapThresholds {
  double highLoad1 = 4.0;        // trap when load1 exceeds this
  std::int64_t lowDiskMb = 512;  // trap when free disk falls below this
};

class SnmpAgent final : public net::RequestHandler {
 public:
  /// Binds <host>:161. `community` guards all requests (coarse
  /// authentication, as SNMPv1/2c had).
  SnmpAgent(sim::HostModel& host, net::Network& network, util::Clock& clock,
            std::string community = "public");
  ~SnmpAgent() override;

  SnmpAgent(const SnmpAgent&) = delete;
  SnmpAgent& operator=(const SnmpAgent&) = delete;

  net::Address address() const { return {host_.name(), kSnmpPort}; }

  /// Configure where traps are sent (e.g. the gateway's event listener).
  void setTrapSink(const net::Address& sink) { trapSink_ = sink; }
  void setTrapThresholds(const TrapThresholds& t) { thresholds_ = t; }

  /// Evaluate thresholds now and emit traps on *edges* (crossing into
  /// the bad state); called internally after each served request and
  /// from the site simulation's periodic tick.
  void pollTraps();

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

 private:
  using Payload = net::Payload;
  /// Getters render from one HostSnapshot taken per PDU: a GETBULK walk
  /// over the whole MIB costs one host-model lock, not one per OID.
  using MibGetter = std::function<util::Value(const sim::HostSnapshot&)>;

  void buildMib();
  Pdu execute(const Pdu& request);
  std::optional<util::Value> lookup(const Oid& oid,
                                    const sim::HostSnapshot& snap);
  void sendTrap(const char* trapOid, std::vector<Varbind> varbinds);

  sim::HostModel& host_;
  net::Network& network_;
  util::Clock& clock_;
  std::string community_;
  std::map<Oid, MibGetter> mib_;
  std::optional<net::Address> trapSink_;
  TrapThresholds thresholds_;
  std::mutex trapMu_;
  bool inHighLoad_ = false;
  bool inLowDisk_ = false;
};

}  // namespace gridrm::agents::snmp
