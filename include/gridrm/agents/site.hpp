// SiteSimulation: wires one Grid site -- a cluster of simulated hosts
// plus the full set of native monitoring agents over them -- onto a
// Network. This is the test/bench/example substitute for the paper's
// instrumented campus site.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gridrm/agents/ganglia_agent.hpp"
#include "gridrm/agents/mds_agent.hpp"
#include "gridrm/agents/netlogger_agent.hpp"
#include "gridrm/agents/nws_agent.hpp"
#include "gridrm/agents/scms_agent.hpp"
#include "gridrm/agents/snmp_agent.hpp"
#include "gridrm/agents/sqlsrc_agent.hpp"
#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"
#include "gridrm/util/event_scheduler.hpp"

namespace gridrm::agents {

struct SiteOptions {
  std::string siteName = "siteA";
  std::size_t hostCount = 4;
  std::uint64_t seed = 1;
  bool withSnmp = true;       // one SNMP agent per host
  bool withGanglia = true;    // one gmond on the head node
  bool withNws = true;        // one NWS sensor on the head node
  bool withNetLogger = true;  // one NetLogger host on the head node
  bool withScms = true;       // one SCMS master on the head node
  bool withSql = true;        // one GLUE-native SQL source on the head node
  bool withMds = true;        // one MDS/GRIS LDAP-style service on the head node
  sim::HostSpec baseSpec;
};

class SiteSimulation {
 public:
  SiteSimulation(net::Network& network, util::Clock& clock,
                 SiteOptions options = {});
  ~SiteSimulation();

  SiteSimulation(const SiteSimulation&) = delete;
  SiteSimulation& operator=(const SiteSimulation&) = delete;

  const std::string& name() const noexcept { return options_.siteName; }
  sim::ClusterModel& cluster() noexcept { return *cluster_; }
  const SiteOptions& options() const noexcept { return options_; }

  std::size_t snmpAgentCount() const noexcept { return snmpAgents_.size(); }
  snmp::SnmpAgent& snmpAgent(std::size_t i) { return *snmpAgents_.at(i); }
  ganglia::GangliaAgent* gangliaAgent() noexcept { return ganglia_.get(); }
  nws::NwsAgent* nwsAgent() noexcept { return nws_.get(); }
  netlogger::NetLoggerAgent* netloggerAgent() noexcept { return netlogger_.get(); }
  scms::ScmsAgent* scmsAgent() noexcept { return scms_.get(); }
  sqlsrc::SqlSourceAgent* sqlAgent() noexcept { return sqlsrc_.get(); }
  mds::MdsAgent* mdsAgent() noexcept { return mds_.get(); }

  /// Data-source URLs for every agent at this site, in the form the
  /// gateway's driver layer consumes ("jdbc:snmp://host:161/...").
  std::vector<std::string> dataSourceUrls() const;

  /// URL of the head node's agent for a given subprotocol (empty
  /// subprotocol means "any driver may claim it").
  std::string headUrl(const std::string& subprotocol) const;

  /// Direct all SNMP agents' traps at `sink` (typically a gateway's
  /// event listener address).
  void setTrapSink(const net::Address& sink);
  /// Evaluate trap thresholds on all agents (the site's periodic tick).
  void pollTraps();

  /// Register the site's periodic maintenance on an event scheduler:
  /// trap-threshold evaluation every `trapInterval` and a whole-cluster
  /// model refresh every `refreshInterval`. Replaces hand-rolled
  /// step/pump loops — with a sim::EventLoop the ticks interleave
  /// deterministically with everything else on the loop. The events
  /// are cancelled on destruction (the scheduler must outlive the
  /// site or be destroyed without firing further).
  void scheduleMaintenance(util::EventScheduler& scheduler,
                           util::Duration trapInterval = 5 * util::kSecond,
                           util::Duration refreshInterval =
                               30 * util::kSecond);
  /// Cancel events registered by scheduleMaintenance (idempotent).
  void cancelMaintenance();

 private:
  net::Network& network_;
  util::Clock& clock_;
  SiteOptions options_;
  std::unique_ptr<sim::ClusterModel> cluster_;
  std::vector<std::unique_ptr<snmp::SnmpAgent>> snmpAgents_;
  std::unique_ptr<ganglia::GangliaAgent> ganglia_;
  std::unique_ptr<nws::NwsAgent> nws_;
  std::unique_ptr<netlogger::NetLoggerAgent> netlogger_;
  std::unique_ptr<scms::ScmsAgent> scms_;
  std::unique_ptr<sqlsrc::SqlSourceAgent> sqlsrc_;
  std::unique_ptr<mds::MdsAgent> mds_;
  util::EventScheduler* maintenanceScheduler_ = nullptr;
  std::vector<util::EventId> maintenanceEvents_;
};

}  // namespace gridrm::agents
