// NetLogger simulator.
//
// NetLogger instruments applications with timestamped ULM (Universal
// Logger Message) records: "DATE=... HOST=... PROG=... LVL=...
// NL.EVNT=... <fields>". Fine-grained per the paper's taxonomy --
// clients ask for specific recent events and parse single lines.
//
// Protocol:
//   TAIL <event> <n>   -> last n ULM lines for the event
//   EVENTS             -> known event names
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::agents::netlogger {

inline constexpr std::uint16_t kNetLoggerPort = 14830;

/// Event streams the simulated instrumented program emits.
inline constexpr const char* kEvents[] = {"cpu.load", "mem.free", "net.in",
                                          "net.out", "disk.free"};

/// Format one ULM record.
std::string formatUlm(util::TimePoint ts, const std::string& host,
                      const std::string& program, const std::string& event,
                      double value);

/// Parse VAL= out of a ULM record; returns false on malformed input.
bool parseUlmValue(const std::string& line, double& value);
/// Parse DATE= (microsecond timestamp) out of a ULM record.
bool parseUlmDate(const std::string& line, util::TimePoint& ts);

class NetLoggerAgent final : public net::RequestHandler {
 public:
  NetLoggerAgent(sim::HostModel& host, net::Network& network,
                 util::Clock& clock);
  ~NetLoggerAgent() override;

  NetLoggerAgent(const NetLoggerAgent&) = delete;
  NetLoggerAgent& operator=(const NetLoggerAgent&) = delete;

  net::Address address() const { return {host_.name(), kNetLoggerPort}; }

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

 private:
  void appendDue();  // generate log lines up to the current time

  sim::HostModel& host_;
  net::Network& network_;
  util::Clock& clock_;
  std::mutex mu_;
  std::map<std::string, std::deque<std::string>> logs_;
  util::TimePoint lastEmit_ = 0;
  static constexpr util::Duration kPeriod = 5 * util::kSecond;
  static constexpr std::size_t kCap = 256;
};

}  // namespace gridrm::agents::netlogger
