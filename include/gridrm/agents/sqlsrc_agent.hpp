// GLUE-native SQL data source.
//
// Paper section 3.2.3: "In some cases, the drivers may connect to data
// sources that already adhere to GLUE, in which case little or no
// further processing would be required." This agent is that case: a
// relational store whose tables *are* the GLUE groups, refreshed from
// the cluster's host models on each query. The driver for it is nearly
// a pass-through.
//
// Protocol: request body is SQL text; response is either a serialised
// result set (starts "RS1") or "ERR <message>".
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "gridrm/net/network.hpp"
#include "gridrm/sim/host_model.hpp"
#include "gridrm/store/database.hpp"
#include "gridrm/util/clock.hpp"

namespace gridrm::agents::sqlsrc {

inline constexpr std::uint16_t kSqlPort = 4000;

class SqlSourceAgent final : public net::RequestHandler {
 public:
  SqlSourceAgent(sim::ClusterModel& cluster, net::Network& network,
                 util::Clock& clock);
  ~SqlSourceAgent() override;

  SqlSourceAgent(const SqlSourceAgent&) = delete;
  SqlSourceAgent& operator=(const SqlSourceAgent&) = delete;

  net::Address address() const;

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

 private:
  void defineTables();
  void refreshTables();

  sim::ClusterModel& cluster_;
  net::Network& network_;
  util::Clock& clock_;
  std::mutex mu_;
  store::Database db_;
};

}  // namespace gridrm::agents::sqlsrc
