// ResultSet / ResultSetMetaData: the C++ analogue of
// javax.sql.ResultSet -- "String queries in, and ResultSets out"
// (paper section 3).
//
// Three concrete layers mirror the paper's driver-development model
// (section 3.2.1):
//   * ResultSet        - the interface drivers must satisfy.
//   * BaseResultSet    - every method throws SqlError(NotImplemented);
//                        driver result sets subclass it and override
//                        incrementally.
//   * VectorResultSet  - a complete in-memory implementation used by the
//                        store, by consolidation, and by most drivers.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/dbc/error.hpp"
#include "gridrm/util/value.hpp"

namespace gridrm::dbc {

using util::Value;
using util::ValueType;

struct ColumnInfo {
  std::string name;
  ValueType type = ValueType::Null;
  std::string unit;   // GLUE unit, e.g. "MB", "percent" (may be empty)
  std::string table;  // owning GLUE group (may be empty)
};

class ResultSetMetaData {
 public:
  ResultSetMetaData() = default;
  explicit ResultSetMetaData(std::vector<ColumnInfo> columns)
      : columns_(std::move(columns)) {}

  std::size_t columnCount() const noexcept { return columns_.size(); }
  const ColumnInfo& column(std::size_t i) const;
  /// Case-insensitive lookup; nullopt when absent.
  std::optional<std::size_t> columnIndex(const std::string& name) const;
  const std::vector<ColumnInfo>& columns() const noexcept { return columns_; }

 private:
  std::vector<ColumnInfo> columns_;
};

class ResultSet {
 public:
  virtual ~ResultSet() = default;

  /// Advance the cursor; false once past the last row. The cursor starts
  /// before the first row, exactly as in JDBC.
  virtual bool next() = 0;
  /// Cell of the current row by 0-based column index.
  virtual const Value& get(std::size_t column) const = 0;
  virtual const ResultSetMetaData& metaData() const = 0;

  // Convenience accessors layered on the virtual core.
  const Value& get(const std::string& columnName) const;
  std::string getString(const std::string& columnName) const;
  std::int64_t getInt(const std::string& columnName) const;
  double getReal(const std::string& columnName) const;
  bool getBool(const std::string& columnName) const;
  /// True when the most recent get() returned SQL NULL (JDBC wasNull()).
  bool wasNull() const noexcept { return wasNull_; }

 protected:
  mutable bool wasNull_ = false;
};

/// Paper 3.2.1: incremental driver development. Everything throws
/// SqlError(NotImplemented) until the driver overrides it.
class BaseResultSet : public ResultSet {
 public:
  using ResultSet::get;  // keep the by-name overloads visible
  bool next() override { throw SqlError::notImplemented("ResultSet::next"); }
  const Value& get(std::size_t) const override {
    throw SqlError::notImplemented("ResultSet::get");
  }
  const ResultSetMetaData& metaData() const override {
    throw SqlError::notImplemented("ResultSet::metaData");
  }
};

/// Fully materialised rows. This is also the unit of transfer between
/// gateways (the Global layer serialises/deserialises it).
class VectorResultSet final : public ResultSet {
 public:
  using ResultSet::get;  // keep the by-name overloads visible
  VectorResultSet() = default;
  VectorResultSet(ResultSetMetaData meta, std::vector<std::vector<Value>> rows)
      : meta_(std::move(meta)), rows_(std::move(rows)) {}

  bool next() override;
  const Value& get(std::size_t column) const override;
  const ResultSetMetaData& metaData() const override { return meta_; }

  std::size_t rowCount() const noexcept { return rows_.size(); }
  const std::vector<std::vector<Value>>& rows() const noexcept { return rows_; }

  /// Reset the cursor to before the first row.
  void rewind() noexcept { cursor_ = 0; started_ = false; }

  /// Copy the remaining rows of any ResultSet into a VectorResultSet.
  static std::unique_ptr<VectorResultSet> materialize(ResultSet& source);

 private:
  ResultSetMetaData meta_;
  std::vector<std::vector<Value>> rows_;
  std::size_t cursor_ = 0;
  bool started_ = false;
};

/// A zero-copy cursor over rows owned elsewhere: holds the storage via
/// shared_ptr<const VectorResultSet> and keeps only a private cursor.
/// This is what the gateway cache hands out on a hit — N concurrent
/// readers share one row vector instead of each receiving a deep copy —
/// and what the RequestManager returns so coalesced queries can fan one
/// driver execution out to many clients.
///
/// Ownership rules: the underlying rows are immutable for the lifetime
/// of every cursor; producers must never mutate a VectorResultSet after
/// publishing it through a shared_ptr<const ...>.
class SharedResultSet final : public ResultSet {
 public:
  using ResultSet::get;  // keep the by-name overloads visible
  explicit SharedResultSet(std::shared_ptr<const VectorResultSet> rs)
      : rs_(std::move(rs)) {}

  bool next() override;
  const Value& get(std::size_t column) const override;
  const ResultSetMetaData& metaData() const override {
    return rs_->metaData();
  }

  std::size_t rowCount() const noexcept { return rs_->rowCount(); }
  const std::vector<std::vector<Value>>& rows() const noexcept {
    return rs_->rows();
  }
  /// Reset the cursor to before the first row.
  void rewind() noexcept { cursor_ = 0; started_ = false; }

  /// The shared storage itself: hand this to another SharedResultSet for
  /// a second independent cursor, or to the cache for a zero-copy
  /// insert. Pointer identity across cursors proves rows were shared,
  /// not copied.
  const std::shared_ptr<const VectorResultSet>& shared() const noexcept {
    return rs_;
  }
  /// The materialised set (for serialisation and other consumers of the
  /// concrete type). The cursor state of `underlying()` is meaningless;
  /// use this SharedResultSet for iteration.
  const VectorResultSet& underlying() const noexcept { return *rs_; }

 private:
  std::shared_ptr<const VectorResultSet> rs_;
  std::size_t cursor_ = 0;
  bool started_ = false;
};

/// Builder used by drivers while translating native data to GLUE rows.
class ResultSetBuilder {
 public:
  ResultSetBuilder& addColumn(std::string name, ValueType type,
                              std::string unit = "", std::string table = "");
  ResultSetBuilder& addRow(std::vector<Value> row);
  std::unique_ptr<VectorResultSet> build();

 private:
  std::vector<ColumnInfo> columns_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace gridrm::dbc
