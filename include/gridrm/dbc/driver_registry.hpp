// DriverRegistry: the C++ analogue of java.sql.DriverManager's driver
// list (paper Tables 1 and 2). The GridRmDriverManager in src/core
// layers selection policy, the last-good-driver cache and failure
// handling on top of this.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gridrm/dbc/driver.hpp"

namespace gridrm::dbc {

class DriverRegistry {
 public:
  DriverRegistry() = default;

  /// Register a driver (Table 1). Drivers are kept in registration
  /// order; duplicates by name() replace the earlier registration, which
  /// is how a runtime-upgraded driver is installed "without affecting
  /// normal Gateway operation" (section 2).
  void registerDriver(std::shared_ptr<Driver> driver);

  /// Remove a driver by name; returns false when absent.
  bool unregisterDriver(const std::string& name);

  std::shared_ptr<Driver> find(const std::string& name) const;

  /// Snapshot of the registered drivers in registration order.
  std::vector<std::shared_ptr<Driver>> drivers() const;

  /// Table 2: iterate registered drivers and return the first whose
  /// acceptsUrl() is true; nullptr when none accepts. `scanned`, when
  /// non-null, receives the number of acceptsUrl probes performed (used
  /// by experiment E1 to show what the last-good cache saves).
  std::shared_ptr<Driver> locate(const util::Url& url,
                                 std::size_t* scanned = nullptr) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Driver>> drivers_;
};

}  // namespace gridrm::dbc
