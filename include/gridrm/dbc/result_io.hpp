// Text serialisation of result sets. This is the unit of transfer both
// for the GLUE-native SQL agent and for gateway-to-gateway responses in
// the Global layer (GMA producer -> consumer).
#pragma once

#include <memory>
#include <string>

#include "gridrm/dbc/result_set.hpp"

namespace gridrm::dbc {

/// Serialise; consumes the cursor of `rs` from its current position.
std::string serializeResultSet(ResultSet& rs);

/// Parse; throws SqlError(Generic) on malformed input.
std::unique_ptr<VectorResultSet> deserializeResultSet(const std::string& text);

}  // namespace gridrm::dbc
