// SqlError: the C++ analogue of java.sql.SQLException.
//
// Paper section 3.2.1: "the JDBC API interfaces were implemented to
// return nulls or throw SQLExceptions" so drivers can be built
// incrementally. NotImplemented is therefore a first-class error code:
// a partially-implemented driver surfaces it exactly like a fully
// implemented driver that failed to retrieve the data.
#pragma once

#include <stdexcept>
#include <string>

namespace gridrm::dbc {

enum class ErrorCode : int {
  Generic = 0,
  NotImplemented,   // method not yet provided by this driver
  Syntax,           // malformed SQL
  NoSuchTable,      // GLUE group unknown to the source
  NoSuchColumn,
  ConnectionFailed, // could not reach the data source
  ConnectionClosed,
  Timeout,
  SecurityDenied,   // CGSL/FGSL rejected the request
  Unsupported,      // URL not accepted / feature outside the subset
  Translation,      // native -> GLUE translation failure
  Unavailable,      // source degraded: circuit breaker open
  Overloaded,       // gateway shed the request: scheduler queue full
};

const char* errorCodeName(ErrorCode code) noexcept;

class SqlError : public std::runtime_error {
 public:
  SqlError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(errorCodeName(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

  static SqlError notImplemented(const std::string& method) {
    return {ErrorCode::NotImplemented, method + " is not implemented"};
  }

 private:
  ErrorCode code_;
};

inline const char* errorCodeName(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Generic:
      return "GENERIC";
    case ErrorCode::NotImplemented:
      return "NOT_IMPLEMENTED";
    case ErrorCode::Syntax:
      return "SYNTAX";
    case ErrorCode::NoSuchTable:
      return "NO_SUCH_TABLE";
    case ErrorCode::NoSuchColumn:
      return "NO_SUCH_COLUMN";
    case ErrorCode::ConnectionFailed:
      return "CONNECTION_FAILED";
    case ErrorCode::ConnectionClosed:
      return "CONNECTION_CLOSED";
    case ErrorCode::Timeout:
      return "TIMEOUT";
    case ErrorCode::SecurityDenied:
      return "SECURITY_DENIED";
    case ErrorCode::Unsupported:
      return "UNSUPPORTED";
    case ErrorCode::Translation:
      return "TRANSLATION";
    case ErrorCode::Unavailable:
      return "UNAVAILABLE";
    case ErrorCode::Overloaded:
      return "OVERLOADED";
  }
  return "?";
}

}  // namespace gridrm::dbc
