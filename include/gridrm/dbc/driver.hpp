// Driver / Connection / Statement: the C++ analogues of
// java.sql.Driver, java.sql.Connection and java.sql.Statement -- the
// minimal interface set the paper identifies for a working driver
// (section 3.2.1).
//
// BaseConnection / BaseStatement follow the paper's incremental
// development model: unimplemented methods throw SqlError.
#pragma once

#include <memory>
#include <string>

#include "gridrm/dbc/error.hpp"
#include "gridrm/dbc/result_set.hpp"
#include "gridrm/util/config.hpp"
#include "gridrm/util/url.hpp"

namespace gridrm::dbc {

class Statement {
 public:
  virtual ~Statement() = default;
  /// Execute a SELECT; throws SqlError on failure.
  virtual std::unique_ptr<ResultSet> executeQuery(const std::string& sql) = 0;
  /// Execute an INSERT (only meaningful for writable sources such as the
  /// gateway's historical database); returns affected row count.
  virtual std::size_t executeUpdate(const std::string& sql) = 0;
};

class BaseStatement : public Statement {
 public:
  std::unique_ptr<ResultSet> executeQuery(const std::string&) override {
    throw SqlError::notImplemented("Statement::executeQuery");
  }
  std::size_t executeUpdate(const std::string&) override {
    throw SqlError::notImplemented("Statement::executeUpdate");
  }
};

class Connection {
 public:
  virtual ~Connection() = default;
  virtual std::unique_ptr<Statement> createStatement() = 0;
  /// Cheap health probe; pooled connections are validated before reuse.
  virtual bool isValid() = 0;
  virtual void close() = 0;
  virtual bool isClosed() const = 0;
  /// The data-source URL this connection is bound to.
  virtual const util::Url& url() const = 0;
};

class BaseConnection : public Connection {
 public:
  std::unique_ptr<Statement> createStatement() override {
    throw SqlError::notImplemented("Connection::createStatement");
  }
  bool isValid() override {
    throw SqlError::notImplemented("Connection::isValid");
  }
  void close() override {
    throw SqlError::notImplemented("Connection::close");
  }
  bool isClosed() const override {
    throw SqlError::notImplemented("Connection::isClosed");
  }
  const util::Url& url() const override {
    throw SqlError::notImplemented("Connection::url");
  }
};

class Driver {
 public:
  virtual ~Driver() = default;
  /// Short unique name ("snmp", "ganglia", ...), also the subprotocol
  /// the driver answers to.
  virtual std::string name() const = 0;
  virtual int majorVersion() const { return 1; }
  virtual int minorVersion() const { return 0; }
  /// Table 2 in the paper: "the first that returns true to acceptsURL()
  /// is returned as the driver to use for this request". Must be cheap
  /// and must not contact the data source.
  virtual bool acceptsUrl(const util::Url& url) const = 0;
  /// Open a session with the data source; throws SqlError on failure.
  virtual std::unique_ptr<Connection> connect(const util::Url& url,
                                              const util::Config& props) = 0;
};

}  // namespace gridrm::dbc
