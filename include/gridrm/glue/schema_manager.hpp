// SchemaManager (paper section 3.1.4 / Fig. 3): "provides mapping and
// translation services for data source drivers". Each driver registers
// a DriverSchemaMap describing its GLUE implementation: for every GLUE
// group/attribute it can serve, the native locator (an SNMP OID, a
// Ganglia metric name, an SCMS key, ...) and a scale factor for unit
// conversion. Drivers fetch their map once per connection ("Schema is
// cached when the connection is created", Fig. 5).
//
// The class lives in the glue library (rather than core) so that driver
// libraries need not depend on the gateway; the gateway owns an
// instance and hands it to drivers through the DriverContext.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/glue/schema.hpp"

namespace gridrm::glue {

/// How one GLUE attribute is obtained from a native source.
struct AttributeMapping {
  std::string native;  // native locator; empty = attribute unavailable (NULL)
  double scale = 1.0;  // native value * scale = GLUE value (unit conversion)
};

/// GLUE-group -> native mapping for one driver.
class GroupMapping {
 public:
  GroupMapping() = default;
  explicit GroupMapping(std::string group) : group_(std::move(group)) {}

  const std::string& group() const noexcept { return group_; }
  void map(const std::string& attribute, std::string native,
           double scale = 1.0);
  /// nullopt when the driver never declared the attribute; a mapping with
  /// an empty `native` means "declared but unavailable" (returns NULL).
  std::optional<AttributeMapping> find(const std::string& attribute) const;
  const std::map<std::string, AttributeMapping>& attributes() const noexcept {
    return attrs_;
  }

 private:
  std::string group_;
  std::map<std::string, AttributeMapping> attrs_;  // keys lower-cased
};

class DriverSchemaMap {
 public:
  DriverSchemaMap() = default;
  explicit DriverSchemaMap(std::string driverName)
      : driver_(std::move(driverName)) {}

  const std::string& driver() const noexcept { return driver_; }
  GroupMapping& group(const std::string& groupName);  // creates on demand
  const GroupMapping* findGroup(const std::string& groupName) const;
  std::vector<std::string> groupNames() const;

 private:
  std::string driver_;
  std::map<std::string, GroupMapping> groups_;  // keys lower-cased
};

class SchemaManager {
 public:
  /// `schema` defaults to the built-in GLUE subset.
  explicit SchemaManager(const Schema* schema = nullptr)
      : schema_(schema != nullptr ? schema : &Schema::builtin()) {}

  const Schema& schema() const noexcept { return *schema_.load(); }

  /// Reload the GLUE schema (a gateway picking up an updated policy
  /// file). Bumps the generation so cached query plans bound against
  /// the previous schema are invalidated. Null restores the built-in
  /// subset. The caller keeps `schema` alive for the manager's
  /// lifetime, exactly as with the constructor argument.
  void setSchema(const Schema* schema);

  /// Monotonic schema generation: starts at 0 and increments on every
  /// setSchema(). Plan caches key bound plans by (sql, generation) so a
  /// reload evicts every stale binding at once.
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

  void registerDriverMap(DriverSchemaMap map);
  /// Shared so connections can cache it cheaply; nullptr when unknown.
  std::shared_ptr<const DriverSchemaMap> driverMap(
      const std::string& driverName) const;

 private:
  std::atomic<const Schema*> schema_;
  std::atomic<std::uint64_t> generation_{0};
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const DriverSchemaMap>> maps_;
};

}  // namespace gridrm::glue
