// The GLUE naming schema (paper section 3.1.4).
//
// GLUE "logically organises data into groups. The schema prescribes the
// data fields for each group. The essence of a group can be directly
// compared to the tables of a relational database." Clients SELECT from
// group names; drivers translate native data so that "meaning and value
// correspond to the format defined by GLUE", returning NULL for
// attributes a source cannot provide.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gridrm/util/value.hpp"

namespace gridrm::glue {

struct AttributeDef {
  std::string name;
  util::ValueType type = util::ValueType::String;
  std::string unit;         // "", "MB", "percent", "Mbps", "bytes", "seconds"
  std::string description;
};

class GroupDef {
 public:
  GroupDef(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const noexcept { return name_; }
  const std::vector<AttributeDef>& attributes() const noexcept {
    return attributes_;
  }
  const AttributeDef* find(const std::string& attrName) const;
  std::optional<std::size_t> indexOf(const std::string& attrName) const;
  std::size_t size() const noexcept { return attributes_.size(); }

 private:
  std::string name_;
  std::vector<AttributeDef> attributes_;
};

/// The schema registry. `builtin()` returns the GLUE subset GridRM
/// ships with; gateways may extend a copy with site-local groups.
class Schema {
 public:
  Schema() = default;

  void addGroup(GroupDef group);
  const GroupDef* findGroup(const std::string& name) const;  // case-insensitive
  std::vector<std::string> groupNames() const;
  std::size_t groupCount() const noexcept { return groups_.size(); }

  /// The built-in GLUE subset: Host, Processor, Memory, OperatingSystem,
  /// FileSystem, NetworkAdapter, Process, ComputeElement, StorageElement,
  /// NetworkForecast (NWS-style measurements have no classic GLUE home;
  /// the paper's schema work predates a finished network schema).
  static const Schema& builtin();

 private:
  std::vector<GroupDef> groups_;
};

/// Validation outcome for a translated row (see SchemaManager).
struct ValidationIssue {
  std::string attribute;
  std::string problem;
};

/// Check a (name, value) row against a group definition: unknown
/// attributes and type mismatches are issues; NULLs are always allowed
/// ("drivers can return null values" -- section 3.2.3).
std::vector<ValidationIssue> validateRow(
    const GroupDef& group,
    const std::vector<std::pair<std::string, util::Value>>& row);

}  // namespace gridrm::glue
