// Shard map of the replicated GMA directory service.
//
// Producer/consumer keys are placed on shards by consistent hashing
// (a fixed ring of virtual points per shard), and each shard is held
// by `replication` directory nodes: the primary plus read replicas,
// assigned round-robin over the node list. The map is tiny and
// versioned; directory replicas piggyback it onto lookup responses so
// a DirectoryClient learns routing from its first answer and then
// talks to the owning shard directly.
//
// Wire form (one line): MAP <version> <shards> <replication> <node>...
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/net/network.hpp"

namespace gridrm::global {

class ShardMap {
 public:
  /// Virtual ring points per shard. Fixed: every client and replica
  /// must derive the identical ring from (shardCount) alone.
  static constexpr std::size_t kVirtualPoints = 16;

  ShardMap() = default;

  /// The degenerate standalone map: one shard, one node, version 0.
  /// Version 0 marks "not a service": replicas never piggyback it.
  static ShardMap single(const net::Address& node);

  /// A service map: `shards` shards over `nodes`, each held by
  /// min(replication, nodes) nodes starting at (shard % nodes).
  static ShardMap build(std::vector<net::Address> nodes, std::size_t shards,
                        std::size_t replication, std::uint64_t version = 1);

  std::uint64_t version() const noexcept { return version_; }
  std::size_t shardCount() const noexcept { return shardCount_; }
  std::size_t replication() const noexcept { return replication_; }
  const std::vector<net::Address>& nodes() const noexcept { return nodes_; }
  bool empty() const noexcept { return nodes_.empty(); }
  /// True for a map built by build(): more than one node or version>0.
  bool service() const noexcept { return version_ > 0; }

  /// Owning shard of a key (consistent hash over the virtual ring).
  std::size_t shardOf(std::string_view key) const;
  /// Replica addresses holding `shard`, primary first.
  std::vector<net::Address> replicasOf(std::size_t shard) const;
  net::Address primaryOf(std::size_t shard) const;
  /// True when `node` holds `shard` (primary or read replica).
  bool holds(std::size_t shard, const net::Address& node) const;
  /// Shards held by `node`, ascending.
  std::vector<std::size_t> shardsHeldBy(const net::Address& node) const;

  std::string encode() const;
  static std::optional<ShardMap> decode(const std::string& line);

  bool operator==(const ShardMap& other) const noexcept {
    return version_ == other.version_ && shardCount_ == other.shardCount_ &&
           replication_ == other.replication_ && nodes_ == other.nodes_;
  }

 private:
  void rebuildRing();

  std::uint64_t version_ = 0;
  std::size_t shardCount_ = 1;
  std::size_t replication_ = 1;
  std::vector<net::Address> nodes_;
  /// Sorted (ringHash, shard) points; shardOf binary-searches it.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace gridrm::global
