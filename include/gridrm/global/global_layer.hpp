// The GridRM Global Layer (paper Fig. 1 and section 1.1): gateways
// collaborate through the GMA interaction model. Each gateway runs a
// producer endpoint (the "GridRM Gateway (Servlet)" in the figure);
// "Clients are free to connect to any Gateway; requests for remote
// resource data are routed through to the Global layer for processing
// by the gateway that owns the required data."
//
// Remote results pass through the local Cache Controller, implementing
// section 4's "This approach is used between gateways to increase
// scalability by reducing unnecessary requests."
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/core/gateway.hpp"
#include "gridrm/global/directory.hpp"

namespace gridrm::global {

inline constexpr std::uint16_t kProducerPort = 8710;

struct GlobalOptions {
  /// Shared secret authenticating gateway-to-gateway requests (the
  /// paper's coarse-grained inter-site trust).
  std::string federationSecret = "gridrm-federation";
  std::uint16_t producerPort = kProducerPort;
  /// TTL of directory lookup results cached per host.
  util::Duration lookupCacheTtl = 60 * util::kSecond;
  /// Event types forwarded to remote consumers ("" = none).
  std::string propagateEventPattern = "";
};

struct GlobalStats {
  std::uint64_t remoteQueriesSent = 0;
  std::uint64_t remoteQueriesServed = 0;
  std::uint64_t remoteCacheHits = 0;
  std::uint64_t lookupCacheHits = 0;
  std::uint64_t directoryLookups = 0;
  std::uint64_t eventsPropagated = 0;
  std::uint64_t authFailures = 0;
  // Continuous-query relay (streaming SQL between gateways).
  std::uint64_t streamSubscriptionsSent = 0;    // GSUB requests issued
  std::uint64_t streamSubscriptionsServed = 0;  // GSUB requests accepted
  std::uint64_t streamDeltasRelayed = 0;        // deltas sent to consumers
  std::uint64_t streamDeltasReceived = 0;       // relayed deltas ingested
};

class GlobalLayer final : public net::RequestHandler {
 public:
  GlobalLayer(core::Gateway& gateway, const net::Address& directoryAddress,
              GlobalOptions options = {});
  ~GlobalLayer() override;

  GlobalLayer(const GlobalLayer&) = delete;
  GlobalLayer& operator=(const GlobalLayer&) = delete;

  net::Address producerAddress() const {
    return {gateway_.options().host, options_.producerPort};
  }

  /// Register this gateway as a GMA producer for the given source-host
  /// patterns (defaults to the hosts of its registered data sources) and
  /// as an event consumer when propagation is enabled.
  void start(std::vector<std::string> extraOwnedHostPatterns = {});
  void stop();

  /// Query data sources anywhere on the Grid: local URLs run through
  /// the local Request Manager, remote ones are routed to the owning
  /// gateway via the directory. Results consolidate like a local
  /// multi-source query, with a leading Source column.
  core::QueryResult globalQuery(const std::string& token,
                                const std::vector<std::string>& urls,
                                const std::string& sql,
                                const core::QueryOptions& options = {});

  /// Forward an event to every remote consumer whose registered pattern
  /// matches (paper: "propagate events between Gateways").
  void propagateEvent(const core::Event& event);

  /// Subscribe a continuous query anywhere on the Grid, making this
  /// gateway a GMA consumer of streamed tuples. A URL owned locally goes
  /// straight to the local stream engine; a remote one is forwarded to
  /// the owning gateway (via the directory), which streams deltas back
  /// over the network into `consumer`. Returns a local subscription id
  /// usable with unsubscribeGlobal and streamEngine().poll.
  std::size_t subscribeGlobal(
      const std::string& token, const std::string& url, const std::string& sql,
      stream::ContinuousQueryEngine::DeltaConsumer consumer = nullptr,
      std::optional<stream::StreamOptions> streamOptions = std::nullopt);
  void unsubscribeGlobal(const std::string& token, std::size_t id);

  /// True when this gateway owns `host` (one of its own data sources).
  bool ownsHost(const std::string& host) const;

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;
  /// Relayed stream deltas arrive as datagrams on the producer port.
  void handleDatagram(const net::Address& from,
                      const net::Payload& body) override;

  GlobalStats stats() const;
  DirectoryClient& directory() noexcept { return directory_; }

 private:
  std::shared_ptr<const dbc::VectorResultSet> queryRemote(const std::string& url,
                                                    const std::string& sql,
                                                    bool useCache);
  std::optional<net::Address> resolveOwner(const std::string& host);
  net::Payload serveSubscribe(const std::vector<std::string>& words,
                              const std::vector<std::string>& lines);

  core::Gateway& gateway_;
  GlobalOptions options_;
  DirectoryClient directory_;
  bool started_ = false;

  mutable std::mutex mu_;
  GlobalStats stats_;
  struct CachedLookup {
    net::Address producer;
    util::TimePoint at;
  };
  std::map<std::string, CachedLookup> lookupCache_;
  std::size_t propagationListenerId_ = 0;
  /// Session used to serve relayed requests locally.
  std::string federationToken_;
  /// Local passive subscription id -> the remote end of the relay.
  struct RemoteSubscription {
    net::Address owner;
    std::size_t remoteId = 0;
  };
  std::map<std::size_t, RemoteSubscription> remoteSubscriptions_;
};

}  // namespace gridrm::global
