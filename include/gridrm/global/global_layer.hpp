// The GridRM Global Layer (paper Fig. 1 and section 1.1): gateways
// collaborate through the GMA interaction model. Each gateway runs a
// producer endpoint (the "GridRM Gateway (Servlet)" in the figure);
// "Clients are free to connect to any Gateway; requests for remote
// resource data are routed through to the Global layer for processing
// by the gateway that owns the required data."
//
// Remote results pass through the local Cache Controller, implementing
// section 4's "This approach is used between gateways to increase
// scalability by reducing unnecessary requests."
//
// Federation resilience (PR 5): the inter-gateway fabric tolerates link
// loss, partitions and gateway restarts.
//  * Reliable delta delivery - every relayed SDELTA frame carries a
//    per-relay monotonic sequence number plus the sender's liveness
//    epoch; the consumer dedups, detects gaps, buffers out-of-order
//    frames and NACKs missing ranges, which the owner re-sends from a
//    bounded resend buffer (falling back to a full-frame RESYNC when
//    the range was evicted).
//  * Liveness and epochs - each start() bumps the gateway's epoch;
//    directory registrations are leased and renewed from tick(), and a
//    GONE/epoch-mismatch answer from the owner triggers automatic
//    re-subscription with historical replay.
//  * Remote-query resilience - retries with jittered exponential
//    backoff bounded by the caller's deadline (retries run on the
//    scheduler's Hedge lane), negative + stale-while-revalidate
//    directory lookup caching, and degraded-mode serving of expired
//    cached remote rows flagged in QueryResult::staleSources.
//
// Federated query planning (PR 7): federatedQuery() decomposes one SQL
// statement over many sites. Eligible statements push WHERE predicates
// and projections to the owning gateways and rewrite GROUP BY /
// COUNT / SUM / MIN / MAX / AVG into per-site partial aggregates (AVG
// as a SUM+COUNT pair) merged at the coordinator; everything else
// falls back to ship-all-rows with the original statement executed at
// the coordinator. Per-site fragment results stream back as sequenced
// FFRAME datagrams with NACK'd gap repair and full-resync fallback —
// the PR 5 reliable-relay discipline applied to query results — and
// decomposed fragments are cached in the gateway's PlanCache (flushed
// with the schema generation).
//
// Wire protocol (requests on the producer port):
//   GQUERY <secret>\n<url>\n<sql>                   -> rows | ERR ...
//   GFRAG <secret> <consumer> <streamId> <frameRows>\n<sql>\n<url>...
//       -> OK <frames> <epoch> [\nFAIL <url>\t<code>\t<message>]... | ERR
//   FNACK <secret> <streamId> <from> <to>  -> OK <resent> | GONE <epoch>
//   GSUB <secret> <host:port> <consumerId> [<replayRows>]\n<url>\n<sql>
//                                       -> OK <relayId> <epoch> | ERR
//   GUNSUB <secret> <relayId>                       -> OK
//   SNACK <secret> <relayId> <from> <to>
//       -> OK <resent> <lastSeq> | RESYNC <lastSeq>\n<frame> | GONE <epoch>
//   SPING <secret> <relayId>        -> OK <epoch> <lastSeq> | GONE <epoch>
//   GEVENT <secret> <origin> <epoch> <seq>\n<encodedEvent>  -> OK
// Datagrams (unreliable, resent on NACK):
//   SDELTA <consumerId> <relayId> <seq> <epoch> <timestamp>\n
//       <sourceUrl>\n<table>\n<rows>
//   FFRAME <streamId> <seq> <of> <epoch>\n<result-set frame>
//   FACK <streamId>            (consumer done: owner drops the stream)
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gridrm/core/gateway.hpp"
#include "gridrm/global/directory.hpp"
#include "gridrm/store/federated_planner.hpp"

namespace gridrm::global {

inline constexpr std::uint16_t kProducerPort = 8710;

struct GlobalOptions {
  /// Shared secret authenticating gateway-to-gateway requests (the
  /// paper's coarse-grained inter-site trust).
  std::string federationSecret = "gridrm-federation";
  std::uint16_t producerPort = kProducerPort;
  /// TTL of directory lookup results cached per host.
  util::Duration lookupCacheTtl = 60 * util::kSecond;
  /// TTL of cached "no gateway owns this host" answers.
  util::Duration negativeLookupTtl = 5 * util::kSecond;
  /// Directory lease duration (0 = unleased); tick() renews at ttl/2.
  util::Duration leaseTtl = 120 * util::kSecond;
  /// Extra registration attempts at start() (a gateway booting before
  /// its directory still joins once the directory is up).
  std::size_t registerRetries = 3;
  util::Duration registerBackoff = 250 * util::kMillisecond;
  /// Extra remote-query attempts; backoff doubles with +/-50% jitter
  /// and is bounded by the caller's per-source deadline.
  std::size_t queryRetries = 2;
  util::Duration queryBackoff = 100 * util::kMillisecond;
  /// Sequenced delivery with NACK/resend for relayed deltas and
  /// request-based dedup'd event propagation. False = legacy
  /// fire-and-forget datagrams (the bench_federation ablation).
  bool reliableDelivery = true;
  /// Frames kept per served relay for NACK resends; older gaps resync.
  std::size_t resendBuffer = 128;
  /// Out-of-order frames buffered per relayed subscription.
  std::size_t reorderWindow = 128;
  /// Silence on a relayed subscription after which tick() probes the
  /// owner with SPING (0 = never probe).
  util::Duration livenessTimeout = 10 * util::kSecond;
  /// Historical rows replayed when a relayed subscription re-subscribes
  /// after an owner restart or partition.
  std::size_t resubscribeReplayRows = 32;
  /// Serve expired cached remote rows (marked in staleSources) when the
  /// owning gateway is unreachable.
  bool serveStale = true;
  std::size_t staleCacheEntries = 256;
  /// Event types forwarded to remote consumers ("" = none).
  std::string propagateEventPattern = "";
  /// Rows per FFRAME datagram when streaming fragment results.
  std::size_t fragmentFrameRows = 64;
  /// Served fragment streams kept for FNACK resends (bounded FIFO).
  std::size_t fragmentStreams = 64;
  /// NACK repair rounds per fragment fetch attempt before the
  /// coordinator falls back to a full resync (fresh stream).
  std::size_t fragmentNackRounds = 4;

  /// Build options from a parsed policy file. Recognised keys (all
  /// optional):
  ///   federation.secret, federation.producer_port,
  ///   federation.lookup_ttl_ms, federation.negative_lookup_ttl_ms,
  ///   federation.lease_ttl_ms,
  ///   federation.register_retries, federation.register_backoff_ms,
  ///   federation.query_retries, federation.query_backoff_ms,
  ///   federation.reliable, federation.resend_buffer,
  ///   federation.reorder_window, federation.liveness_timeout_ms,
  ///   federation.replay_rows, federation.serve_stale,
  ///   federation.stale_entries, federation.propagate_events,
  ///   federation.fragment_frame_rows, federation.fragment_streams,
  ///   federation.fragment_nack_rounds
  static GlobalOptions fromConfig(const util::Config& config);
};

struct GlobalStats {
  std::uint64_t remoteQueriesSent = 0;
  std::uint64_t remoteQueriesServed = 0;
  std::uint64_t remoteCacheHits = 0;
  std::uint64_t lookupCacheHits = 0;
  std::uint64_t directoryLookups = 0;
  std::uint64_t eventsPropagated = 0;
  std::uint64_t authFailures = 0;
  // Continuous-query relay (streaming SQL between gateways).
  std::uint64_t streamSubscriptionsSent = 0;    // GSUB requests issued
  std::uint64_t streamSubscriptionsServed = 0;  // GSUB requests accepted
  std::uint64_t streamDeltasRelayed = 0;        // deltas sent to consumers
  std::uint64_t streamDeltasReceived = 0;       // relayed deltas ingested
  // Federation resilience (PR 5).
  std::uint64_t deltasResent = 0;          // frames re-sent on NACK
  std::uint64_t deltaGapsDetected = 0;     // sequence gaps observed
  std::uint64_t snapshotResyncs = 0;       // RESYNC fallbacks applied
  std::uint64_t duplicateDeltasDropped = 0;  // dup/stale frames dropped
  std::uint64_t nacksSent = 0;
  std::uint64_t nacksServed = 0;
  std::uint64_t resubscribes = 0;       // relayed subscriptions healed
  std::uint64_t leaseRenewals = 0;      // successful periodic re-REGs
  std::uint64_t registerRetries = 0;    // extra registration attempts
  std::uint64_t remoteRetries = 0;      // extra remote-query attempts
  std::uint64_t negativeLookupHits = 0;
  std::uint64_t staleLookupsServed = 0;  // expired lookups served
  /// Lookups that found the directory unreachable with no stale
  /// fallback (PR 10): surfaced as ErrorCode::Unavailable, never as a
  /// "no gateway owns host" negative.
  std::uint64_t directoryUnavailable = 0;
  std::uint64_t staleRemoteServes = 0;   // degraded-mode row serves
  std::uint64_t livenessProbes = 0;      // SPINGs issued
  std::uint64_t remoteEventsIngested = 0;
  std::uint64_t duplicateEventsDropped = 0;
  std::uint64_t eventSendFailures = 0;  // propagation retries exhausted
  // Federated query planning (PR 7).
  std::uint64_t federatedQueries = 0;
  std::uint64_t federatedPushdownQueries = 0;  // decomposed fragment plans
  std::uint64_t federatedShipAllQueries = 0;   // fallback / forced baseline
  std::uint64_t fragmentsSent = 0;      // GFRAG requests issued
  std::uint64_t fragmentsServed = 0;    // GFRAG requests executed here
  std::uint64_t fragmentFramesSent = 0;
  std::uint64_t fragmentFramesReceived = 0;
  std::uint64_t fragmentFramesResent = 0;  // frames re-sent on FNACK
  std::uint64_t fragmentNacksSent = 0;
  std::uint64_t fragmentNacksServed = 0;
  std::uint64_t fragmentResyncs = 0;    // fresh-stream refetches
  std::uint64_t duplicateFragmentFramesDropped = 0;
  std::uint64_t fragmentRowsShipped = 0;  // rows leaving this gateway
  std::uint64_t federatedDeadlineCancels = 0;  // site fetches cancelled
};

/// How federatedQuery executes a statement: Auto decomposes when the
/// planner proves it safe; ShipAllRows forces the baseline transport
/// (the E18 ablation and the differential-test reference).
enum class FederatedMode { Auto, ShipAllRows };

/// ACIL introspection of one relayed (remote) subscription.
struct RemoteSubscriptionStatus {
  std::size_t localId = 0;
  net::Address owner;
  std::size_t remoteId = 0;  // 0 while a (re-)subscribe is in flight
  std::uint64_t ownerEpoch = 0;
  std::uint64_t nextExpectedSeq = 1;
  std::size_t reorderBuffered = 0;
  bool needsResubscribe = false;
  util::TimePoint lastHeardAt = 0;
};

class GlobalLayer final : public net::RequestHandler {
 public:
  GlobalLayer(core::Gateway& gateway, const net::Address& directoryAddress,
              GlobalOptions options = {});
  /// Against a replicated directory service (PR 10): any subset of the
  /// replicas works as seeds; the client bootstraps the shard map from
  /// the first one that answers and routes per shard from then on.
  GlobalLayer(core::Gateway& gateway, std::vector<net::Address> directorySeeds,
              GlobalOptions options = {});
  ~GlobalLayer() override;

  GlobalLayer(const GlobalLayer&) = delete;
  GlobalLayer& operator=(const GlobalLayer&) = delete;

  net::Address producerAddress() const {
    return {gateway_.options().host, options_.producerPort};
  }

  /// Register this gateway as a GMA producer for the given source-host
  /// patterns (defaults to the hosts of its registered data sources) and
  /// as an event consumer when propagation is enabled. Bumps the
  /// liveness epoch. A failed registration is not fatal: tick() keeps
  /// retrying until the directory answers.
  void start(std::vector<std::string> extraOwnedHostPatterns = {});
  void stop();
  /// Abrupt failure for fault injection: drop the producer binding and
  /// all relay/subscription state without notifying peers or the
  /// directory (leases expire, consumers heal via SPING/GONE). The
  /// epoch is preserved so the next start() advances it.
  void crash();

  /// Liveness epoch: 0 before the first start(), bumped by every start.
  std::uint64_t epoch() const noexcept { return epoch_.load(); }

  /// Periodic maintenance (call on the poller cadence): renews the
  /// directory lease (or registers late, after a failed start), NACKs
  /// sequence gaps, probes silent owners and re-subscribes relayed
  /// subscriptions whose owner restarted.
  void tick();

  /// Query data sources anywhere on the Grid: local URLs run through
  /// the local Request Manager, remote ones are routed to the owning
  /// gateway via the directory. Results consolidate like a local
  /// multi-source query, with a leading Source column.
  core::QueryResult globalQuery(const std::string& token,
                                const std::vector<std::string>& urls,
                                const std::string& sql,
                                const core::QueryOptions& options = {});

  /// Planned federated query (PR 7): decompose `sql` over the owning
  /// gateways — one fragment per site, executed over the union of that
  /// site's URLs — and merge the partial results here. Site fetches
  /// run as per-site tasks on `options.lane` with a CancelToken each;
  /// when `options.deadline` expires, queued fetches are pruned and
  /// the merge covers the sites that answered (the rest land in
  /// failures with ErrorCode::Timeout). Unreachable sites served from
  /// the stale cache are marked in staleSources. Unlike globalQuery,
  /// the result is the statement's own relation (no Source column).
  core::QueryResult federatedQuery(const std::string& token,
                                   const std::vector<std::string>& urls,
                                   const std::string& sql,
                                   const core::QueryOptions& options = {},
                                   FederatedMode mode = FederatedMode::Auto);

  /// Forward an event to every remote consumer whose registered pattern
  /// matches (paper: "propagate events between Gateways").
  void propagateEvent(const core::Event& event);

  /// Subscribe a continuous query anywhere on the Grid, making this
  /// gateway a GMA consumer of streamed tuples. A URL owned locally goes
  /// straight to the local stream engine; a remote one is forwarded to
  /// the owning gateway (via the directory), which streams deltas back
  /// over the network into `consumer`. Returns a local subscription id
  /// usable with unsubscribeGlobal and streamEngine().poll.
  std::size_t subscribeGlobal(
      const std::string& token, const std::string& url, const std::string& sql,
      stream::ContinuousQueryEngine::DeltaConsumer consumer = nullptr,
      std::optional<stream::StreamOptions> streamOptions = std::nullopt);
  void unsubscribeGlobal(const std::string& token, std::size_t id);

  /// True when this gateway owns `host` (one of its own data sources).
  bool ownsHost(const std::string& host) const;

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;
  /// Relayed stream deltas arrive as datagrams on the producer port.
  void handleDatagram(const net::Address& from,
                      const net::Payload& body) override;

  GlobalStats stats() const;
  /// ACIL introspection: per-relayed-subscription delivery state.
  std::vector<RemoteSubscriptionStatus> remoteSubscriptionStatus(
      const std::string& token);
  /// ACIL introspection: per-directory-replica DSTATS (nullopt marks a
  /// replica that did not answer), so an operator sees which replicas
  /// are alive and how far anti-entropy has progressed.
  std::vector<std::pair<net::Address, std::optional<DirectoryStats>>>
  directoryHealth(const std::string& token);
  DirectoryClient& directory() noexcept { return directory_; }

 private:
  /// Sender-side state of one relayed subscription this gateway serves.
  /// Captured by the relay callback via shared_ptr so replay frames can
  /// flow before the engine id is known.
  struct ServedRelay {
    std::size_t relayId = 0;
    std::size_t engineId = 0;
    net::Address consumer;
    std::size_t consumerId = 0;
    std::mutex mu;  // guards the sequencing/resend state below
    std::uint64_t lastSeq = 0;
    std::uint64_t minAvailable = 1;  // oldest seq still in `resend`
    std::deque<std::pair<std::uint64_t, net::Payload>> resend;
    net::Payload lastFrame;  // newest frame (RESYNC fallback)
  };

  /// Consumer-side state of one subscription relayed from a remote
  /// owner. Guarded by mu_.
  struct RemoteSubscription {
    net::Address owner;
    std::size_t remoteId = 0;  // relayId at the owner; 0 = in flight
    std::uint64_t ownerEpoch = 0;
    std::string url;
    std::string sql;
    std::size_t replayRows = 0;  // replay asked for on re-subscribe
    std::uint64_t nextExpected = 1;
    std::map<std::uint64_t, stream::StreamDelta> reorder;
    /// Frames that arrived while the (re-)subscribe was in flight.
    std::deque<net::Payload> pendingFrames;
    /// In-order deltas awaiting injection; `applying` serialises the
    /// drain so cross-thread arrivals cannot reorder injectDelta calls.
    std::deque<stream::StreamDelta> applyQueue;
    bool applying = false;
    bool needsResubscribe = false;
    bool resubscribing = false;
    util::TimePoint lastHeardAt = 0;
  };

  struct CachedLookup {
    std::optional<net::Address> producer;  // nullopt = negative entry
    util::TimePoint at;
  };

  /// Owner-side record of one served fragment stream: the frames stay
  /// around (bounded FIFO across streams) so FNACK can repair loss
  /// until the consumer FACKs or the stream is evicted.
  struct FragmentStream {
    std::vector<net::Payload> frames;  // frames[i] carries seq i+1
    net::Address consumer;
  };

  /// Coordinator-side reassembly of one fragment stream.
  struct FragmentCollector {
    std::map<std::uint64_t, net::Payload> frames;  // seq -> frame body
    std::uint64_t expected = 0;  // frame count announced by the owner
  };

  /// Outcome of one site's fragment fetch.
  struct SiteFetch {
    bool ok = false;
    bool servedStale = false;
    store::SitePartial partial;
    std::vector<core::SourceError> failures;
    std::string error;  // set when !ok
    dbc::ErrorCode errorCode = dbc::ErrorCode::ConnectionFailed;
  };

  /// Tri-state owner resolution (S1, PR 10): `address` empty with
  /// `unavailable` false is a PROVEN negative (every directory shard
  /// answered "no such producer"); `unavailable` true means the
  /// directory could not be reached and no stale cache entry could
  /// stand in — the caller must surface ErrorCode::Unavailable, never
  /// "no gateway owns host".
  struct OwnerResolution {
    std::optional<net::Address> address;
    bool unavailable = false;
  };

  std::shared_ptr<const dbc::VectorResultSet> queryRemote(
      const std::string& url, const std::string& sql,
      const core::QueryOptions& options, bool& servedStale);
  /// Run one remote request on the scheduler's Hedge lane (inline when
  /// the lane refuses). Throws net::NetError like Network::request.
  net::Payload requestViaHedgeLane(const net::Address& owner,
                                   const net::Payload& body);
  OwnerResolution resolveOwner(const std::string& host);
  net::Payload serveSubscribe(const std::vector<std::string>& words,
                              const std::vector<std::string>& lines);
  net::Payload serveNack(const std::vector<std::string>& words);
  net::Payload servePing(const std::vector<std::string>& words);
  net::Payload serveEvent(const net::Address& from,
                          const std::vector<std::string>& words,
                          const net::Payload& body);
  /// Parse and route one SDELTA frame (reliable path: dedup, gap
  /// detection, ordered apply).
  void processDeltaFrame(const net::Payload& body);
  /// Drain a subscription's applyQueue into the stream engine outside
  /// the lock. Caller holds `lock` on mu_.
  void pumpApply(std::size_t localId,
                 const std::shared_ptr<RemoteSubscription>& sub,
                 std::unique_lock<std::mutex>& lock);
  void sendNack(std::size_t localId,
                const std::shared_ptr<RemoteSubscription>& sub,
                std::uint64_t from, std::uint64_t to);
  void sendPing(std::size_t localId,
                const std::shared_ptr<RemoteSubscription>& sub);
  void resubscribe(std::size_t localId,
                   const std::shared_ptr<RemoteSubscription>& sub);
  /// (Re-)register producer + event consumer with the directory.
  void renewRegistration(std::size_t retries);
  void rememberStale(const std::string& cacheKey,
                     std::shared_ptr<const dbc::VectorResultSet> rows);

  // Federated query planning (PR 7).
  /// Batch owner resolution: one LOOKUPN round trip per directory
  /// shard for every host the lookup cache cannot answer. Result is
  /// positional over `hosts`, with the same tri-state semantics as
  /// resolveOwner.
  std::vector<OwnerResolution> resolveOwners(
      const std::vector<std::string>& hosts);
  /// Execute one fragment locally over the union of `urls` rows.
  SiteFetch executeFragment(const core::Principal& principal,
                            const std::vector<std::string>& urls,
                            const std::string& fragmentSql);
  /// Fetch one remote site's fragment result via GFRAG + FFRAME
  /// streaming with NACK repair, retries and stale fallback.
  SiteFetch fetchRemoteFragment(const net::Address& owner,
                                const std::vector<std::string>& urls,
                                const std::string& fragmentSql,
                                const core::QueryOptions& options,
                                util::TimePoint deadlineAt,
                                const core::CancelToken& cancel);
  net::Payload serveFragment(const std::vector<std::string>& words,
                             const std::vector<std::string>& lines);
  net::Payload serveFragmentNack(const std::vector<std::string>& words);
  void processFragmentFrame(const net::Payload& body);

  core::Gateway& gateway_;
  GlobalOptions options_;
  DirectoryClient directory_;
  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> epoch_{0};

  mutable std::mutex mu_;
  GlobalStats stats_;
  util::Rng rng_;  // retry-backoff jitter (seeded from the gateway name)
  std::map<std::string, CachedLookup> lookupCache_;
  std::size_t propagationListenerId_ = 0;
  /// Session used to serve relayed requests locally.
  std::string federationToken_;
  /// Host patterns registered with the directory (kept for renewals).
  std::vector<std::string> ownedPatterns_;
  bool registered_ = false;
  util::TimePoint lastRegisteredAt_ = 0;
  /// Local passive subscription id -> the remote end of the relay.
  std::map<std::size_t, std::shared_ptr<RemoteSubscription>>
      remoteSubscriptions_;
  /// Relay id -> sender-side relay state for subscriptions served here.
  std::map<std::size_t, std::shared_ptr<ServedRelay>> servedRelays_;
  std::size_t nextRelayId_ = 1;
  /// Outbound event sequence per consumer address (reliable events).
  std::map<std::string, std::uint64_t> eventSeq_;
  /// Inbound event dedup per origin gateway.
  struct OriginDedup {
    std::uint64_t epoch = 0;
    std::uint64_t floor = 0;  // seqs <= floor are known-applied
    std::set<std::uint64_t> seen;
  };
  std::map<std::string, OriginDedup> eventDedup_;
  /// Last-known-good remote rows for degraded-mode serving, keyed like
  /// the gateway cache; bounded FIFO.
  std::map<std::string, std::shared_ptr<const dbc::VectorResultSet>>
      staleCache_;
  std::deque<std::string> staleOrder_;

  /// Fragment streaming state. A dedicated mutex: frames arrive as
  /// datagrams delivered inline on the sender's thread, so this state
  /// must never be touched while holding mu_ across a network call.
  mutable std::mutex fragMu_;
  std::map<std::string, FragmentStream> fragStreams_;  // owner side
  std::deque<std::string> fragStreamOrder_;            // FIFO eviction
  std::map<std::string, FragmentCollector> fragCollectors_;
  std::atomic<std::uint64_t> nextStreamId_{1};
};

}  // namespace gridrm::global
