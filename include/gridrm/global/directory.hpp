// GMA Directory Service (paper Fig. 1: gateways "Register" with a GMA
// directory; consumers look producers up and then talk to them
// directly, which is the defining GMA interaction pattern).
//
// Registrations are *leased* (PR 5): a producer/consumer entry carries
// the registering gateway's liveness epoch and an optional TTL, and the
// directory evicts entries whose lease expired without a renewal — a
// crashed gateway stops being routable once its lease runs out instead
// of lingering forever. A re-registration bearing an older epoch than
// the stored entry is refused (STALE): it raced a restart.
//
// Line protocol (request/response over the simulated network):
//   REG PRODUCER <name> <host:port> [<epoch> <ttlMs>]\n<pattern>\n...
//       -> OK | STALE
//   UNREG PRODUCER <name>                                      -> OK
//   LOOKUP <host>          -> PRODUCER <name> <host:port> <epoch> | NONE
//   LOOKUPN <h1> <h2> ...  -> one PRODUCER/NONE line per host, in order
//   LIST                   -> PRODUCER lines
//   REG CONSUMER <name> <host:port> <eventPattern> [<ttlMs>]   -> OK
//   UNREG CONSUMER <name>                                      -> OK
//   CONSUMERS <eventType>  -> CONSUMER <name> <host:port> lines
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/net/network.hpp"

namespace gridrm::global {

inline constexpr std::uint16_t kDirectoryPort = 8700;

struct ProducerEntry {
  std::string name;
  net::Address address;
  std::vector<std::string> ownedHostPatterns;  // globs over source hosts
  /// Liveness epoch of the registering gateway (bumped on restart).
  std::uint64_t epoch = 0;
  /// Lease expiry in directory clock time; 0 = unleased (never expires).
  util::TimePoint expiresAt = 0;
};

struct ConsumerEntry {
  std::string name;
  net::Address address;
  std::string eventPattern;  // dot-prefix pattern (core::eventTypeMatches)
  util::TimePoint expiresAt = 0;  // 0 = unleased
};

struct DirectoryStats {
  std::uint64_t registrations = 0;   // REG accepted (producer + consumer)
  std::uint64_t staleRegistrations = 0;  // REG refused: older epoch
  std::uint64_t leaseEvictions = 0;  // entries dropped on lease expiry
};

class GmaDirectory final : public net::RequestHandler {
 public:
  GmaDirectory(net::Network& network, const net::Address& address);
  ~GmaDirectory() override;

  GmaDirectory(const GmaDirectory&) = delete;
  GmaDirectory& operator=(const GmaDirectory&) = delete;

  const net::Address& address() const noexcept { return address_; }

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

  // Direct (in-process) accessors for tests.
  std::vector<ProducerEntry> producers() const;
  std::vector<ConsumerEntry> consumers() const;
  DirectoryStats stats() const;

 private:
  /// Drop every entry whose lease expired. Caller holds mu_.
  void pruneExpiredLocked(util::TimePoint now);

  net::Network& network_;
  net::Address address_;
  mutable std::mutex mu_;
  std::map<std::string, ProducerEntry> producers_;
  std::map<std::string, ConsumerEntry> consumers_;
  DirectoryStats stats_;
};

/// Client-side helper wrapping the wire protocol. Registration calls
/// optionally retry with exponential backoff (a gateway booting before
/// its directory still joins the federation once the directory is up).
class DirectoryClient {
 public:
  DirectoryClient(net::Network& network, net::Address self,
                  net::Address directory)
      : network_(network), self_(std::move(self)),
        directory_(std::move(directory)) {}

  /// Registers (or renews the lease of) a producer entry. `epoch` is
  /// the gateway's liveness epoch, `leaseTtl` the lease duration (0 =
  /// unleased). Failed sends retry up to `retries` extra times with
  /// doubling backoff starting at `backoff`; throws the last NetError
  /// when every attempt fails. Returns the number of attempts used.
  std::size_t registerProducer(
      const std::string& name, const net::Address& address,
      const std::vector<std::string>& ownedHostPatterns,
      std::uint64_t epoch = 0, util::Duration leaseTtl = 0,
      std::size_t retries = 0,
      util::Duration backoff = 250 * util::kMillisecond);
  void unregisterProducer(const std::string& name);
  /// nullopt when no producer owns `host`.
  std::optional<ProducerEntry> lookup(const std::string& host);
  /// Batch lookup (LOOKUPN): one round trip for N hosts; the result is
  /// positional — out[i] answers hosts[i], nullopt when unowned.
  std::vector<std::optional<ProducerEntry>> lookupMany(
      const std::vector<std::string>& hosts);
  std::vector<ProducerEntry> list();
  std::size_t registerConsumer(
      const std::string& name, const net::Address& address,
      const std::string& eventPattern, util::Duration leaseTtl = 0,
      std::size_t retries = 0,
      util::Duration backoff = 250 * util::kMillisecond);
  void unregisterConsumer(const std::string& name);
  std::vector<ConsumerEntry> consumersFor(const std::string& eventType);

 private:
  net::Payload request(const net::Payload& body);
  /// request() with `retries` extra attempts and doubling backoff.
  net::Payload requestWithRetry(const net::Payload& body, std::size_t retries,
                                util::Duration backoff, std::size_t& attempts);

  net::Network& network_;
  net::Address self_;
  net::Address directory_;
};

}  // namespace gridrm::global
