// GMA Directory Service (paper Fig. 1: gateways "Register" with a GMA
// directory; consumers look producers up and then talk to them
// directly, which is the defining GMA interaction pattern).
//
// Registrations are *leased* (PR 5): a producer/consumer entry carries
// the registering gateway's liveness epoch and an optional TTL, and the
// directory evicts entries whose lease expired without a renewal — a
// crashed gateway stops being routable once its lease runs out instead
// of lingering forever. A re-registration bearing an older epoch than
// the stored entry is refused (STALE): it raced a restart. Renewals
// carry the previously granted expiry, and the TTL sweep grants every
// leased entry a grace window of ttl/graceDivisor past its expiry, so
// a renewal in flight while the sweep runs extends the lease in place
// instead of observing a drop-then-re-add (PR 10).
//
// Replicated service mode (PR 10): N GmaDirectory replicas share a
// versioned ShardMap. Producer keys ("p:<name>") and consumer keys
// ("c:<name>") are consistent-hashed onto shards; each shard is held
// by a primary plus read replicas. Writes route to the owning shard
// (any holder accepts them — entries are versioned, so replicas merge
// concurrent writes deterministically), lookups fan out one request
// per shard, and replicas anti-entropy-sync each held shard with its
// peers: digest exchange, then summary + delta repair. Merge winner is
// the entry with the greater (epoch, version, expiresAt, live,
// payload-hash) tuple — the "epoch + lease" tiebreak — and deletions
// are tombstones (swept leases tombstone at their deterministic
// expiry, so independently sweeping replicas converge byte-identically
// without talking). Every service-mode response carries the shard map
// so clients learn routing from their first answer.
//
// Line protocol (request/response over the simulated network; [@<s>]
// is an optional shard selector, ignored by standalone directories;
// service-mode responses append a final "MAP ..." line):
//   REG PRODUCER <name> <host:port> [<epoch> <ttlMs> [<prevExpiryUs>]]
//       \n<pattern>\n...          -> OK <expiryUs> | STALE | NOTMINE
//   UNREG PRODUCER <name>                            -> OK | NOTMINE
//   LOOKUP <host> [@<s>]   -> PRODUCER <name> <host:port> <epoch> | NONE
//   LOOKUPN [@<s>] <h1> <h2> ...  -> one PRODUCER/NONE line per host
//   LIST [@<s>]                   -> PRODUCER lines
//   REG CONSUMER <name> <host:port> <eventPattern> [<ttlMs>
//       [<prevExpiryUs>]]         -> OK <expiryUs> | NOTMINE
//   UNREG CONSUMER <name>                            -> OK | NOTMINE
//   CONSUMERS <eventType> [@<s>]  -> CONSUMER <name> <host:port> lines
//   SHARDMAP                      -> MAP <ver> <shards> <repl> <node>...
//   DSTATS                        -> STAT <key> <value> lines
// Anti-entropy (replica to replica, no MAP suffix):
//   AEDIG <shard> <digest>        -> MATCH | DIFF <digest>
//   AESYNC <shard>\nS <P|C> <name> <epoch> <ver> <exp> <del> <hash>...
//       -> E <entry> lines (peer newer) + WANT <P|C> <name> lines
//   AEPUSH <shard>\nE <entry>...  -> OK <applied>
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/global/shard_map.hpp"
#include "gridrm/net/network.hpp"

namespace gridrm::global {

inline constexpr std::uint16_t kDirectoryPort = 8700;

struct ProducerEntry {
  std::string name;
  net::Address address;
  std::vector<std::string> ownedHostPatterns;  // globs over source hosts
  /// Liveness epoch of the registering gateway (bumped on restart).
  std::uint64_t epoch = 0;
  /// Lease expiry in directory clock time; 0 = unleased (never expires).
  util::TimePoint expiresAt = 0;
  /// Lease duration as granted (sizes the sweep's renewal grace).
  util::Duration leaseTtl = 0;
  /// Write version, bumped on every accepted mutation. With `epoch`,
  /// `expiresAt` and the payload hash it totally orders replica merges.
  std::uint64_t version = 0;
  /// Tombstone: unregistered or lease-swept, kept (and replicated) so
  /// anti-entropy cannot resurrect the entry, GC'd after tombstoneTtl.
  bool deleted = false;
  util::TimePoint deletedAt = 0;
};

struct ConsumerEntry {
  std::string name;
  net::Address address;
  std::string eventPattern;  // dot-prefix pattern (core::eventTypeMatches)
  util::TimePoint expiresAt = 0;  // 0 = unleased
  util::Duration leaseTtl = 0;
  std::uint64_t version = 0;
  bool deleted = false;
  util::TimePoint deletedAt = 0;
};

struct DirectoryStats {
  std::uint64_t registrations = 0;   // REG accepted (producer + consumer)
  std::uint64_t staleRegistrations = 0;  // REG refused: older epoch
  std::uint64_t leaseEvictions = 0;  // entries dropped on lease expiry
  // PR 10: replicated service mode.
  std::uint64_t renewals = 0;         // REGs extending a live lease
  std::uint64_t lookups = 0;          // LOOKUP + LOOKUPN hosts answered
  std::uint64_t notMineRedirects = 0; // requests for shards not held here
  std::uint64_t syncRounds = 0;           // per-peer digest exchanges
  std::uint64_t syncDigestMismatches = 0; // exchanges that found a diff
  std::uint64_t syncEntriesApplied = 0;   // entries repaired from peers
  std::uint64_t syncEntriesPushed = 0;    // entries pushed to peers
  std::uint64_t syncPeersUnreachable = 0; // sync attempts that failed
  std::uint64_t tombstonesCollected = 0;  // tombstones GC'd
};

/// Configuration of one directory replica. The default is the
/// standalone single-node directory (shard map = just this node).
struct DirectoryOptions {
  /// Shard map of the service this replica belongs to. A default map
  /// (empty) means standalone: one shard, this node, no sync partner.
  ShardMap map;
  /// Renewal grace: an expired leased entry keeps being served for
  /// leaseTtl/graceDivisor past expiresAt before the sweep tombstones
  /// it, so an in-flight renewal never observes a drop-then-re-add.
  /// 0 disables the grace window (pre-PR-10 sweep behavior).
  std::uint32_t leaseGraceDivisor = 4;
  /// Tombstones older than this are garbage-collected.
  util::Duration tombstoneTtl = 600 * util::kSecond;
  /// Per-request timeout of anti-entropy RPCs.
  util::Duration syncTimeout = 250 * util::kMillisecond;
};

class GmaDirectory final : public net::RequestHandler {
 public:
  /// Standalone single-node directory (the pre-PR-10 constructor).
  GmaDirectory(net::Network& network, const net::Address& address);
  /// One replica of a sharded directory service. `address` must be one
  /// of options.map.nodes(); this replica serves the shards the map
  /// assigns it and anti-entropy-syncs them with the co-holders.
  GmaDirectory(net::Network& network, const net::Address& address,
               DirectoryOptions options);
  ~GmaDirectory() override;

  GmaDirectory(const GmaDirectory&) = delete;
  GmaDirectory& operator=(const GmaDirectory&) = delete;

  const net::Address& address() const noexcept { return address_; }
  const ShardMap& shardMap() const noexcept { return map_; }
  /// Shards this replica holds (primary or read replica), ascending.
  const std::vector<std::size_t>& heldShards() const noexcept {
    return heldShards_;
  }

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

  /// One anti-entropy round: for every held shard, exchange digests
  /// with each co-holding peer and repair differences (pull the peer's
  /// newer entries, push ours). Returns entries applied locally.
  /// Schedule it periodically; unreachable peers are skipped (counted
  /// in syncPeersUnreachable) and retried next round.
  std::size_t syncTick();

  /// Lease sweep + tombstone GC, callable from a loop independently of
  /// request traffic (every request also sweeps inline).
  void sweepTick();

  // Direct (in-process) accessors for tests.
  std::vector<ProducerEntry> producers() const;
  std::vector<ConsumerEntry> consumers() const;
  DirectoryStats stats() const;
  /// Canonical serialization of one shard's full state (live entries
  /// AND tombstones, name order, every replicated field). Two replicas
  /// are converged exactly when their exports are byte-identical; its
  /// hash is the anti-entropy digest.
  std::string exportShard(std::size_t shard) const;
  /// Drop all state (restart with an empty, stale store — fault
  /// injection; anti-entropy repopulates a service replica).
  void wipe();

 private:
  /// Tombstone every leased entry whose expiry + grace passed and GC
  /// old tombstones. Caller holds mu_.
  void pruneExpiredLocked(util::TimePoint now);
  std::string exportShardLocked(std::size_t shard) const;
  net::Payload withMap(net::Payload response) const;
  bool holdsShard(std::size_t shard) const;
  net::Payload handleSync(const std::vector<std::string>& words,
                          const std::vector<std::string>& lines);
  std::size_t syncShardWithPeer(std::size_t shard, const net::Address& peer);
  /// Merge a replicated entry line into the local store. Returns true
  /// when the incoming entry won (was applied). Caller holds mu_.
  bool applyEntryLineLocked(std::size_t shard, const std::string& line);

  net::Network& network_;
  net::Address address_;
  DirectoryOptions options_;
  ShardMap map_;
  std::vector<std::size_t> heldShards_;
  mutable std::mutex mu_;
  /// Per held shard: name -> entry (live or tombstone).
  std::map<std::size_t, std::map<std::string, ProducerEntry>> producers_;
  std::map<std::size_t, std::map<std::string, ConsumerEntry>> consumers_;
  DirectoryStats stats_;
};

/// Answer of one batched lookup position: Found carries the entry;
/// Unavailable means the owning shard had no reachable replica, so the
/// negative MUST NOT be read as "no such producer".
enum class LookupStatus : std::uint8_t { Found, NotFound, Unavailable };

struct LookupAnswer {
  LookupStatus status = LookupStatus::NotFound;
  std::optional<ProducerEntry> entry;
};

/// Client-side counters of the replica-set routing machinery.
struct DirectoryClientStats {
  std::uint64_t failovers = 0;     // attempts beyond a shard's first replica
  std::uint64_t mapRefreshes = 0;  // newer shard maps adopted
  std::uint64_t redirects = 0;     // NOTMINE answers re-routed
  std::uint64_t unavailableShards = 0;  // ops that found a shard all-down
};

/// Client-side helper wrapping the wire protocol. Registration calls
/// optionally retry with exponential backoff (a gateway booting before
/// its directory still joins the federation once the directory is up).
///
/// Replica-set awareness (PR 10): constructed from one or more seed
/// replicas, the client bootstraps the shard map from its first
/// response (every service-mode answer carries it), routes each key to
/// the owning shard's primary and fails over to the read replicas on
/// RPC errors. An RPC failure is never folded into a negative answer:
/// when every replica of a needed shard is unreachable, lookup/list
/// throw net::NetError and lookupMany marks the position Unavailable.
class DirectoryClient {
 public:
  /// Pluggable request transport: (to, body, retry) -> response.
  /// `retry` marks failover attempts beyond a shard's first, letting
  /// the owner route them through a deprioritized lane (the
  /// GlobalLayer installs its Hedge-lane transport here).
  using Transport = std::function<net::Payload(
      const net::Address& to, const net::Payload& body, bool retry)>;

  DirectoryClient(net::Network& network, net::Address self,
                  net::Address directory)
      : DirectoryClient(network, std::move(self),
                        std::vector<net::Address>{std::move(directory)}) {}
  DirectoryClient(net::Network& network, net::Address self,
                  std::vector<net::Address> seeds);

  /// Install a custom transport. Not thread-safe: call before use.
  void setTransport(Transport transport) { transport_ = std::move(transport); }

  /// Registers (or renews the lease of) a producer entry. `epoch` is
  /// the gateway's liveness epoch, `leaseTtl` the lease duration (0 =
  /// unleased). Renewals automatically carry the previously granted
  /// expiry. Failed sends retry up to `retries` extra times with
  /// doubling backoff starting at `backoff`; throws the last NetError
  /// when every attempt fails. Returns the number of attempts used.
  std::size_t registerProducer(
      const std::string& name, const net::Address& address,
      const std::vector<std::string>& ownedHostPatterns,
      std::uint64_t epoch = 0, util::Duration leaseTtl = 0,
      std::size_t retries = 0,
      util::Duration backoff = 250 * util::kMillisecond);
  void unregisterProducer(const std::string& name);
  /// nullopt when no producer owns `host` — a proven negative: every
  /// shard answered. Throws net::NetError when a shard could not be
  /// reached (the answer is unknowable, NOT a negative).
  std::optional<ProducerEntry> lookup(const std::string& host);
  /// Batch lookup (LOOKUPN): one round trip per shard for N hosts; the
  /// result is positional — out[i] answers hosts[i], with Unavailable
  /// (not NotFound) for hosts whose owning answer needed an
  /// unreachable shard.
  std::vector<LookupAnswer> lookupMany(const std::vector<std::string>& hosts);
  std::vector<ProducerEntry> list();
  std::size_t registerConsumer(
      const std::string& name, const net::Address& address,
      const std::string& eventPattern, util::Duration leaseTtl = 0,
      std::size_t retries = 0,
      util::Duration backoff = 250 * util::kMillisecond);
  void unregisterConsumer(const std::string& name);
  /// Best-effort across shards: unreachable shards are skipped unless
  /// every shard is unreachable (then the last NetError propagates).
  std::vector<ConsumerEntry> consumersFor(const std::string& eventType);

  /// Per-replica DSTATS probe (nullopt for unreachable replicas).
  std::vector<std::pair<net::Address, std::optional<DirectoryStats>>>
  replicaStats();

  /// The currently cached shard map (bootstrapped lazily).
  ShardMap shardMap() const;
  DirectoryClientStats clientStats() const;

 private:
  net::Payload send(const net::Address& to, const net::Payload& body,
                    bool retry);
  /// Strip a trailing MAP line from `response` and adopt it when newer.
  net::Payload ingestMap(net::Payload response);
  /// Route one request to a replica of `shard`: primary first, then
  /// read replicas (marked as retries for the transport), chasing
  /// NOTMINE redirects. Throws the last NetError when every replica
  /// failed.
  net::Payload requestShard(std::size_t shard, const net::Payload& body);
  /// Current map, bootstrapping from the seeds on first use.
  ShardMap currentMap();
  /// Route a write for `key` to its owning shard, with `retries` extra
  /// whole-sweep attempts and doubling backoff (each sweep already
  /// fails over across the shard's replicas).
  net::Payload shardedWrite(const std::string& key, const net::Payload& body,
                            std::size_t retries, util::Duration backoff,
                            std::size_t& attempts);
  static std::optional<ProducerEntry> parseProducerLine(
      const std::string& line);

  net::Network& network_;
  net::Address self_;
  std::vector<net::Address> seeds_;
  Transport transport_;  // empty = plain network_.request
  mutable std::mutex mu_;  // guards map_, grantedExpiry_, cstats_
  ShardMap map_;
  /// Last granted lease expiry per entry name: renewals carry it.
  std::map<std::string, util::TimePoint> grantedExpiry_;
  DirectoryClientStats cstats_;
};

}  // namespace gridrm::global
