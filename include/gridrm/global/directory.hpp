// GMA Directory Service (paper Fig. 1: gateways "Register" with a GMA
// directory; consumers look producers up and then talk to them
// directly, which is the defining GMA interaction pattern).
//
// Line protocol (request/response over the simulated network):
//   REG PRODUCER <name> <host:port>\n<ownedHostPattern>\n...   -> OK
//   UNREG PRODUCER <name>                                      -> OK
//   LOOKUP <host>                 -> PRODUCER <name> <host:port> | NONE
//   LIST                          -> PRODUCER lines
//   REG CONSUMER <name> <host:port> <eventPattern>             -> OK
//   UNREG CONSUMER <name>                                      -> OK
//   CONSUMERS <eventType>         -> CONSUMER <name> <host:port> lines
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gridrm/net/network.hpp"

namespace gridrm::global {

inline constexpr std::uint16_t kDirectoryPort = 8700;

struct ProducerEntry {
  std::string name;
  net::Address address;
  std::vector<std::string> ownedHostPatterns;  // globs over source hosts
};

struct ConsumerEntry {
  std::string name;
  net::Address address;
  std::string eventPattern;  // dot-prefix pattern (core::eventTypeMatches)
};

class GmaDirectory final : public net::RequestHandler {
 public:
  GmaDirectory(net::Network& network, const net::Address& address);
  ~GmaDirectory() override;

  GmaDirectory(const GmaDirectory&) = delete;
  GmaDirectory& operator=(const GmaDirectory&) = delete;

  const net::Address& address() const noexcept { return address_; }

  net::Payload handleRequest(const net::Address& from,
                             const net::Payload& request) override;

  // Direct (in-process) accessors for tests.
  std::vector<ProducerEntry> producers() const;
  std::vector<ConsumerEntry> consumers() const;

 private:
  net::Network& network_;
  net::Address address_;
  mutable std::mutex mu_;
  std::map<std::string, ProducerEntry> producers_;
  std::map<std::string, ConsumerEntry> consumers_;
};

/// Client-side helper wrapping the wire protocol.
class DirectoryClient {
 public:
  DirectoryClient(net::Network& network, net::Address self,
                  net::Address directory)
      : network_(network), self_(std::move(self)),
        directory_(std::move(directory)) {}

  void registerProducer(const std::string& name, const net::Address& address,
                        const std::vector<std::string>& ownedHostPatterns);
  void unregisterProducer(const std::string& name);
  /// nullopt when no producer owns `host`.
  std::optional<ProducerEntry> lookup(const std::string& host);
  std::vector<ProducerEntry> list();
  void registerConsumer(const std::string& name, const net::Address& address,
                        const std::string& eventPattern);
  void unregisterConsumer(const std::string& name);
  std::vector<ConsumerEntry> consumersFor(const std::string& eventType);

 private:
  net::Payload request(const net::Payload& body);

  net::Network& network_;
  net::Address self_;
  net::Address directory_;
};

}  // namespace gridrm::global
