// Minimal discrete-event scheduling interface.
//
// Lower layers (net::Network, core::SitePoller) that want their work
// driven by the simulation's event loop depend on this interface only;
// the concrete single-threaded loop lives one layer up in
// sim::EventLoop. This keeps the dependency graph acyclic: util defines
// the contract, net consumes it, sim implements it.
#pragma once

#include <cstdint>
#include <functional>

#include "gridrm/util/clock.hpp"

namespace gridrm::util {

/// Opaque handle to a scheduled event; 0 is never a valid id.
using EventId = std::uint64_t;

class EventScheduler {
 public:
  virtual ~EventScheduler() = default;

  /// Schedule `fn` to run at absolute time `when` (clamped to "now" if
  /// already past). Events due at the same instant fire in scheduling
  /// order.
  virtual EventId schedule(TimePoint when, std::function<void()> fn) = 0;

  /// Schedule `fn` every `period`, first firing one period from now.
  /// The returned id cancels every future occurrence.
  virtual EventId scheduleEvery(Duration period, std::function<void()> fn) = 0;

  /// Cancel a pending (or periodic) event. Returns false when the id is
  /// unknown or the event already fired.
  virtual bool cancel(EventId id) = 0;
};

}  // namespace gridrm::util
