// Bounded MPMC ring buffer: the Event Manager's "fast buffer" (paper
// Fig. 4: "ensures events are not lost in a busy system"). Producers are
// agent event receivers; the consumer is the event dispatch thread.
//
// Overflow policy is explicit because the loss experiment (E5) ablates
// it: Block gives lossless behaviour under sustained overload, Drop
// sheds the newest event and counts it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <vector>

namespace gridrm::util {

enum class OverflowPolicy { Block, DropNewest };

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity,
                      OverflowPolicy policy = OverflowPolicy::Block)
      : buf_(capacity), policy_(policy) {}

  /// Returns false when the element was dropped (DropNewest under overflow)
  /// or the buffer was closed.
  bool push(T item) {
    std::unique_lock lock(mu_);
    if (policy_ == OverflowPolicy::DropNewest) {
      if (size_ == buf_.size() || closed_) {
        if (!closed_) ++dropped_;
        return false;
      }
    } else {
      notFull_.wait(lock, [&] { return size_ < buf_.size() || closed_; });
      if (closed_) return false;
    }
    buf_[(head_ + size_) % buf_.size()] = std::move(item);
    ++size_;
    lock.unlock();
    notEmpty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    notEmpty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    return takeFront(lock);
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::unique_lock lock(mu_);
    if (size_ == 0) return std::nullopt;
    return takeFront(lock);
  }

  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return size_;
  }
  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t dropped() const {
    std::scoped_lock lock(mu_);
    return dropped_;
  }

 private:
  std::optional<T> takeFront(std::unique_lock<std::mutex>& lock) {
    T item = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    lock.unlock();
    notFull_.notify_one();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
  bool closed_ = false;
  OverflowPolicy policy_;
};

}  // namespace gridrm::util
