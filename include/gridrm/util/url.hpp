// GridRM data-source URL. The paper (section 3.2.2) addresses data
// sources with JDBC-style URLs:
//
//   jdbc:<subprotocol>://<host>[:port]/<path>[?k=v&k=v]
//   jdbc:://snowboard.workgroup/perfdata      (any compatible driver)
//   jdbc:nws://snowboard.workgroup/perfdata   (NWS driver requested)
//
// We keep the same grammar with scheme "gridrm" accepted as an alias of
// "jdbc" so native deployments don't have to carry the Java name.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace gridrm::util {

class Url {
 public:
  /// Parse a data-source URL. Returns nullopt on malformed input.
  static std::optional<Url> parse(const std::string& text);

  const std::string& text() const noexcept { return text_; }
  const std::string& scheme() const noexcept { return scheme_; }
  /// Subprotocol ("snmp", "ganglia", ...); empty means "any driver".
  const std::string& subprotocol() const noexcept { return subprotocol_; }
  const std::string& host() const noexcept { return host_; }
  /// 0 means "use the driver's default port".
  std::uint16_t port() const noexcept { return port_; }
  const std::string& path() const noexcept { return path_; }
  const std::map<std::string, std::string>& params() const noexcept {
    return params_;
  }
  std::string param(const std::string& key, std::string fallback = "") const;

  /// host:port with the given default substituted when port()==0.
  std::string endpoint(std::uint16_t defaultPort) const;

 private:
  std::string text_;
  std::string scheme_;
  std::string subprotocol_;
  std::string host_;
  std::uint16_t port_ = 0;
  std::string path_;
  std::map<std::string, std::string> params_;
};

}  // namespace gridrm::util
