// Clock abstraction: GridRM components take a Clock& so that agents,
// caches and the network substrate run against simulated time in tests
// and benchmarks (deterministic), or wall time in live deployments.
#pragma once

#include <atomic>
#include <cstdint>

namespace gridrm::util {

/// Microseconds since an arbitrary epoch.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const noexcept = 0;
  /// Advance time by `us`: a real clock blocks, a simulated clock jumps.
  virtual void sleepFor(Duration us) = 0;
};

/// Wall-clock time (monotonic).
class SystemClock final : public Clock {
 public:
  TimePoint now() const noexcept override;
  void sleepFor(Duration us) override;
};

/// Manually-driven clock. Thread-safe; `sleepFor` advances time so code
/// written against Clock behaves identically under simulation.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimePoint start = 0) noexcept : now_(start) {}

  TimePoint now() const noexcept override {
    return now_.load(std::memory_order_relaxed);
  }
  void sleepFor(Duration us) override { advance(us); }

  void advance(Duration us) noexcept {
    now_.fetch_add(us, std::memory_order_relaxed);
  }
  void setNow(TimePoint t) noexcept {
    now_.store(t, std::memory_order_relaxed);
  }

 private:
  std::atomic<TimePoint> now_;
};

}  // namespace gridrm::util
