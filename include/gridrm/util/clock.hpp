// Clock abstraction: GridRM components take a Clock& so that agents,
// caches and the network substrate run against simulated time in tests
// and benchmarks (deterministic), or wall time in live deployments.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

namespace gridrm::util {

/// Microseconds since an arbitrary epoch.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimePoint now() const noexcept = 0;
  /// Advance time by `us`: a real clock blocks, a simulated clock jumps.
  virtual void sleepFor(Duration us) = 0;
};

/// Wall-clock time (monotonic).
class SystemClock final : public Clock {
 public:
  TimePoint now() const noexcept override;
  void sleepFor(Duration us) override;
};

/// Manually-driven clock. Thread-safe for readers; writers use
/// release stores so a reader that observes a new time also observes
/// everything the writer did before advancing — cross-thread readers
/// can never see time go backwards relative to work they synchronised
/// on.
///
/// Single-writer mode: when a sim::EventLoop owns this clock it is the
/// sole time authority (events fire in due order precisely because
/// nothing else moves time). setSingleWriter(true) turns concurrent
/// advance/setNow calls into a debug-build assertion so a stray
/// sleepFor from a worker thread is caught instead of silently
/// corrupting the event timeline.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimePoint start = 0) noexcept : now_(start) {}

  TimePoint now() const noexcept override {
    return now_.load(std::memory_order_acquire);
  }
  void sleepFor(Duration us) override { advance(us); }

  void advance(Duration us) noexcept {
    WriterGuard guard(*this);
    now_.fetch_add(us, std::memory_order_acq_rel);
  }
  void setNow(TimePoint t) noexcept {
    WriterGuard guard(*this);
    now_.store(t, std::memory_order_release);
  }
  /// Monotonic jump: move time forward to `t`, no-op when `t` is not
  /// ahead of now. The EventLoop fire path uses this so an event due in
  /// the past can never wind the clock backwards.
  void advanceTo(TimePoint t) noexcept {
    WriterGuard guard(*this);
    TimePoint current = now_.load(std::memory_order_relaxed);
    while (current < t && !now_.compare_exchange_weak(
                              current, t, std::memory_order_acq_rel,
                              std::memory_order_relaxed)) {
    }
  }

  /// Declare this clock owned by a single time authority (an
  /// EventLoop). Debug builds then assert that no two threads advance
  /// concurrently; release builds are unaffected.
  void setSingleWriter(bool on) noexcept {
    singleWriter_.store(on, std::memory_order_relaxed);
  }

 private:
#ifndef NDEBUG
  struct WriterGuard {
    explicit WriterGuard(SimClock& clock) noexcept : clock_(clock) {
      if (!clock_.singleWriter_.load(std::memory_order_relaxed)) return;
      armed_ = true;
      bool expected = false;
      const bool won = clock_.writing_.compare_exchange_strong(
          expected, true, std::memory_order_acquire);
      assert(won &&
             "SimClock: concurrent advance on a single-writer (EventLoop-"
             "owned) clock");
      (void)won;
    }
    ~WriterGuard() {
      if (armed_) clock_.writing_.store(false, std::memory_order_release);
    }
    SimClock& clock_;
    bool armed_ = false;
  };
#else
  struct WriterGuard {
    explicit WriterGuard(SimClock&) noexcept {}
  };
#endif

  std::atomic<TimePoint> now_;
  std::atomic<bool> singleWriter_{false};
  // Present in release builds too (only the guard logic is debug-only)
  // so SimClock's layout never depends on NDEBUG.
  std::atomic<bool> writing_{false};
};

}  // namespace gridrm::util
