// Value: the dynamically-typed cell used throughout GridRM.
//
// Every datum that flows through the system -- a ResultSet cell, a GLUE
// attribute, an SNMP varbind payload, an event field -- is a Value. The
// type set mirrors what the paper's JDBC plumbing carried (SQL NULL,
// BOOLEAN, BIGINT, DOUBLE, VARCHAR).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace gridrm::util {

enum class ValueType : std::uint8_t { Null, Bool, Int, Real, String };

/// Human-readable name of a ValueType ("NULL", "BOOL", ...).
const char* valueTypeName(ValueType t) noexcept;

class Value {
 public:
  Value() noexcept : v_(std::monostate{}) {}
  Value(bool b) noexcept : v_(b) {}                       // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) noexcept : v_(i) {}               // NOLINT
  Value(int i) noexcept : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(unsigned int i) noexcept : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) noexcept : v_(d) {}                     // NOLINT
  Value(std::string s) noexcept : v_(std::move(s)) {}     // NOLINT
  Value(const char* s) : v_(std::string(s)) {}            // NOLINT

  static Value null() noexcept { return {}; }

  ValueType type() const noexcept {
    return static_cast<ValueType>(v_.index());
  }
  bool isNull() const noexcept { return type() == ValueType::Null; }
  bool isNumeric() const noexcept {
    return type() == ValueType::Int || type() == ValueType::Real;
  }

  // Exact accessors: precondition is that type() matches; violating it
  // throws std::bad_variant_access (programming error, not data error).
  bool asBool() const { return std::get<bool>(v_); }
  std::int64_t asInt() const { return std::get<std::int64_t>(v_); }
  double asReal() const { return std::get<double>(v_); }
  const std::string& asString() const { return std::get<std::string>(v_); }

  // Coercing accessors: convert across types, falling back to `fallback`
  // when no sensible conversion exists (e.g. non-numeric string toInt).
  std::int64_t toInt(std::int64_t fallback = 0) const noexcept;
  /// Like toInt, but reports conversion failure instead of a fallback:
  /// one conversion answers both "is this datable?" and "what time?".
  std::optional<std::int64_t> tryInt() const noexcept;
  double toReal(double fallback = 0.0) const noexcept;
  bool toBool(bool fallback = false) const noexcept;
  /// Render as text; NULL renders as "NULL".
  std::string toString() const;

  /// Parse text into the "most specific" Value: integer, then real, then
  /// boolean literal (true/false), otherwise string. "NULL" parses to null.
  static Value parse(std::string_view text);

  /// Three-way comparison with SQL-ish semantics: NULL sorts first,
  /// numerics compare across Int/Real, otherwise compare by type then value.
  std::strong_ordering compare(const Value& other) const noexcept;

  bool operator==(const Value& other) const noexcept {
    return compare(other) == std::strong_ordering::equal;
  }
  bool operator<(const Value& other) const noexcept {
    return compare(other) == std::strong_ordering::less;
  }

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string> v_;
};

}  // namespace gridrm::util
