// Small string helpers shared by the SQL lexer, URL parser and the
// line-oriented agent protocols (NWS / NetLogger / SCMS).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gridrm::util {

std::vector<std::string> split(std::string_view s, char sep);
/// Split on `sep`, dropping empty fields.
std::vector<std::string> splitNonEmpty(std::string_view s, char sep);
std::string_view trim(std::string_view s);
std::string toLower(std::string_view s);
std::string toUpper(std::string_view s);
bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);
bool iequals(std::string_view a, std::string_view b);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
/// Replace every occurrence of `from` with `to`.
std::string replaceAll(std::string s, std::string_view from, std::string_view to);

}  // namespace gridrm::util
