// Small string helpers shared by the SQL lexer, URL parser and the
// line-oriented agent protocols (NWS / NetLogger / SCMS).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridrm::util {

/// FNV-1a 64-bit: the stable hash used wherever a value must hash the
/// same on every node and every run (consistent-hash shard placement,
/// anti-entropy digests). std::hash gives no such guarantee.
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<std::string> split(std::string_view s, char sep);
/// Split on `sep`, dropping empty fields.
std::vector<std::string> splitNonEmpty(std::string_view s, char sep);
std::string_view trim(std::string_view s);
std::string toLower(std::string_view s);
std::string toUpper(std::string_view s);
bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);
bool iequals(std::string_view a, std::string_view b);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
/// Replace every occurrence of `from` with `to`.
std::string replaceAll(std::string s, std::string_view from, std::string_view to);

}  // namespace gridrm::util
