// Deterministic PRNG (xoshiro256**). Host models, link jitter and
// failure injection all draw from explicitly-seeded instances so every
// test and benchmark run is reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace gridrm::util {

inline constexpr double kPi = 3.14159265358979323846;

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding to spread a small seed over the full state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }
  bool chance(double p) noexcept { return uniform() < p; }
  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double gaussian() noexcept {
    double u1 = uniform();
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace gridrm::util
