// Fixed-size worker pool. The Request Manager uses it to fan a client
// query out across multiple data sources concurrently (paper section
// 3.1.1: "coordinates queries across multiple data sources").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gridrm::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result. A submission
  /// after shutdown is rejected rather than fatal: the task is dropped
  /// and the returned future reports std::future_errc::broken_promise —
  /// a late straggler (a hedge or poll racing gateway teardown) must
  /// not abort the process.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::scoped_lock lock(mu_);
      if (stopped_) {
        return fut;  // `task` dies here: the future sees broken_promise
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t workerCount() const noexcept { return threads_.size(); }

  /// Stop accepting work and join workers; pending tasks are completed.
  void shutdown();

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopped_ = false;
};

}  // namespace gridrm::util
