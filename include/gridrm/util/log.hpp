// Leveled, thread-safe logger. A "{}"-style mini formatter keeps call
// sites terse without pulling in a formatting library dependency.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gridrm::util {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

class Logger {
 public:
  static Logger& instance();

  void setLevel(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void write(LogLevel level, std::string_view component, std::string_view msg);

  /// When set, log lines are appended to `lines_` instead of stderr; used
  /// by tests that assert on logging behaviour.
  void captureToMemory(bool on);
  std::vector<std::string> drainCaptured();

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::mutex mu_;
  bool capture_ = false;
  std::vector<std::string> lines_;
};

namespace detail {
inline void formatInto(std::ostringstream& os, std::string_view fmt) {
  os << fmt;
}
template <typename Arg, typename... Rest>
void formatInto(std::ostringstream& os, std::string_view fmt, Arg&& arg,
                Rest&&... rest) {
  std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;
    return;
  }
  os << fmt.substr(0, pos) << std::forward<Arg>(arg);
  formatInto(os, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}
}  // namespace detail

/// Format "{}" placeholders with the remaining arguments.
template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
  std::ostringstream os;
  detail::formatInto(os, fmt, std::forward<Args>(args)...);
  return os.str();
}

template <typename... Args>
void logAt(LogLevel level, std::string_view component, std::string_view fmt,
           Args&&... args) {
  Logger& l = Logger::instance();
  if (!l.enabled(level)) return;
  l.write(level, component, format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void logDebug(std::string_view component, std::string_view fmt, Args&&... args) {
  logAt(LogLevel::Debug, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void logInfo(std::string_view component, std::string_view fmt, Args&&... args) {
  logAt(LogLevel::Info, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void logWarn(std::string_view component, std::string_view fmt, Args&&... args) {
  logAt(LogLevel::Warn, component, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void logError(std::string_view component, std::string_view fmt, Args&&... args) {
  logAt(LogLevel::Error, component, fmt, std::forward<Args>(args)...);
}

}  // namespace gridrm::util
