// Key/value configuration with typed getters. Gateways load their
// policy ("Gateway Policy and Schemas" box in Fig. 2) from this; tests
// build it programmatically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gridrm::util {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  static Config parse(const std::string& text);

  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string getString(const std::string& key, std::string fallback = "") const;
  std::int64_t getInt(const std::string& key, std::int64_t fallback = 0) const;
  double getReal(const std::string& key, double fallback = 0.0) const;
  bool getBool(const std::string& key, bool fallback = false) const;
  /// Comma-separated list value.
  std::vector<std::string> getList(const std::string& key) const;

  const std::map<std::string, std::string>& values() const noexcept {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gridrm::util
