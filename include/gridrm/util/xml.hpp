// Minimal XML reader/writer, sufficient for Ganglia gmond dumps
// (elements + attributes + nesting; no text nodes, namespaces or CDATA).
// The coarse-grained parse cost this code represents is itself part of
// what experiment E3 measures.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace gridrm::util {

struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;

  std::string attr(const std::string& key, std::string fallback = "") const {
    auto it = attributes.find(key);
    return it == attributes.end() ? std::move(fallback) : it->second;
  }
  /// First child with the given element name; nullptr when absent.
  const XmlElement* child(const std::string& childName) const;
  /// All children with the given element name.
  std::vector<const XmlElement*> childrenNamed(const std::string& childName) const;
};

class XmlError : public std::runtime_error {
 public:
  explicit XmlError(const std::string& msg) : std::runtime_error(msg) {}
};

/// Parse a document; returns its root element. Throws XmlError.
std::unique_ptr<XmlElement> parseXml(const std::string& text);

/// Incremental writer producing the gmond-style documents the parser reads.
class XmlWriter {
 public:
  XmlWriter& open(const std::string& name);
  XmlWriter& attr(const std::string& key, const std::string& value);
  /// Close the current element (self-closing if nothing nested).
  XmlWriter& close();
  std::string take();

  static std::string escape(const std::string& s);

 private:
  std::string out_;
  std::vector<std::string> stack_;  // names of open elements
  bool tagOpen_ = false;            // '<name ...' emitted, '>' pending
};

}  // namespace gridrm::util
